//! Counting IPv6 "users" (§7.1): how badly do active-/64 counts estimate
//! subscriber counts under different addressing practices?
//!
//! The paper's conclusion: /64 counts can miscount devices "by a factor
//! of 100 in either direction" depending on per-network practice. The
//! synthetic world has ground truth, so this example measures the bias
//! per archetype directly.
//!
//! ```text
//! cargo run --release --example counting_subscribers
//! ```

use v6census::census::{Census, RoutingTable};
use v6census::prelude::*;
use v6census::synth::world::growth;
use v6census::synth::world::{asns, epochs};

fn main() {
    let world = World::standard(WorldConfig {
        seed: 5,
        scale: 0.1,
    });
    let first = epochs::mar2015();
    println!("ingesting one week starting {first}…\n");
    let census = Census::run(&world, first, first + 6);
    let rt = RoutingTable::of(&world, first);
    let week = census.other_over(first.range_inclusive(first + 6));
    let by_asn = rt.group_by_asn(&week);
    let g = growth(first).min(1.0);

    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>8}",
        "network", "subscribers", "weekly /64s", "weekly addrs", "64s/sub"
    );
    for (label, asn) in [
        ("US mobile A (dynamic /64)", asns::MOBILE_A),
        ("US mobile B (dynamic /64)", asns::MOBILE_B),
        ("EU ISP (rotating NID)", asns::EU_ISP),
        ("JP ISP (static /48)", asns::JP_ISP),
        ("US broadband (DHCPv6-PD)", asns::US_BROADBAND),
        ("university 0 (shared /64s)", asns::UNIVERSITY_FIRST),
    ] {
        let Some(set) = by_asn.get(&asn) else {
            continue;
        };
        let subs = (world.network(asn).unwrap().max_subscribers as f64 * g) as u64;
        let p64s = set.map_prefix(64).len();
        let ratio = p64s as f64 / subs as f64;
        println!(
            "{label:<28} {subs:>12} {p64s:>12} {:>12} {ratio:>8.2}",
            set.len()
        );
    }

    println!(
        "\nA ratio ≫ 1 (mobile pools) over-counts subscribers; ≪ 1 (shared\n\
         /64s, e.g. a university department) under-counts. Only networks\n\
         with one stable /64 per subscriber give ratios near the weekly\n\
         visit fraction — the paper's conclusion that counting requires\n\
         per-network knowledge of addressing practice."
    );

    // The extreme under-count case: the dense DHCPv6 department puts
    // ~100 hosts behind a single /64 (Figure 5g).
    let uni0 = &by_asn[&asns::UNIVERSITY_FIRST];
    if let Some(dept) = v6census::trie::dense_prefixes_at(uni0, 2, 64)
        .into_iter()
        .max_by_key(|d| d.count)
    {
        println!(
            "\ndense department: {} active hosts behind one /64 ({}) —\n\
             counting /64s under-counts this population {}x.",
            dept.count, dept.prefix, dept.count
        );
    }
}
