//! MRA explorer: feed any list of IPv6 addresses (one per line on stdin)
//! and get the Multi-Resolution Aggregate plot, the aggregate counts, and
//! the dense-prefix classes — the paper's §5.2 toolkit as a command-line
//! tool.
//!
//! ```text
//! # Explore your own addresses:
//! cat addrs.txt | cargo run --release --example mra_explorer
//! # Or run the built-in demo population:
//! cargo run --release --example mra_explorer
//! ```

use std::io::IsTerminal;
use std::io::Read;
use v6census::census::figures::MraFigure;
use v6census::census::plot::{ascii_mra, tsv_mra};
use v6census::prelude::*;

fn main() {
    let set = read_stdin_addrs().unwrap_or_else(demo_population);
    if set.is_empty() {
        eprintln!("no parseable IPv6 addresses on stdin");
        std::process::exit(1);
    }

    let fig = MraFigure::of("input population", &set);
    println!("{}", ascii_mra(&fig));

    let mra = MraCurve::of(&set);
    let sig = mra.privacy_signature();
    println!("population      : {} addresses", set.len());
    println!("common prefix   : /{}", mra.common_prefix_len());
    println!(
        "privacy signature: {} (head {:.2}, u-bit {:.2}, flatline {:?})",
        if sig.matches() { "present" } else { "absent" },
        sig.iid_head_ratio,
        sig.u_bit_ratio,
        sig.flatline_at
    );
    println!("112–128 bit mass: {:.3}", mra.tail_prominence());

    println!("\ndense prefixes:");
    for (n, p) in [(2u64, 112u8), (3, 120), (2, 124)] {
        let class = DensityClass::new(n, p);
        let report = class.report(&set);
        println!(
            "  {:<14} {:>8} prefixes, {:>8} addrs, {:>12} possible",
            class.to_string(),
            report.dense_prefixes,
            report.covered_addresses,
            report.possible_addresses
        );
    }

    eprintln!("\n# TSV (for gnuplot) follows on stderr:");
    eprintln!("{}", tsv_mra(&fig));
}

fn read_stdin_addrs() -> Option<AddrSet> {
    if std::io::stdin().is_terminal() {
        return None; // interactive invocation: use the demo
    }
    let mut buf = String::new();
    std::io::stdin().read_to_string(&mut buf).ok()?;
    let addrs: Vec<Addr> = buf.lines().filter_map(|l| l.trim().parse().ok()).collect();
    if addrs.is_empty() {
        None
    } else {
        Some(AddrSet::from_iter(addrs))
    }
}

/// A demo population mixing the paper's Figure 1 shapes: manual low IIDs,
/// a structured subnet, EUI-64 hosts, and privacy addresses.
fn demo_population() -> AddrSet {
    eprintln!("(no stdin input — using the built-in demo population)\n");
    let mut addrs: Vec<Addr> = Vec::new();
    // A dense DHCP block.
    for i in 1..=60u128 {
        addrs.push(Addr((0x2001_0db8_0010_0001u128 << 64) | i));
    }
    // Structured subnets.
    for s in 0..8u128 {
        for h in 1..=4u128 {
            addrs.push(Addr(
                ((0x2001_0db8_0167_1100u128 + s) << 64) | (0x0010 << 16) | h,
            ));
        }
    }
    // EUI-64 and privacy hosts across a few /64s.
    for d in 0..40u64 {
        let mac = Mac::from_oui_nic(0x001ec2, 0x0010_0000 + d as u32);
        let net = 0x2001_0db8_0000_1c00u128 + (d as u128 % 5);
        addrs.push(Addr((net << 64) | mac.to_modified_eui64() as u128));
        // splitmix-style pseudo IID with u-bit cleared
        let mut z = d.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(77);
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        addrs.push(Addr((net << 64) | (z & !(1 << 57)) as u128));
    }
    AddrSet::from_iter(addrs)
}
