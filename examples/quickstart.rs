//! Quickstart: build a small synthetic world, run the census for one
//! window, and apply both classifiers — the 60-second tour of the API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use v6census::prelude::*;

fn main() {
    // A deterministic world at ~2% of the default population: big enough
    // to show every phenomenon, small enough to run in about a second.
    let world = World::standard(WorldConfig {
        seed: 7,
        scale: 0.05,
    });
    let reference = Day::from_ymd(2015, 3, 17);

    // Ingest the ±7-day window of aggregated CDN logs around the
    // reference day. The census culls Teredo/ISATAP/6to4 from the
    // "Other" (native IPv6) population, as §4.1 of the paper does.
    let census = Census::run(&world, reference - 7, reference + 7);
    let today = census.summary(reference).expect("day ingested");
    println!(
        "{}: {} active addrs ({} other, {} 6to4, {} teredo, {} isatap)",
        reference,
        today.total(),
        today.other.len(),
        today.sixtofour.len(),
        today.teredo.len(),
        today.isatap.len()
    );
    println!(
        "active /64s: {}  (avg {:.2} addrs per /64)",
        today.other_64s().len(),
        today.other.len() as f64 / today.other_64s().len() as f64
    );

    // --- Temporal classification (§5.1) --------------------------------
    let params = StabilityParams::three_day(); // "3d-stable (-7d,+7d)"
    let stable = census.other_daily().stable_on(reference, &params);
    let stable64 = census.other64_daily().stable_on(reference, &params);
    println!(
        "\n{}: {} of {} addrs ({:.1}%), {} of {} /64s ({:.1}%)",
        params.label(),
        stable.len(),
        today.other.len(),
        100.0 * stable.len() as f64 / today.other.len() as f64,
        stable64.len(),
        today.other_64s().len(),
        100.0 * stable64.len() as f64 / today.other_64s().len() as f64,
    );

    // --- Spatial classification (§5.2) ---------------------------------
    let actives = census.other_daily().on(reference);
    let mra = MraCurve::of(&actives);
    let sig = mra.privacy_signature();
    println!(
        "\nMRA of all actives: γ¹⁶ at /32 = {:.1}, privacy signature: {}",
        mra.ratio(32, MraResolution::Segment16),
        if sig.matches() { "present" } else { "absent" }
    );

    let class = DensityClass::new(2, 112);
    let report = class.report(&actives);
    println!(
        "{}: {} dense prefixes covering {} addrs ({} possible probe targets)",
        class, report.dense_prefixes, report.covered_addresses, report.possible_addresses
    );

    // --- Content-based scheme classification (§3) ----------------------
    let sample: Vec<Addr> = actives.iter().take(3).collect();
    println!("\nsample classifications:");
    for a in sample {
        println!("  {a} -> {}", v6census::addr::scheme::classify(a).label());
    }
}
