//! Target selection for active measurement (§6.1.1): compare probe
//! strategies and sweep the stability-window parameters — the ablation
//! the paper flags as future work ("more research is warranted ...
//! varying the number of days or the sliding window size").
//!
//! ```text
//! cargo run --release --example target_selection
//! ```

use v6census::census::experiments::{router_discovery, sample_every};
use v6census::census::Census;
use v6census::prelude::*;
use v6census::synth::router::ProbeSim;
use v6census::synth::world::epochs;

fn main() {
    let world = World::standard(WorldConfig {
        seed: 11,
        scale: 0.1,
    });
    let reference = epochs::mar2015();
    println!("ingesting ±7d window around {reference}…");
    let census = Census::run(&world, reference - 7, reference + 7);

    // Headline comparison: random actives vs 3d-stable targets.
    let r = router_discovery(&world, &census, reference, 2_000);
    println!(
        "\nbaseline (resolvers + random actives): {} routers",
        r.baseline_routers
    );
    println!(
        "3d-stable targets                    : {} routers ({:+.1}%)",
        r.stable_routers,
        r.improvement_pct()
    );

    // Ablation 1: sweep n of nd-stable.
    println!("\nsweep of n (window fixed at -7d,+7d):");
    println!("{:>4} {:>12} {:>12}", "n", "stable addrs", "routers");
    let sim = ProbeSim::new(&world, reference);
    let resolvers = sim.resolver_targets();
    for n in [1u32, 2, 3, 5, 7] {
        let params = StabilityParams::nd(n);
        let stable = census.other_daily().stable_on(reference, &params);
        let mut targets = resolvers.clone();
        targets.extend(sample_every(&stable, 2_000));
        let found = sim.survey(targets).len();
        println!("{n:>4} {:>12} {found:>12}", stable.len());
    }

    // Ablation 2: sweep the window reach for 3d-stability.
    println!("\nsweep of window reach (n = 3):");
    println!("{:>8} {:>12} {:>12}", "window", "stable addrs", "label");
    for reach in [3u32, 5, 7, 10, 14] {
        let params = StabilityParams::nd(3).with_window(reach, reach);
        // Only days we ingested contribute; wider windows need more data.
        let stable = census.other_daily().stable_on(reference, &params);
        println!("{reach:>7}d {:>12} {:>24}", stable.len(), params.label());
    }

    // Ablation 3: slew tolerance (the §4.1 timestamp-slew heuristic).
    println!("\nslew tolerance (conservative distance requirement):");
    for slew in [0u32, 1, 2] {
        let params = StabilityParams::three_day().with_slew(slew);
        let stable = census.other_daily().stable_on(reference, &params);
        println!("  slew {slew}d -> {} stable addrs", stable.len());
    }
}
