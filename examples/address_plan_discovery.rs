//! Reverse-engineering operator address plans from the outside (§6.2.1,
//! §7.2): compute MRA plots per ASN, read off their structural
//! signatures, and track EUI-64 interface identifiers across /64s — the
//! "persistent, unique IIDs [that] serve as guides ... in areas of the
//! IPv6 address space".
//!
//! ```text
//! cargo run --release --example address_plan_discovery
//! ```

use std::collections::BTreeMap;
use v6census::census::{Census, RoutingTable};
use v6census::prelude::*;
use v6census::synth::world::{asns, epochs};

fn main() {
    let world = World::standard(WorldConfig {
        seed: 3,
        scale: 0.1,
    });
    let first = epochs::mar2015();
    println!("ingesting one week starting {first}…");
    let census = Census::run(&world, first, first + 6);
    let rt = RoutingTable::of(&world, first);
    let week = census.other_over(first.range_inclusive(first + 6));
    let by_asn = rt.group_by_asn(&week);

    for (label, asn) in [
        ("US mobile carrier", asns::MOBILE_A),
        ("EU ISP (rotating NIDs)", asns::EU_ISP),
        ("JP ISP (static /48s)", asns::JP_ISP),
        ("university", asns::UNIVERSITY_FIRST),
    ] {
        let Some(set) = by_asn.get(&asn) else {
            continue;
        };
        let mra = MraCurve::of(set);
        println!("\n=== {label} (AS{asn}) — {} weekly addrs ===", set.len());
        println!("  common (BGP-like) prefix: /{}", mra.common_prefix_len());

        // Where does the network put its subnetting entropy?
        let mut busiest = (0u8, 1.0f64);
        for p in (0..128).step_by(16) {
            let r = mra.ratio(p, MraResolution::Segment16);
            if r > busiest.1 && p < 64 {
                busiest = (p, r);
            }
            println!("    γ¹⁶ at {:>3}: {:>10.2}", p, r);
        }
        println!(
            "  heaviest network-side segment: bits {}..{}",
            busiest.0,
            busiest.0 + 16
        );
        let sig = mra.privacy_signature();
        println!(
            "  privacy-extension signature: {} (u-bit ratio {:.3})",
            if sig.matches() { "PRESENT" } else { "absent" },
            sig.u_bit_ratio
        );
        println!("  112–128 bit prominence: {:.3}", mra.tail_prominence());

        // EUI-64 IIDs as guides: how many /64s does one device visit?
        let mut per_mac: BTreeMap<Mac, Vec<u64>> = BTreeMap::new();
        for a in set.iter() {
            if let Some(mac) = Iid::of(a).eui64_mac() {
                per_mac.entry(mac).or_default().push(a.network_bits());
            }
        }
        let (mut single, mut multi) = (0, 0);
        for nets in per_mac.values_mut() {
            nets.sort_unstable();
            nets.dedup();
            if nets.len() == 1 {
                single += 1;
            } else {
                multi += 1;
            }
        }
        if single + multi > 0 {
            println!(
                "  EUI-64 IIDs: {} stay in one /64, {} roam (dynamic prefixes!)",
                single, multi
            );
        }
    }
}
