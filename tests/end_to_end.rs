//! End-to-end integration: world → logs → census → classifiers →
//! reports, with cross-crate invariants.

use v6census::census::tables::{table1, EpochSpec, Table2, Table3};
use v6census::census::{Census, RoutingTable};
use v6census::prelude::*;
use v6census::synth::router::ProbeSim;
use v6census::synth::world::epochs;

fn small_world() -> World {
    World::standard(WorldConfig {
        seed: 41,
        scale: 0.02,
    })
}

#[test]
fn full_pipeline_is_deterministic() {
    let d = epochs::mar2015();
    let run = || {
        let w = small_world();
        let c = Census::run(&w, d - 2, d + 2);
        let stable = c.other_daily().stable_on(d, &StabilityParams::three_day());
        (c.summary(d).unwrap().total(), stable.len())
    };
    assert_eq!(run(), run());
}

#[test]
fn table1_percentages_partition() {
    let w = small_world();
    let d = epochs::mar2015();
    let c = Census::run(&w, d, d + 6);
    let specs = [EpochSpec {
        label: "Mar 17, 2015",
        reference: d,
    }];
    let (daily, weekly) = table1(&c, &specs);
    for col in daily.columns.iter().chain(&weekly.columns) {
        let sum = col.teredo + col.isatap + col.sixtofour + col.other;
        assert_eq!(sum, col.total());
        assert!(col.eui64 <= col.other, "EUI-64 must be within Other");
        assert!(col.eui64_macs <= col.eui64);
        assert!(col.other_64s <= col.other);
    }
}

#[test]
fn table2_classes_partition_actives() {
    let w = small_world();
    let d = epochs::mar2015();
    let c = Census::run(&w, d - 7, d + 13);
    let specs = [EpochSpec {
        label: "Mar 17, 2015",
        reference: d,
    }];
    let params = StabilityParams::three_day();
    let t = Table2::daily("addrs", c.other_daily(), &specs, params);
    let col = &t.columns[0];
    assert_eq!(
        col.total() as usize,
        c.other_daily().on(d).len(),
        "stable + not-stable must equal the day's actives"
    );
    let tw = Table2::weekly("addrs", c.other_daily(), &specs, params);
    let colw = &tw.columns[0];
    let weekly_active = c.other_over(d.range_inclusive(d + 6));
    assert_eq!(colw.total() as usize, weekly_active.len());
    // /64 stability dominates address stability (paper's Table 2
    // structural relationship).
    let t64 = Table2::daily("64s", c.other64_daily(), &specs, params);
    let frac = |c: &v6census::census::tables::Table2Column| c.stable as f64 / c.total() as f64;
    assert!(frac(&t64.columns[0]) > frac(col) * 2.0);
}

#[test]
fn table3_rows_are_internally_consistent() {
    let w = small_world();
    let d = epochs::mar2015();
    let sim = ProbeSim::new(&w, d);
    let routers = sim.router_dataset(&[]);
    let t3 = Table3::compute(&routers);
    for r in &t3.rows {
        assert!(
            r.covered_addresses >= r.class.n * r.dense_prefixes as u64 || r.dense_prefixes == 0,
            "{}: covered {} below n × prefixes",
            r.class,
            r.covered_addresses
        );
        assert!(r.covered_addresses as usize <= routers.len());
        if r.dense_prefixes > 0 {
            let span = 1u128 << (128 - r.class.p as u32);
            assert_eq!(r.possible_addresses % span, 0);
            assert!(r.density() > 0.0 && r.density() <= 1.0);
        }
    }
    // Same n: longer p ⇒ denser blocks.
    let d124 = &t3.rows[0]; // 2@/124
    let d104 = &t3.rows[11]; // 2@/104
    if d124.dense_prefixes > 0 && d104.dense_prefixes > 0 {
        assert!(d124.density() > d104.density());
    }
}

#[test]
fn routing_attribution_total_consistency() {
    let w = small_world();
    let d = epochs::mar2015();
    let c = Census::run(&w, d, d);
    let rt = RoutingTable::of(&w, d);
    let other = c.other_daily().on(d);
    let counts = rt.count_by_asn(&other);
    assert_eq!(counts.values().sum::<u64>() as usize, other.len());
    // Every classified-Other address resolves to a real (non-relay) ASN.
    assert!(!counts.contains_key(&0));
    assert!(!counts.contains_key(&v6census::synth::world::asns::SIX_TO_FOUR_RELAY));
}

#[test]
fn prefix_view_commutes_with_ingestion() {
    // The /64 observation store must equal mapping each day's set.
    let w = small_world();
    let d = epochs::mar2015();
    let c = Census::run(&w, d, d + 1);
    let from_store = c.other64_daily().on(d);
    let mapped = c.other_daily().on(d).map_prefix(64);
    assert_eq!(from_store.len(), mapped.len());
    assert_eq!(
        from_store.intersection_len(&mapped),
        from_store.len(),
        "stores must hold identical /64 sets"
    );
}

#[test]
fn epoch_stability_is_symmetric_in_membership() {
    let w = small_world();
    let m15 = epochs::mar2015();
    let s14 = epochs::sep2014();
    let mut census = Census::new_empty();
    census.ingest(&w.day_log(s14));
    census.ingest(&w.day_log(m15));
    let obs = census.other_daily();
    let e = obs.epoch_stable([m15], [s14]);
    // Every 6m-stable address is active in both epochs.
    let old = obs.on(s14);
    let cur = obs.on(m15);
    for a in e.stable.iter().take(200) {
        assert!(old.contains(a) && cur.contains(a));
    }
    assert!(e.stable.len() <= old.len().min(cur.len()));
}
