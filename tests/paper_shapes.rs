//! Shape tests: the qualitative findings of the paper must hold in the
//! synthetic reproduction at test scale. These are the "who wins, by
//! roughly what factor" criteria of DESIGN.md §6, cast as assertions.

use v6census::census::figures::{asn_highlights, SegmentRatioFigure};
use v6census::census::{Census, RoutingTable};
use v6census::prelude::*;
use v6census::synth::world::{asns, epochs};

struct Setup {
    census: Census,
    rt: RoutingTable,
    week: AddrSet,
}

fn setup(scale: f64) -> Setup {
    let world = World::standard(WorldConfig { seed: 101, scale });
    let d = epochs::mar2015();
    let census = Census::run(&world, d - 7, d + 13);
    let rt = RoutingTable::of(&world, d);
    let week = census.other_over(d.range_inclusive(d + 6));
    Setup { census, rt, week }
}

#[test]
fn six_to_four_share_declines_while_counts_grow() {
    let world = World::standard(WorldConfig {
        seed: 101,
        scale: 0.02,
    });
    let mut shares = Vec::new();
    let mut others = Vec::new();
    for e in [epochs::mar2014(), epochs::sep2014(), epochs::mar2015()] {
        let mut c = Census::new_empty();
        c.ingest(&world.day_log(e));
        let s = c.summary(e).unwrap();
        shares.push(s.sixtofour.len() as f64 / s.total() as f64);
        others.push(s.other.len());
    }
    assert!(shares[0] > shares[1] && shares[1] > shares[2], "{shares:?}");
    assert!(others[0] < others[1] && others[1] < others[2], "{others:?}");
}

#[test]
fn stability_orderings_match_table2() {
    let s = setup(0.02);
    let d = epochs::mar2015();
    let params = StabilityParams::three_day();
    let day_active = s.census.other_daily().on(d).len() as f64;
    let day_stable = s.census.other_daily().stable_on(d, &params).len() as f64;
    let day64_active = s.census.other64_daily().on(d).len() as f64;
    let day64_stable = s.census.other64_daily().stable_on(d, &params).len() as f64;
    let addr_frac = day_stable / day_active;
    let p64_frac = day64_stable / day64_active;
    // Paper: addresses ~9%, /64s ~90%.
    assert!(
        (0.04..0.25).contains(&addr_frac),
        "daily addr 3d-stable fraction {addr_frac:.3}"
    );
    assert!(p64_frac > 0.8, "daily /64 3d-stable fraction {p64_frac:.3}");
    assert!(p64_frac > 4.0 * addr_frac);

    // Weekly address stability fraction is lower than daily (Table 2c
    // vs 2a) because the weekly union is dominated by ephemeral addrs.
    let weekly = s.census.other_daily().stable_over_week(d, &params);
    let weekly_frac = weekly.stable.len() as f64 / weekly.active.len() as f64;
    assert!(
        weekly_frac < addr_frac,
        "weekly {weekly_frac:.3} vs daily {addr_frac:.3}"
    );
}

#[test]
fn top5_asns_dominate() {
    let s = setup(0.02);
    let d = epochs::mar2015();
    let six = s
        .census
        .other64_daily()
        .epoch_stable(d.range_inclusive(d + 6), d.range_inclusive(d + 6))
        .stable;
    let h = asn_highlights(&s.rt, &s.week, &six);
    assert!(
        h.top5_share_64s > 0.6,
        "top-5 /64 share {:.3}",
        h.top5_share_64s
    );
    for asn in [asns::MOBILE_A, asns::MOBILE_B] {
        assert!(
            h.top5_asns.contains(&asn),
            "mobile carriers must rank top-5: {:?}",
            h.top5_asns
        );
    }
}

#[test]
fn eu_prefix_shows_privacy_signature_jp_shows_static_structure() {
    let s = setup(0.02);
    let by_asn = s.rt.group_by_asn(&s.week);
    let eu = MraCurve::of(&by_asn[&asns::EU_ISP]);
    let jp = MraCurve::of(&by_asn[&asns::JP_ISP]);
    // Both populations are dominated by privacy IIDs in the low 64 bits.
    assert!(
        eu.privacy_signature().matches(),
        "{:?}",
        eu.privacy_signature()
    );
    assert!(
        jp.privacy_signature().matches(),
        "{:?}",
        jp.privacy_signature()
    );
    // JP: the 48-64 segment shows no aggregation (constant subnet 0);
    // EU: that segment carries the rotating NID, so it aggregates a lot.
    let jp_4864 = jp.ratio(48, MraResolution::Segment16);
    let eu_4864 = eu.ratio(48, MraResolution::Segment16);
    assert!(jp_4864 < 1.2, "JP 48-64 γ¹⁶ {jp_4864:.2}");
    assert!(eu_4864 > 2.0 * jp_4864, "EU 48-64 γ¹⁶ {eu_4864:.2}");
}

#[test]
fn mobile_carrier_fills_the_44_64_segment() {
    let s = setup(0.02);
    let by_asn = s.rt.group_by_asn(&s.week);
    let mob = MraCurve::of(&by_asn[&asns::MOBILE_A]);
    // Figure 5e: heavy aggregation in the pool segment, none beyond /64
    // except the trivial IID sparsity.
    let pool = mob.ratio(48, MraResolution::Segment16);
    assert!(pool > 5.0, "pool segment γ¹⁶ {pool:.1}");
    assert!(
        !mob.privacy_signature().matches(),
        "mobile IIDs are mostly fixed"
    );
}

#[test]
fn dense_department_dominates_its_64() {
    let s = setup(0.02);
    let by_asn = s.rt.group_by_asn(&s.week);
    let uni0 = &by_asn[&asns::UNIVERSITY_FIRST];
    let dense = v6census::trie::dense_prefixes_at(uni0, 2, 64);
    let dept = dense.iter().max_by_key(|d| d.count).expect("dense dept");
    assert!(dept.count > 40, "dept only {} hosts", dept.count);
    // Figure 5g: the tail (112-128) carries almost all the structure.
    let members = AddrSet::from_iter(uni0.iter().filter(|&a| dept.prefix.contains_addr(a)));
    let mra = MraCurve::of(&members);
    assert!(mra.tail_prominence() > 0.5, "{:.3}", mra.tail_prominence());
}

#[test]
fn figure5b_aggregation_concentrates_between_32_and_80() {
    let s = setup(0.02);
    let f = SegmentRatioFigure::figure5b(&s.rt, &s.week, 20);
    let median_at = |p: u8| {
        f.boxes
            .iter()
            .find(|&&(q, _)| q == p)
            .map(|&(_, b)| b.median)
            .unwrap_or(1.0)
    };
    // Paper: "most aggregation takes place across the three 16-bit
    // segments between bits 32 and 80".
    let inside = median_at(32) + median_at(48) + median_at(64);
    let outside = median_at(0) + median_at(16) + median_at(96) + median_at(112);
    assert!(inside > outside, "inside {inside:.2} outside {outside:.2}");
}

#[test]
fn reference_day_overlap_steps_down_with_distance() {
    let s = setup(0.02);
    let d = epochs::mar2015();
    let series = s.census.other_daily().reference_overlap_series(d);
    let at = |delta: i32| {
        series
            .iter()
            .find(|&&(day, _, _)| day == d + delta)
            .map(|&(_, _, o)| o)
            .unwrap()
    };
    // Figure 4a: large ±1-day overlap (lifetime straddle), stepping down.
    assert!(at(1) > at(3), "±1 {} vs ±3 {}", at(1), at(3));
    assert!(at(-1) > at(-3));
    assert!(at(0) >= at(1));
}

#[test]
fn half_of_asns_have_dense_client_regions() {
    // §1 highlight: "49% of active IPv6 ASNs have BGP prefixes
    // containing such regions, e.g., /112 prefixes containing multiple
    // active WWW client addresses." Shape: a sizeable minority.
    let s = setup(0.02);
    let by_asn = s.rt.group_by_asn(&s.week);
    let with_dense = by_asn
        .values()
        .filter(|set| !v6census::trie::dense_prefixes_at(set, 2, 112).is_empty())
        .count();
    let frac = with_dense as f64 / by_asn.len() as f64;
    assert!((0.15..0.95).contains(&frac), "dense-ASN fraction {frac:.3}");
}
