//! # v6census
//!
//! A from-scratch Rust reproduction of **Plonka & Berger, "Temporal and
//! Spatial Classification of Active IPv6 Addresses" (IMC 2015)** — the
//! classifiers, the measurement pipeline, and (since the paper's CDN logs
//! are proprietary) a deterministic synthetic Internet that exercises the
//! same code paths.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`addr`] — IPv6 address substrate: parsing/formatting, prefixes,
//!   EUI-64, special-use registry, content-based scheme classification.
//! * [`trie`] — Patricia/radix trie (aguri) with the paper's densify
//!   operation, active-aggregate counts, and sorted address sets.
//! * [`core`] — the paper's contribution: temporal (nd-stable) and
//!   spatial (MRA, population CCDF, prefix density) classification.
//! * [`synth`] — the synthetic world: archetypes, CDN logs, router
//!   probes, reverse DNS.
//! * [`census`] — the pipeline: culling, ASN attribution, Tables 1–3,
//!   Figures 2–5, and the in-text experiments.
//!
//! ## Quickstart
//!
//! ```
//! use v6census::prelude::*;
//!
//! // A small synthetic world and one day of CDN logs.
//! let world = World::standard(WorldConfig::tiny(1));
//! let day = Day::from_ymd(2015, 3, 17);
//! let census = Census::run(&world, day - 7, day + 7);
//!
//! // Temporal classification: the paper's 3d-stable (-7d,+7d) class.
//! let stable = census.other_daily().stable_on(day, &StabilityParams::three_day());
//! assert!(stable.len() < census.other_daily().on(day).len());
//!
//! // Spatial classification: 2@/112-dense WWW client prefixes.
//! let dense = DensityClass::new(2, 112).report(&census.other_daily().on(day));
//! assert_eq!(dense.possible_addresses, dense.dense_prefixes as u128 * 65_536);
//! ```
//!
//! See `examples/` for runnable applications and `crates/bench/src/bin/`
//! for the per-table/per-figure reproduction harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use v6census_addr as addr;
pub use v6census_census as census;
pub use v6census_core as core;
pub use v6census_synth as synth;
pub use v6census_trie as trie;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use v6census_addr::{Addr, AddressScheme, Iid, Mac, Prefix};
    pub use v6census_census::{Census, RoutingTable};
    pub use v6census_core::spatial::{Ccdf, DensityClass, MraCurve, MraResolution};
    pub use v6census_core::temporal::{DailyObservations, Day, StabilityParams};
    pub use v6census_synth::{World, WorldConfig};
    pub use v6census_trie::{AddrSet, PrefixMap, RadixTree};
}
