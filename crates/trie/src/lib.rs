//! Patricia/radix-trie substrate for `v6census`.
//!
//! The paper's spatial machinery (§5.2) rests on two data-structure
//! families, both provided here:
//!
//! * [`RadixTree`] — a path-compressed binary (Patricia) trie over
//!   `(u128, prefix-length)` keys with per-node counts. This is the
//!   *aguri tree* of Cho et al. (QofIS '01) that §5.2.3 extends: it
//!   supports the classic aguri aggregation-to-a-traffic-percentage
//!   ([`RadixTree::aguri_aggregate`]) and the paper's new **densify**
//!   operation ([`RadixTree::densify`]), plus longest-prefix-match for BGP
//!   routing-table lookups ([`PrefixMap::longest_match`]).
//! * [`AddrSet`] / [`aggcount`] — the sort-based fast path of the paper's
//!   footnote 3 (`sort | cut -c1-$((p/4)) | uniq -c`): a compact sorted
//!   address set from which *active aggregate counts* `n_p` for **all**
//!   prefix lengths are derived in a single pass over adjacent
//!   common-prefix lengths, and per-aggregate population counts for the
//!   Kohler-style distribution plots.
//!
//! The trie and the sort-based path compute identical answers; the
//! `densify` Criterion bench and property tests in this crate assert that
//! equivalence, which DESIGN.md lists as an ablation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggcount;
mod set;
mod tree;

pub use aggcount::{dense_prefixes_at, populations, AggregateCounts};
pub use set::AddrSet;
pub use tree::{BudgetedDensify, DensePrefix, PrefixMap, RadixTree, TrieError};
