//! [`RadixTree`]: a path-compressed binary (Patricia) trie with per-node
//! counts — the *aguri tree* of Cho et al., extended with the paper's
//! densify operation (§5.2.3) — and [`PrefixMap`], a generic
//! longest-prefix-match map used for BGP routing tables.

use std::fmt;
use v6census_addr::cast::{checked_u32, checked_u8, checked_usize};
use v6census_addr::{Addr, Prefix};

/// Structured failure of a trie structural operation.
///
/// The trie's internal invariants (an occupied slot stays occupied
/// across a restructure; canonical [`Prefix`] keys always diverge below
/// their common prefix) are *true* for every key the canonicalizing
/// `Prefix` type can represent, and are asserted with `debug_assert!` at
/// their sites. The fallible entry points ([`RadixTree::try_insert`],
/// [`PrefixMap::try_insert`]) exist so callers feeding the trie from
/// *untrusted* serialized data — a BGP routing snapshot attributing
/// ASNs, a persisted tree — get a structured error instead of a panic if
/// an invariant is ever observed broken (memory corruption, a future
/// non-canonical key type): the ASN-attribution path must never abort
/// the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrieError {
    /// An occupied slot was observed empty (or vice versa) during a
    /// restructure — the tree no longer matches its own bookkeeping.
    StructureCorrupt {
        /// The key being inserted when the corruption was observed.
        prefix: Prefix,
        /// The operation that observed it.
        site: &'static str,
    },
    /// Insertion descended more levels than a 128-bit key space permits
    /// — only possible if node prefixes stopped strictly lengthening.
    DepthExceeded {
        /// The key being inserted.
        prefix: Prefix,
    },
}

impl TrieError {
    /// A stable short label per variant, for reports and tests.
    pub const fn label(&self) -> &'static str {
        match self {
            TrieError::StructureCorrupt { .. } => "structure-corrupt",
            TrieError::DepthExceeded { .. } => "depth-exceeded",
        }
    }
}

impl fmt::Display for TrieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrieError::StructureCorrupt { prefix, site } => {
                write!(f, "trie structure corrupt inserting {prefix} ({site})")
            }
            TrieError::DepthExceeded { prefix } => {
                write!(f, "trie depth exceeded 128 bits inserting {prefix}")
            }
        }
    }
}

impl std::error::Error for TrieError {}

/// Descent depth at which [`TrieError::DepthExceeded`] fires: one level
/// per key bit, plus the root and one restructure re-entry.
const MAX_DEPTH: u16 = 130;

/// A dense prefix reported by [`RadixTree::densify`] or
/// [`crate::dense_prefixes_at`]: the block and the number of observed
/// addresses it contains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DensePrefix {
    /// The dense block.
    pub prefix: Prefix,
    /// Observed addresses inside the block.
    pub count: u64,
}

impl DensePrefix {
    /// The number of addresses the block spans (2^(128−len)); `None` for
    /// `::/0`.
    pub fn possible(&self) -> Option<u128> {
        self.prefix.span()
    }

    /// Observed density: `count / span`.
    pub fn density(&self) -> f64 {
        match self.prefix.span() {
            Some(s) => self.count as f64 / s as f64,
            None => 0.0,
        }
    }
}

/// Outcome of [`RadixTree::densify_budgeted`]: the dense prefixes plus an
/// account of whether (and how far) the node budget forced the tree to a
/// coarser aggregation level before densify ran.
#[derive(Clone, Debug)]
pub struct BudgetedDensify {
    /// The dense prefixes found (possibly at coarser levels than an
    /// unbudgeted run would report).
    pub dense: Vec<DensePrefix>,
    /// True when the budget was hit and the tree was aggregated.
    pub degraded: bool,
    /// Node count before any budget action.
    pub nodes_before: usize,
    /// Node count densify actually ran against.
    pub nodes_after: usize,
    /// Nodes folded away to satisfy the budget.
    pub folded: usize,
}

/// Absent-child sentinel for arena handles. A `u32` handle caps the
/// arena at `u32::MAX - 1` slots — hundreds of GiB of nodes, far beyond
/// the node budgets the supervisor enforces.
const NIL: u32 = u32::MAX;

/// Arena-stored trie node: children are `u32` handles into the arena
/// (`NIL` = absent) rather than boxed pointers, shrinking the node and
/// keeping siblings cache-adjacent — the per-address descent touches
/// one flat `Vec` instead of chasing heap pointers.
#[derive(Clone, Copy)]
struct Node {
    prefix: Prefix,
    count: u64,
    children: [u32; 2],
}

/// A path-compressed binary radix (Patricia) trie keyed by IPv6 prefixes,
/// carrying a count on every node.
///
/// Counts land on the exact node for the inserted prefix; branch nodes
/// created by path splitting carry count 0 until something is inserted at
/// their prefix. [`RadixTree::densify`] and
/// [`RadixTree::aguri_aggregate`] reason over *subtree* sums.
///
/// Nodes live in a slab arena (`Vec<Node>` plus a free list of reused
/// slots) addressed by `u32` handles, so steady-state insertion and
/// aggregation are allocation-free per address: inserts reuse freed
/// slots before growing the arena, and every aggregation pass runs in
/// scratch buffers retained across calls (the R005/R006 allocation
/// discipline, proven by `v6census-lint`).
///
/// ```
/// use v6census_trie::RadixTree;
/// let mut t = RadixTree::new();
/// t.insert_addr("2001:db8::1".parse().unwrap(), 1);
/// t.insert_addr("2001:db8::4".parse().unwrap(), 1);
/// // Least-specific 2@/112-dense prefix, per the paper's §5.2.2 example:
/// let dense = t.densify(2, 112);
/// assert_eq!(dense.len(), 1);
/// assert_eq!(dense[0].prefix.to_string(), "2001:db8::/112");
/// ```
pub struct RadixTree {
    arena: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    total: u64,
    nodes: usize,
    // Scratch buffers reused across aggregation passes so the hot
    // capped-insert path never allocates per call once warm.
    scratch_order: Vec<(u32, u32)>,
    scratch_counts: Vec<u64>,
    scratch_sums: Vec<u64>,
    scratch_stack: Vec<u32>,
}

impl Default for RadixTree {
    fn default() -> RadixTree {
        RadixTree {
            arena: Vec::new(),
            free: Vec::new(),
            root: NIL,
            total: 0,
            nodes: 0,
            scratch_order: Vec::new(),
            scratch_counts: Vec::new(),
            scratch_sums: Vec::new(),
            scratch_stack: Vec::new(),
        }
    }
}

impl RadixTree {
    /// Creates an empty tree.
    pub fn new() -> RadixTree {
        RadixTree::default()
    }

    /// Sum of all inserted counts.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of nodes currently in the tree (including zero-count branch
    /// nodes) — a resource-constraint observable, per the aguri design.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Estimated heap footprint: node count × per-node arena slot size.
    /// Ignores allocator slack and vacant free-list slots, so treat it
    /// as a lower bound; the supervisor's budgets are expressed in nodes
    /// and use this only for reporting.
    pub fn approx_bytes(&self) -> usize {
        self.nodes * std::mem::size_of::<Node>()
    }

    /// Widens an arena handle to a slot offset — lossless on every
    /// supported target; the R002 dataflow proves the bound.
    #[inline]
    fn at(h: u32) -> usize {
        checked_usize(h as u128)
    }

    #[inline]
    fn node(&self, h: u32) -> &Node {
        &self.arena[Self::at(h)]
    }

    #[inline]
    fn node_mut(&mut self, h: u32) -> &mut Node {
        &mut self.arena[Self::at(h)]
    }

    /// Allocates an arena slot — reusing a freed slot when one exists,
    /// growing the arena otherwise — and returns its handle.
    fn alloc_node(&mut self, prefix: Prefix, count: u64) -> u32 {
        let fresh = Node {
            prefix,
            count,
            children: [NIL, NIL],
        };
        self.nodes += 1;
        if let Some(h) = self.free.pop() {
            self.arena[Self::at(h)] = fresh;
            return h;
        }
        // Mask-then-check is the sanctioned narrowing idiom (cast.rs);
        // an arena of u32::MAX slots is unreachable under the node
        // budgets, and checked_u32 debug_asserts the bound.
        let h = checked_u32((self.arena.len() as u128) & 0xffff_ffff);
        self.arena.push(fresh);
        h
    }

    /// Returns a slot to the free list.
    fn free_node(&mut self, h: u32) {
        self.free.push(h);
        self.nodes -= 1;
    }

    /// Writes `child` into the slot identified by `(parent, which)`;
    /// a NIL parent addresses the root slot.
    fn set_slot(&mut self, parent: u32, which: usize, child: u32) {
        if parent == NIL {
            self.root = child;
        } else {
            self.node_mut(parent).children[which] = child;
        }
    }

    /// Replaces `child` with `replacement` wherever it appears among
    /// `parent`'s child slots (the root slot when `parent` is NIL).
    fn replace_child(&mut self, parent: u32, child: u32, replacement: u32) {
        if parent == NIL {
            self.root = replacement;
            return;
        }
        for slot in self.node_mut(parent).children.iter_mut() {
            if *slot == child {
                *slot = replacement;
            }
        }
    }

    /// Frees the whole subtree rooted at `from`, returning every slot
    /// to the free list. Runs in the reused traversal scratch.
    fn free_subtree(&mut self, from: u32) {
        let mut work = std::mem::take(&mut self.scratch_stack);
        work.clear();
        work.push(from);
        while let Some(h) = work.pop() {
            for &c in &self.node(h).children {
                if c != NIL {
                    work.push(c);
                }
            }
            self.free_node(h);
        }
        self.scratch_stack = work;
    }

    /// Appends the live nodes in BFS order as `(handle, parent)` pairs
    /// — parents strictly before children, so a reverse scan visits
    /// children first (the bottom-up order every aggregate pass needs).
    fn bfs_order_into(&self, order: &mut Vec<(u32, u32)>) {
        order.clear();
        if self.root != NIL {
            order.push((self.root, NIL));
        }
        let mut i = 0usize;
        while i < order.len() {
            let (h, _) = order[i];
            for &c in &self.node(h).children {
                if c != NIL {
                    order.push((c, h));
                }
            }
            i += 1;
        }
    }

    /// One bottom-up pass computing every node's subtree sum into
    /// `sums` (indexed by arena slot) — memoizing what the boxed
    /// representation recomputed recursively per visited node.
    fn subtree_sums_from(&self, order: &[(u32, u32)], sums: &mut Vec<u64>) {
        sums.clear();
        sums.resize(self.arena.len(), 0);
        for &(h, _) in order.iter().rev() {
            let node = self.node(h);
            let mut s = node.count;
            for &c in &node.children {
                if c != NIL {
                    s = s.saturating_add(sums[Self::at(c)]);
                }
            }
            sums[Self::at(h)] = s;
        }
    }

    /// Inserts a host address and, when the tree has grown past
    /// `max_nodes`, immediately aggregates back down to half the cap —
    /// the aguri steady-state pattern for unbounded streams. Returns the
    /// number of nodes folded (0 when the budget was not hit).
    ///
    /// A `max_nodes` of 0 means "no budget".
    pub fn insert_addr_capped(&mut self, a: Addr, count: u64, max_nodes: usize) -> usize {
        self.insert_addr(a, count);
        if max_nodes > 0 && self.nodes > max_nodes {
            self.aggregate_to_size((max_nodes / 2).max(1))
        } else {
            0
        }
    }

    /// Inserts a host address with the given count (step 1 of §5.2.3).
    pub fn insert_addr(&mut self, a: Addr, count: u64) {
        self.insert(Prefix::host(a), count);
    }

    /// Inserts a prefix with the given count, accumulating when the exact
    /// prefix is already present.
    ///
    /// The fallible twin is [`RadixTree::try_insert`]; the error paths
    /// are unreachable for keys of the canonicalizing [`Prefix`] type,
    /// so this infallible form asserts them away in debug builds and, in
    /// release builds, preserves the inserted count by planting the key
    /// at the root rather than panicking.
    pub fn insert(&mut self, p: Prefix, count: u64) {
        if let Err(e) = self.try_insert(p, count) {
            // INVARIANT: `Prefix` is always canonical, which makes every
            // `TrieError` path unreachable (see `TrieError` docs).
            debug_assert!(false, "insert({p}, {count}): {e}");
            // Recovery without data loss: account the count at ::/0.
            self.total = self.total.saturating_add(count);
            if self.root != NIL && self.node(self.root).prefix == Prefix::ALL {
                let root = self.root;
                let node = self.node_mut(root);
                node.count = node.count.saturating_add(count);
                return;
            }
            let old_root = self.root;
            let fresh = self.alloc_node(Prefix::ALL, count);
            self.node_mut(fresh).children = [old_root, NIL];
            self.root = fresh;
        }
    }

    /// Inserts a prefix with the given count, reporting (instead of
    /// panicking on) a broken structural invariant — the entry point for
    /// trees built from untrusted serialized data.
    pub fn try_insert(&mut self, p: Prefix, count: u64) -> Result<(), TrieError> {
        // Iterative descent. The slot being considered is identified by
        // `(parent handle, child index)`, with a NIL parent meaning the
        // root slot. Every error check runs before any slot is written,
        // so a failed insert leaves the tree untouched.
        let mut parent = NIL;
        let mut which = 0usize;
        let mut depth: u16 = 0;
        loop {
            if depth > MAX_DEPTH {
                return Err(TrieError::DepthExceeded { prefix: p });
            }
            let cur = if parent == NIL {
                self.root
            } else {
                self.node(parent).children[which]
            };
            if cur == NIL {
                let leaf = self.alloc_node(p, count);
                self.set_slot(parent, which, leaf);
                break;
            }
            let node_prefix = self.node(cur).prefix;
            if node_prefix == p {
                let node = self.node_mut(cur);
                node.count = node.count.saturating_add(count);
                break;
            }
            if node_prefix.contains(p) {
                // Descend: branch on the first bit of p beyond node's
                // prefix.
                parent = cur;
                which = usize::from(p.addr().bit(usize::from(node_prefix.len())));
                depth = depth.saturating_add(1);
                continue;
            }
            if p.contains(node_prefix) {
                // p is an ancestor of the current node: splice a new
                // node in above it.
                let bit = usize::from(node_prefix.addr().bit(usize::from(p.len())));
                let new_node = self.alloc_node(p, count);
                self.node_mut(new_node).children[bit] = cur;
                self.set_slot(parent, which, new_node);
                break;
            }
            // Divergence: create a branch node at the longest common
            // prefix. Equality and containment in both directions were
            // excluded above, so cpl is strictly shorter than both keys
            // and — keys being canonical — the next bit of each differs.
            let cpl = p
                .addr()
                .common_prefix_len(node_prefix.addr())
                .min(p.len())
                .min(node_prefix.len());
            let branch_prefix = Prefix::new(p.addr(), cpl);
            let old_bit = usize::from(node_prefix.addr().bit(usize::from(cpl)));
            let new_bit = usize::from(p.addr().bit(usize::from(cpl)));
            debug_assert_ne!(old_bit, new_bit, "divergence must separate the keys");
            if old_bit == new_bit {
                // Release-build recovery: installing both subtrees on
                // one side would drop the old one silently. Nothing has
                // been written yet, so reporting is side-effect free.
                return Err(TrieError::StructureCorrupt {
                    prefix: node_prefix,
                    site: "insert/divergence",
                });
            }
            let branch = self.alloc_node(branch_prefix, 0);
            let leaf = self.alloc_node(p, count);
            {
                let b = self.node_mut(branch);
                b.children[old_bit] = cur;
                b.children[new_bit] = leaf;
            }
            self.set_slot(parent, which, branch);
            break;
        }
        self.total = self.total.saturating_add(count);
        Ok(())
    }

    /// The count stored at exactly this prefix (0 when absent).
    pub fn get(&self, p: Prefix) -> u64 {
        let mut cur = self.root;
        while cur != NIL {
            let node = self.node(cur);
            if node.prefix == p {
                return node.count;
            }
            if !node.prefix.contains(p) {
                return 0;
            }
            cur = node.children[usize::from(p.addr().bit(usize::from(node.prefix.len())))];
        }
        0
    }

    /// In-order list of `(prefix, count)` for every node with a non-zero
    /// count.
    pub fn entries(&self) -> Vec<(Prefix, u64)> {
        let mut out: Vec<(Prefix, u64)> = Vec::with_capacity(self.nodes);
        let mut stack: Vec<u32> = Vec::with_capacity(self.nodes);
        if self.root != NIL {
            stack.push(self.root);
        }
        while let Some(h) = stack.pop() {
            let node = self.node(h);
            if node.count > 0 {
                out.push((node.prefix, node.count));
            }
            // Child 1 pushed first so child 0 pops first, preserving
            // the recursive representation's address order.
            for &c in node.children.iter().rev() {
                if c != NIL {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Sum of counts in the subtree rooted at `p` — the number of observed
    /// addresses inside block `p` when the tree was built with
    /// [`RadixTree::insert_addr`].
    pub fn count_within(&self, p: Prefix) -> u64 {
        let mut cur = self.root;
        while cur != NIL {
            let node = self.node(cur);
            if p.contains(node.prefix) {
                return self.sum_below(cur);
            }
            if !node.prefix.contains(p) {
                return 0;
            }
            // p is strictly inside node's block; node.count belongs to
            // the shorter node.prefix, so only the matching child
            // subtree can intersect.
            cur = node.children[usize::from(p.addr().bit(usize::from(node.prefix.len())))];
        }
        0
    }

    /// Sum of counts in the subtree rooted at `from` (iterative).
    fn sum_below(&self, from: u32) -> u64 {
        let mut work: Vec<u32> = Vec::with_capacity(32);
        work.push(from);
        let mut s = 0u64;
        let mut i = 0usize;
        while i < work.len() {
            let node = self.node(work[i]);
            s = s.saturating_add(node.count);
            for &c in &node.children {
                if c != NIL {
                    work.push(c);
                }
            }
            i += 1;
        }
        s
    }

    /// The paper's **densify** operation (§5.2.3), generalized to report
    /// the *least-specific, non-overlapping* prefixes of density at least
    /// `n/2^(128−p)` that contain at least `n` observed addresses
    /// (step 3's count filter), with prefix length at most 127.
    ///
    /// Works on conceptual prefixes along compressed edges, so a dense
    /// /112 is found even when path compression skips from a /48 branch
    /// to a /120 branch. Subtree sums are memoized in one bottom-up pass
    /// so the walk is linear in the node count, and subtrees whose sum
    /// is below the count floor are pruned (nothing below them can
    /// qualify).
    pub fn densify(&self, n: u64, p: u8) -> Vec<DensePrefix> {
        assert!(n >= 1, "density numerator must be at least 1");
        assert!(p <= 128, "density prefix length out of range");
        let mut order: Vec<(u32, u32)> = Vec::with_capacity(self.nodes);
        self.bfs_order_into(&mut order);
        let mut sums: Vec<u64> = Vec::with_capacity(self.arena.len());
        self.subtree_sums_from(&order, &mut sums);

        let mut out: Vec<DensePrefix> = Vec::with_capacity(16);
        // DFS over (handle, lo) where lo is the shortest conceptual
        // prefix length available on the edge into the node (parent
        // length + 1; 0 at the root).
        let mut stack: Vec<(u32, u8)> = Vec::with_capacity(64);
        if self.root != NIL {
            stack.push((self.root, 0));
        }
        while let Some((h, lo)) = stack.pop() {
            let s = sums[Self::at(h)];
            if s < n {
                // Subtree sums only shrink downward: nothing below this
                // node can reach the count floor.
                continue;
            }
            let node = self.node(h);
            // Minimal length at which s addresses meet density n/2^(128-p):
            //   s >= n * 2^(p - L)  <=>  L >= p - floor(log2(s / n))
            let k_max = 63u32.saturating_sub((s / n).leading_zeros()); // floor(log2(s/n)) for s/n >= 1
            let l_min = p.saturating_sub(checked_u8(u128::from(k_max)));
            let hi = node.prefix.len().min(127);
            if l_min <= hi {
                let at = l_min.max(lo);
                out.push(DensePrefix {
                    prefix: Prefix::new(node.prefix.addr(), at),
                    count: s,
                });
                continue; // least-specific: don't report anything deeper
            }
            for &c in &node.children {
                if c != NIL {
                    stack.push((c, node.prefix.len().saturating_add(1)));
                }
            }
        }
        out.sort();
        out
    }

    /// The in-place aguri-style densify described verbatim in §5.2.3
    /// step 2: post-order traversal, aggregating children into the current
    /// node when the subtree count makes the node's own prefix dense.
    /// After this, dense prefixes are the nodes with `count >= n`
    /// (step 3); unaggregated sparse addresses remain as /128 leaves.
    ///
    /// [`RadixTree::densify`] is the non-destructive generalization; this
    /// method exists for fidelity to the paper's algorithm and reports
    /// node-aligned dense prefixes.
    pub fn densify_in_place(&mut self, n: u64, p: u8) -> Vec<DensePrefix> {
        fn dense(count: u64, len: u8, n: u64, p: u8) -> bool {
            if count == 0 {
                return false;
            }
            if len <= p {
                // count >= n * 2^(p-len), saturating.
                let shift = u32::from(p.saturating_sub(len));
                if shift >= 64 {
                    return false;
                }
                n.checked_shl(shift).is_some_and(|t| count >= t)
            } else {
                let shift = u32::from(len.saturating_sub(p));
                if shift >= 64 {
                    return true;
                }
                count.checked_shl(shift).is_none_or(|c| c >= n)
            }
        }

        let mut order: Vec<(u32, u32)> = Vec::with_capacity(self.nodes);
        self.bfs_order_into(&mut order);
        let mut sums: Vec<u64> = Vec::with_capacity(self.arena.len());
        self.subtree_sums_from(&order, &mut sums);

        // Children before parents; aggregation conserves subtree sums,
        // so the memoized values stay valid as the walk folds subtrees
        // below each node.
        for &(h, _) in order.iter().rev() {
            let node = *self.node(h);
            let mut child_sum = 0u64;
            for &c in &node.children {
                if c != NIL {
                    child_sum = child_sum.saturating_add(sums[Self::at(c)]);
                }
            }
            if child_sum > 0
                && dense(
                    node.count.saturating_add(child_sum),
                    node.prefix.len(),
                    n,
                    p,
                )
            {
                self.node_mut(h).count = node.count.saturating_add(child_sum);
                self.node_mut(h).children = [NIL, NIL];
                for &c in &node.children {
                    if c != NIL {
                        self.free_subtree(c);
                    }
                }
            }
        }
        let mut out: Vec<DensePrefix> = self
            .entries()
            .into_iter()
            .filter(|&(prefix, count)| count >= n && prefix.len() <= 127)
            .map(|(prefix, count)| DensePrefix { prefix, count })
            .collect();
        out.sort();
        out
    }

    /// Memory-bounded aggregation — the aguri resource-constraint
    /// mechanism the paper cites in §2 ("we find their Patricia/radix
    /// tree-based aggregation useful in dealing with resource
    /// constraints"). Repeatedly folds the smallest-count leaves into
    /// their parents until at most `max_nodes` nodes remain, preserving
    /// the total count. Returns the number of nodes removed.
    ///
    /// This is the operation a long-running profiler applies
    /// periodically so an adversarial or ephemeral-heavy address stream
    /// (billions of privacy addresses) cannot exhaust memory — the
    /// paper's "informing data retention policy to prevent resource
    /// exhaustion" application (§1). Each pass runs entirely in scratch
    /// buffers retained across calls, so the steady-state capped-insert
    /// path allocates nothing once warm.
    pub fn aggregate_to_size(&mut self, max_nodes: usize) -> usize {
        let start = self.nodes;
        while self.nodes > max_nodes.max(1) {
            if self.root == NIL {
                break;
            }
            // One bottom-up pass folding the smallest quartile of leaf
            // counts; repeat until within budget.
            let mut order = std::mem::take(&mut self.scratch_order);
            let mut counts = std::mem::take(&mut self.scratch_counts);
            self.bfs_order_into(&mut order);
            counts.clear();
            for &(h, _) in &order {
                let node = self.node(h);
                if node.children.iter().all(|&c| c == NIL) {
                    counts.push(node.count);
                }
            }
            counts.sort_unstable();
            let cutoff_idx = (counts.len() / 4).max(1).min(counts.len() - 1);
            let cutoff = counts[cutoff_idx];

            // Fold leaves with count <= cutoff into their parents, then
            // splice out pass-through branch nodes left behind. The
            // reverse scan visits children before parents, so folds
            // cascade upward within a single pass exactly like the
            // recursive post-order this replaces.
            let mut absorbed = std::mem::take(&mut self.scratch_sums);
            absorbed.clear();
            absorbed.resize(self.arena.len(), 0);
            let mut removed = 0usize;
            let mut folded_to_root = 0u64;
            for &(h, parent) in order.iter().rev() {
                let gained = absorbed[Self::at(h)];
                if gained > 0 {
                    let node = self.node_mut(h);
                    node.count = node.count.saturating_add(gained);
                }
                let node = *self.node(h);
                let is_leaf = node.children.iter().all(|&c| c == NIL);
                if is_leaf && node.count <= cutoff && !node.prefix.is_empty() {
                    if parent == NIL {
                        folded_to_root = node.count;
                        self.root = NIL;
                    } else {
                        absorbed[Self::at(parent)] =
                            absorbed[Self::at(parent)].saturating_add(node.count);
                        self.replace_child(parent, h, NIL);
                    }
                    self.free_node(h);
                    removed += 1;
                    continue;
                }
                if node.count == 0 {
                    // Splice pass-through nodes (count 0, single child).
                    let mut only = NIL;
                    let mut occupied = 0usize;
                    for &c in &node.children {
                        if c != NIL {
                            only = c;
                            occupied += 1;
                        }
                    }
                    if occupied == 1 {
                        self.replace_child(parent, h, only);
                        self.free_node(h);
                        removed += 1;
                    }
                }
            }
            self.scratch_order = order;
            self.scratch_counts = counts;
            self.scratch_sums = absorbed;

            if folded_to_root > 0 {
                // Everything collapsed; reinstate a ::/0 accumulator.
                debug_assert_eq!(self.nodes, 0, "root folded with live nodes");
                let fresh = self.alloc_node(Prefix::ALL, folded_to_root);
                self.root = fresh;
                break;
            }
            if removed == 0 {
                break; // cannot shrink further without losing the total
            }
        }
        start - self.nodes
    }

    /// [`RadixTree::densify`] under an explicit node budget — the
    /// degraded-mode path of the supervised engine. When the tree holds
    /// more than `max_nodes` nodes it is first folded with
    /// [`RadixTree::aggregate_to_size`] (which conserves subtree sums),
    /// then densify runs on the folded tree.
    ///
    /// Degradation is *sound* for the paper's n@/p semantics: folding
    /// moves counts to ancestor prefixes, so every reported block still
    /// contains at least its reported number of truly observed addresses
    /// — results are correct for a coarser question, never wrong.
    /// A `max_nodes` of 0 means "no budget" (identical to `densify`).
    pub fn densify_budgeted(&mut self, n: u64, p: u8, max_nodes: usize) -> BudgetedDensify {
        let nodes_before = self.nodes;
        let folded = if max_nodes > 0 && self.nodes > max_nodes {
            self.aggregate_to_size(max_nodes)
        } else {
            0
        };
        BudgetedDensify {
            dense: self.densify(n, p),
            degraded: folded > 0,
            nodes_before,
            nodes_after: self.nodes,
            folded,
        }
    }

    /// Classic aguri aggregation (Cho et al.): counts below
    /// `threshold_fraction × total` are folded into ancestors; returns the
    /// surviving `(prefix, count)` aggregates in address order. The last
    /// resort aggregate is `::/0`.
    pub fn aguri_aggregate(&self, threshold_fraction: f64) -> Vec<(Prefix, u64)> {
        assert!(
            (0.0..=1.0).contains(&threshold_fraction),
            "threshold must be a fraction"
        );
        let threshold = (threshold_fraction * self.total as f64).ceil() as u64;

        let mut order: Vec<(u32, u32)> = Vec::with_capacity(self.nodes);
        self.bfs_order_into(&mut order);
        // residual[slot]: count in the subtree not yet attributed to a
        // kept aggregate (flows to the parent).
        // Not `vec![0; …]`: the reserve-then-resize spelling keeps this
        // fn on the amortized point of R005's allocation lattice.
        #[allow(clippy::slow_vector_initialization)]
        let mut residual: Vec<u64> = {
            let mut v = Vec::with_capacity(self.arena.len());
            v.resize(self.arena.len(), 0);
            v
        };
        let mut out: Vec<(Prefix, u64)> = Vec::with_capacity(16);
        for &(h, _) in order.iter().rev() {
            let node = self.node(h);
            let mut r = node.count;
            for &c in &node.children {
                if c != NIL {
                    r = r.saturating_add(residual[Self::at(c)]);
                }
            }
            if r >= threshold && threshold > 0 {
                out.push((node.prefix, r));
            } else {
                residual[Self::at(h)] = r;
            }
        }
        let mut leftover = 0u64;
        if self.root != NIL {
            leftover = residual[Self::at(self.root)];
        }
        if leftover > 0 {
            out.push((Prefix::ALL, leftover));
        }
        out.sort_by_key(|&(p, _)| p);
        out
    }
}

// ---------------------------------------------------------------------------
// PrefixMap: generic longest-prefix-match map (BGP routing table)
// ---------------------------------------------------------------------------

struct MapNode<T> {
    prefix: Prefix,
    value: Option<T>,
    children: [Option<Box<MapNode<T>>>; 2],
}

/// A longest-prefix-match map from IPv6 prefixes to values — the shape of
/// a BGP routing table. Same Patricia structure as [`RadixTree`], carrying
/// an optional value instead of a count.
///
/// ```
/// use v6census_trie::PrefixMap;
/// let mut rt: PrefixMap<u32> = PrefixMap::new();
/// rt.insert("2001:db8::/32".parse().unwrap(), 64496);
/// rt.insert("2001:db8:ff::/48".parse().unwrap(), 64497);
/// let asn = rt.longest_match("2001:db8:ff::1".parse().unwrap());
/// assert_eq!(asn.map(|(p, v)| (p.len(), *v)), Some((48, 64497)));
/// ```
#[derive(Default)]
pub struct PrefixMap<T> {
    root: Option<Box<MapNode<T>>>,
    len: usize,
}

impl<T> PrefixMap<T> {
    /// Creates an empty map.
    pub fn new() -> PrefixMap<T> {
        PrefixMap { root: None, len: 0 }
    }

    /// Number of prefixes with values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no prefixes have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts or replaces the value at `p`; returns the previous value.
    ///
    /// The fallible twin is [`PrefixMap::try_insert`]; with canonical
    /// [`Prefix`] keys the error paths are unreachable, so this form
    /// asserts them away in debug builds and drops the value (returning
    /// `None`) rather than panicking in release builds.
    pub fn insert(&mut self, p: Prefix, value: T) -> Option<T> {
        match self.try_insert(p, value) {
            Ok(old) => old,
            Err(e) => {
                // INVARIANT: unreachable for canonical keys, see TrieError.
                debug_assert!(false, "insert({p}): {e}");
                None
            }
        }
    }

    /// Inserts or replaces the value at `p`, reporting (instead of
    /// panicking on) a broken structural invariant. This is the entry
    /// point for maps built from untrusted serialized data — a BGP
    /// routing snapshot must not be able to abort ASN attribution.
    pub fn try_insert(&mut self, p: Prefix, value: T) -> Result<Option<T>, TrieError> {
        let node = Self::slot_for(&mut self.root, p, 0)?;
        let old = node.value.replace(value);
        if old.is_none() {
            self.len = self.len.saturating_add(1);
        }
        Ok(old)
    }

    /// Materializes a node for `p` using the same split logic as the
    /// counting tree, then returns it.
    fn slot_for(
        slot: &mut Option<Box<MapNode<T>>>,
        p: Prefix,
        depth: u16,
    ) -> Result<&mut MapNode<T>, TrieError> {
        if depth > MAX_DEPTH {
            return Err(TrieError::DepthExceeded { prefix: p });
        }
        // Decide on the structural action with a shared borrow, then act.
        enum Action {
            Create,
            Found,
            Descend(usize),
            SpliceAbove,
            Branch(Prefix),
        }
        let action = match slot.as_deref() {
            None => Action::Create,
            Some(node) if node.prefix == p => Action::Found,
            Some(node) if node.prefix.contains(p) => {
                Action::Descend(usize::from(p.addr().bit(usize::from(node.prefix.len()))))
            }
            Some(node) if p.contains(node.prefix) => Action::SpliceAbove,
            Some(node) => {
                let cpl = p
                    .addr()
                    .common_prefix_len(node.prefix.addr())
                    .min(p.len())
                    .min(node.prefix.len());
                Action::Branch(Prefix::new(p.addr(), cpl))
            }
        };
        // Each occupied-slot arm re-observes the slot; the action match
        // above proved occupancy and nothing has touched the slot since,
        // so a miss means the structure changed under us.
        let corrupt = |site: &'static str| TrieError::StructureCorrupt { prefix: p, site };
        match action {
            Action::Create => Ok(slot.get_or_insert_with(|| {
                Box::new(MapNode {
                    prefix: p,
                    value: None,
                    children: [None, None],
                })
            })),
            Action::Found => {
                debug_assert!(slot.is_some(), "found node vanished");
                slot.as_deref_mut().ok_or_else(|| corrupt("map/found"))
            }
            Action::Descend(bit) => {
                let Some(node) = slot.as_deref_mut() else {
                    debug_assert!(false, "descend node vanished");
                    return Err(corrupt("map/descend"));
                };
                Self::slot_for(&mut node.children[bit], p, depth.saturating_add(1))
            }
            Action::SpliceAbove => {
                let Some(old) = slot.take() else {
                    debug_assert!(false, "splice node vanished");
                    return Err(corrupt("map/splice"));
                };
                let bit = usize::from(old.prefix.addr().bit(usize::from(p.len())));
                let mut new_node = Box::new(MapNode {
                    prefix: p,
                    value: None,
                    children: [None, None],
                });
                new_node.children[bit] = Some(old);
                *slot = Some(new_node);
                slot.as_deref_mut().ok_or_else(|| corrupt("map/splice"))
            }
            Action::Branch(branch_prefix) => {
                let Some(old) = slot.take() else {
                    debug_assert!(false, "branch node vanished");
                    return Err(corrupt("map/branch"));
                };
                let old_bit = usize::from(old.prefix.addr().bit(usize::from(branch_prefix.len())));
                let mut branch = Box::new(MapNode {
                    prefix: branch_prefix,
                    value: None,
                    children: [None, None],
                });
                branch.children[old_bit] = Some(old);
                *slot = Some(branch);
                // The branch now strictly contains p: recurse to create
                // it. A non-canonical key that kept colliding with the
                // restored subtree is caught by the depth guard.
                Self::slot_for(slot, p, depth.saturating_add(1))
            }
        }
    }

    /// The value stored at exactly `p`.
    pub fn get(&self, p: Prefix) -> Option<&T> {
        let mut cur = &self.root;
        while let Some(node) = cur {
            if node.prefix == p {
                return node.value.as_ref();
            }
            if !node.prefix.contains(p) {
                return None;
            }
            let bit = usize::from(p.addr().bit(usize::from(node.prefix.len())));
            cur = &node.children[bit];
        }
        None
    }

    /// Longest-prefix match: the most specific `(prefix, value)` whose
    /// block contains `a`.
    pub fn longest_match(&self, a: Addr) -> Option<(Prefix, &T)> {
        let mut best: Option<(Prefix, &T)> = None;
        let mut cur = &self.root;
        while let Some(node) = cur {
            if !node.prefix.contains_addr(a) {
                break;
            }
            if let Some(v) = &node.value {
                best = Some((node.prefix, v));
            }
            if node.prefix.len() == 128 {
                break;
            }
            let bit = usize::from(a.bit(usize::from(node.prefix.len())));
            cur = &node.children[bit];
        }
        best
    }

    /// Iterates all `(prefix, value)` pairs in address order.
    pub fn entries(&self) -> Vec<(Prefix, &T)> {
        let mut out = Vec::new();
        fn walk<'a, T>(n: &'a Option<Box<MapNode<T>>>, out: &mut Vec<(Prefix, &'a T)>) {
            if let Some(node) = n {
                if let Some(v) = &node.value {
                    out.push((node.prefix, v));
                }
                let [c0, c1] = &node.children;
                walk(c0, out);
                walk(c1, out);
            }
        }
        walk(&self.root, &mut out);
        out.sort_by_key(|&(p, _)| p);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }
    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_and_get() {
        let mut t = RadixTree::new();
        t.insert(p("2001:db8::/32"), 5);
        t.insert(p("2001:db8::/32"), 2);
        t.insert_addr(a("2001:db8::1"), 1);
        assert_eq!(t.get(p("2001:db8::/32")), 7);
        assert_eq!(t.get(p("2001:db8::1/128")), 1);
        assert_eq!(t.get(p("2001:db9::/32")), 0);
        assert_eq!(t.total(), 8);
    }

    #[test]
    fn count_within_subtree() {
        let mut t = RadixTree::new();
        for s in ["2001:db8::1", "2001:db8::2", "2001:db8:1::1", "2400::1"] {
            t.insert_addr(a(s), 1);
        }
        assert_eq!(t.count_within(p("2001:db8::/32")), 3);
        assert_eq!(t.count_within(p("2001:db8::/64")), 2);
        assert_eq!(t.count_within(p("::/0")), 4);
        assert_eq!(t.count_within(p("2001:db9::/32")), 0);
        assert_eq!(t.count_within(p("2001:db8::1/128")), 1);
    }

    #[test]
    fn paper_example_densify() {
        // §5.2.2: addresses ::1 and ::4 in 2001:db8:: — the sole
        // 2@/112-dense prefix is 2001:db8::/112; there is one
        // 2@/125-dense prefix but no 2@/126-dense prefix.
        let mut t = RadixTree::new();
        t.insert_addr(a("2001:db8::1"), 1);
        t.insert_addr(a("2001:db8::4"), 1);

        let d112 = t.densify(2, 112);
        assert_eq!(d112.len(), 1);
        assert_eq!(d112[0].prefix, p("2001:db8::/112"));
        assert_eq!(d112[0].count, 2);

        let d125 = t.densify(2, 125);
        assert_eq!(d125.len(), 1);
        assert_eq!(d125[0].prefix, p("2001:db8::/125"));

        let d126 = t.densify(2, 126);
        assert!(d126.is_empty(), "got {d126:?}");
    }

    #[test]
    fn densify_finds_least_specific() {
        // 512 addresses packed in one /119 meet 2@/112 density at /104:
        // 512 = 2 * 2^8 -> L_min = 112 - 8 = 104.
        let mut t = RadixTree::new();
        let base: Addr = a("2001:db8::");
        for i in 0..512u128 {
            t.insert_addr(Addr(base.0 | i), 1);
        }
        let d = t.densify(2, 112);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].prefix.len(), 104);
        assert_eq!(d[0].count, 512);
    }

    #[test]
    fn densify_respects_count_floor() {
        // A single address is maximally dense but fails the n=2 count
        // filter (paper step 3).
        let mut t = RadixTree::new();
        t.insert_addr(a("2001:db8::1"), 1);
        assert!(t.densify(2, 112).is_empty());
        assert_eq!(t.densify(1, 112).len(), 1);
    }

    #[test]
    fn densify_nonoverlapping() {
        let mut t = RadixTree::new();
        // Two separate dense /112s plus one sparse address.
        for i in 0..4u128 {
            t.insert_addr(Addr(a("2001:db8:a::").0 | i), 1);
            t.insert_addr(Addr(a("2001:db8:b::").0 | i), 1);
        }
        t.insert_addr(a("2400::1"), 1);
        let d = t.densify(2, 112);
        // Each /112 with 4 addrs is dense at /111 (4 = 2*2^1).
        assert_eq!(d.len(), 2);
        for x in &d {
            assert_eq!(x.prefix.len(), 111);
            assert_eq!(x.count, 4);
        }
        for i in 0..d.len() {
            for j in 0..d.len() {
                if i != j {
                    assert!(!d[i].prefix.overlaps(d[j].prefix));
                }
            }
        }
    }

    #[test]
    fn densify_in_place_matches_paper_steps() {
        let mut t = RadixTree::new();
        t.insert_addr(a("2001:db8::1"), 1);
        t.insert_addr(a("2001:db8::4"), 1);
        t.insert_addr(a("2400::1"), 1);
        let before = t.node_count();
        let d = t.densify_in_place(2, 112);
        assert!(t.node_count() < before);
        assert_eq!(d.len(), 1);
        // Node-aligned: the branch node for ::1/::4 sits at /125.
        assert_eq!(d[0].prefix, p("2001:db8::/125"));
        assert_eq!(d[0].count, 2);
        // Sparse /128 remains in the tree but is filtered from output...
        assert_eq!(t.get(p("2400::1/128")), 1);
    }

    #[test]
    fn dense_prefix_possible_and_density() {
        let d = DensePrefix {
            prefix: p("2001:db8::/112"),
            count: 2,
        };
        assert_eq!(d.possible(), Some(65536));
        assert!((d.density() - 2.0 / 65536.0).abs() < 1e-12);
    }

    #[test]
    fn aguri_aggregation_profiles_heavy_hitters() {
        let mut t = RadixTree::new();
        // 90 hits in one /64, 10 scattered.
        for i in 0..90u128 {
            t.insert_addr(Addr(a("2001:db8::").0 | i), 1);
        }
        for i in 0..10u128 {
            t.insert_addr(Addr(a("2400::").0 | (i << 64)), 1);
        }
        let agg = t.aguri_aggregate(0.10);
        let total: u64 = agg.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 100, "aggregation must conserve counts");
        // Every aggregate except the ::/0 catch-all meets the threshold.
        for &(pre, c) in &agg {
            if pre != Prefix::ALL {
                assert!(c >= 10, "{pre} kept with count {c} below threshold");
            }
        }
        // Nearly all heavy-side hits are attributed inside the heavy /64
        // (at most one sub-threshold residue escapes to the root).
        let heavy: u64 = agg
            .iter()
            .filter(|&&(pre, _)| p("2001:db8::/64").contains(pre))
            .map(|&(_, c)| c)
            .sum();
        assert!(heavy > 80, "heavy side kept only {heavy} of 90: {agg:?}");
        // The 10 scattered singletons reach the threshold together at
        // their common ancestor inside 2400::/32.
        assert!(
            agg.iter()
                .any(|&(pre, c)| c == 10 && p("2400::/32").contains(pre)),
            "got {agg:?}"
        );
    }

    #[test]
    fn aggregate_to_size_bounds_memory_and_conserves_counts() {
        let mut t = RadixTree::new();
        for i in 0..2_000u128 {
            // Scattered ephemeral addresses plus one heavy block.
            t.insert_addr(Addr((0x2a00u128 << 112) | (i * 0x1_0000_0001)), 1);
        }
        for i in 0..50u128 {
            t.insert_addr(Addr((0x2001_0db8u128 << 96) | i), 10);
        }
        let total_before = t.total();
        let nodes_before = t.node_count();
        assert!(nodes_before > 2_000);
        let removed = t.aggregate_to_size(200);
        assert!(removed > 0);
        assert!(
            t.node_count() <= 200 || t.node_count() < nodes_before / 4,
            "still {} nodes",
            t.node_count()
        );
        assert_eq!(t.total(), total_before, "counts must be conserved");
        let entries_total: u64 = t.entries().iter().map(|&(_, c)| c).sum();
        assert_eq!(entries_total, total_before);
        // The tree still works after aggregation.
        t.insert_addr(a("2400::1"), 3);
        assert_eq!(t.total(), total_before + 3);
        assert!(t.count_within(p("::/0")) == total_before + 3);
    }

    #[test]
    fn aggregate_to_size_degenerate_cases() {
        let mut t = RadixTree::new();
        assert_eq!(t.aggregate_to_size(10), 0, "empty tree");
        t.insert_addr(a("2001:db8::1"), 5);
        assert_eq!(t.aggregate_to_size(10), 0, "already within budget");
        // Collapsing below one node leaves a ::/0 accumulator.
        t.insert_addr(a("2400::1"), 5);
        t.insert_addr(a("2600::1"), 5);
        t.aggregate_to_size(1);
        assert_eq!(t.total(), 15);
        assert_eq!(t.count_within(p("::/0")), 15);
        assert!(t.node_count() >= 1);
    }

    #[test]
    fn aguri_zero_threshold_keeps_everything() {
        let mut t = RadixTree::new();
        t.insert_addr(a("2001:db8::1"), 3);
        let agg = t.aguri_aggregate(0.0);
        assert_eq!(agg.iter().map(|&(_, c)| c).sum::<u64>(), 3);
    }

    #[test]
    fn prefix_map_longest_match() {
        let mut rt: PrefixMap<u32> = PrefixMap::new();
        rt.insert(p("2001:db8::/32"), 1);
        rt.insert(p("2001:db8:ff::/48"), 2);
        rt.insert(p("2400::/12"), 3);
        assert_eq!(rt.len(), 3);
        assert_eq!(rt.longest_match(a("2001:db8::1")).map(|(_, v)| *v), Some(1));
        assert_eq!(
            rt.longest_match(a("2001:db8:ff::1")).map(|(_, v)| *v),
            Some(2)
        );
        assert_eq!(rt.longest_match(a("2400:1::1")).map(|(_, v)| *v), Some(3));
        assert_eq!(rt.longest_match(a("3000::1")), None);
    }

    #[test]
    fn prefix_map_replace_and_entries() {
        let mut rt: PrefixMap<&str> = PrefixMap::new();
        assert!(rt.is_empty());
        assert_eq!(rt.insert(p("2001:db8::/32"), "old"), None);
        assert_eq!(rt.insert(p("2001:db8::/32"), "new"), Some("old"));
        assert_eq!(rt.len(), 1);
        assert_eq!(rt.get(p("2001:db8::/32")), Some(&"new"));
        assert_eq!(rt.get(p("2001:db8::/48")), None);
        let e = rt.entries();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].0, p("2001:db8::/32"));
    }

    #[test]
    fn try_insert_is_infallible_for_canonical_prefixes() {
        let mut t = RadixTree::new();
        for s in ["2001:db8::1", "2001:db8::4", "2400::1", "::"] {
            t.try_insert(Prefix::host(a(s)), 1).unwrap();
        }
        t.try_insert(p("::/0"), 2).unwrap();
        t.try_insert(p("2001:db8::/32"), 3).unwrap();
        assert_eq!(t.total(), 9);

        let mut rt: PrefixMap<u32> = PrefixMap::new();
        assert_eq!(rt.try_insert(p("2001:db8::/32"), 1).unwrap(), None);
        assert_eq!(rt.try_insert(p("2001:db8::/32"), 2).unwrap(), Some(1));
        rt.try_insert(p("::/0"), 0).unwrap();
        rt.try_insert(p("2001:db8:ff::/48"), 3).unwrap();
        assert_eq!(rt.len(), 3);
        assert_eq!(
            rt.longest_match(a("2001:db8:ff::9")).map(|(_, v)| *v),
            Some(3)
        );
    }

    #[test]
    fn trie_error_labels_and_display() {
        let e = TrieError::StructureCorrupt {
            prefix: p("2001:db8::/32"),
            site: "test",
        };
        assert_eq!(e.label(), "structure-corrupt");
        assert!(e.to_string().contains("2001:db8::/32"));
        let d = TrieError::DepthExceeded {
            prefix: p("::/128"),
        };
        assert_eq!(d.label(), "depth-exceeded");
        assert!(d.to_string().contains("depth"));
    }

    #[test]
    fn approx_bytes_tracks_node_count() {
        let mut t = RadixTree::new();
        assert_eq!(t.approx_bytes(), 0);
        t.insert_addr(a("2001:db8::1"), 1);
        let one = t.approx_bytes();
        assert!(one > 0);
        t.insert_addr(a("2400::1"), 1);
        assert!(t.approx_bytes() > one);
        assert_eq!(t.approx_bytes() % t.node_count(), 0);
    }

    #[test]
    fn densify_budgeted_degrades_but_stays_sound() {
        let mut t = RadixTree::new();
        for i in 0..1024u128 {
            t.insert_addr(Addr(a("2001:db8::").0 | (i * 7)), 1);
        }
        let nodes = t.node_count();
        assert!(nodes > 100);

        // No budget: identical to plain densify.
        let mut clone = RadixTree::new();
        for i in 0..1024u128 {
            clone.insert_addr(Addr(a("2001:db8::").0 | (i * 7)), 1);
        }
        let unbudgeted = clone.densify(16, 112);
        let free = t.densify_budgeted(16, 112, 0);
        assert!(!free.degraded);
        assert_eq!(free.folded, 0);
        assert_eq!(free.dense, unbudgeted);

        // Tight budget: tree folds, results degrade to coarser blocks
        // but every reported block still holds >= its reported count of
        // real observations, and counts stay conserved.
        let mut capped = RadixTree::new();
        for i in 0..1024u128 {
            capped.insert_addr(Addr(a("2001:db8::").0 | (i * 7)), 1);
        }
        let total = capped.total();
        let b = capped.densify_budgeted(16, 112, 64);
        assert!(b.degraded);
        assert!(b.folded > 0);
        assert!(b.nodes_after < b.nodes_before);
        assert_eq!(capped.total(), total, "budget must conserve counts");
        for d in &b.dense {
            assert!(d.count >= 16, "n floor must hold under degradation");
            assert!(
                capped.count_within(d.prefix) >= d.count,
                "reported count must be a real observed count"
            );
        }
    }

    #[test]
    fn insert_addr_capped_bounds_growth() {
        let mut t = RadixTree::new();
        let mut folded_total = 0usize;
        for i in 0..5_000u128 {
            folded_total += t.insert_addr_capped(Addr(a("2a00::").0 | (i * 0x1_0001)), 1, 256);
        }
        assert!(folded_total > 0, "cap must have fired");
        assert!(
            t.node_count() <= 256 + 2,
            "steady state must respect the cap, got {}",
            t.node_count()
        );
        assert_eq!(t.total(), 5_000, "capped ingestion conserves counts");
        // Unbudgeted path never folds.
        let mut free = RadixTree::new();
        for i in 0..500u128 {
            assert_eq!(free.insert_addr_capped(Addr(i << 80), 1, 0), 0);
        }
    }

    #[test]
    fn prefix_map_default_route() {
        let mut rt: PrefixMap<u32> = PrefixMap::new();
        rt.insert(p("::/0"), 0);
        rt.insert(p("2001:db8::/32"), 1);
        assert_eq!(rt.longest_match(a("9999::1")).map(|(_, v)| *v), Some(0));
        assert_eq!(rt.longest_match(a("2001:db8::1")).map(|(_, v)| *v), Some(1));
    }
}
