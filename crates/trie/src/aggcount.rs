//! Active aggregate counts, aggregate populations, and fixed-length dense
//! prefixes, computed by sorted scans.
//!
//! Kohler et al. define the *active aggregate count* `n_p`: the number of
//! /p prefixes needed to cover a set of addresses. The paper's footnote 3
//! observes that for one prefix length this is just
//! `sort | cut -c1-$((p/4)) | uniq -c`; this module generalizes the trick:
//! from one sorted pass over a set, the common-prefix lengths of adjacent
//! addresses give `n_p` for **all 129 prefix lengths simultaneously**,
//! because `n_p = 1 + |{ adjacent pairs with common prefix < p bits }|`.

use crate::{AddrSet, DensePrefix};
use v6census_addr::bits::high_mask;
use v6census_addr::cast::checked_usize;
use v6census_addr::{Addr, Prefix};

/// Active aggregate counts `n_p` for every prefix length p in 0..=128.
///
/// `n_0 = 1` and `n_128 = N` by definition (paper §5.2.1); the counts are
/// non-decreasing in p, and each step at most doubles — exactly the
/// properties the MRA ratios are built on (property-tested in
/// `v6census-core`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregateCounts {
    counts: [u64; 129],
    total: u64,
}

impl AggregateCounts {
    /// Computes all `n_p` from a sorted address set in one pass.
    pub fn of(set: &AddrSet) -> AggregateCounts {
        let keys = set.keys();
        let mut counts = [0u64; 129];
        if keys.is_empty() {
            return AggregateCounts { counts, total: 0 };
        }
        // hist[c] = number of adjacent pairs whose common prefix is exactly
        // c bits (c in 0..=127; equal keys can't occur in a set).
        let mut hist = [0u64; 128];
        for (a, b) in keys.iter().zip(keys.iter().skip(1)) {
            let cpl = checked_usize(u128::from((a ^ b).leading_zeros()));
            hist[cpl] += 1;
        }
        // n_p = 1 + sum of hist[c] for c < p.
        let mut acc = 1u64;
        for (p, c) in counts.iter_mut().enumerate() {
            if let Some(prev) = p.checked_sub(1) {
                acc = acc.saturating_add(hist[prev]);
            }
            *c = acc;
        }
        AggregateCounts {
            counts,
            total: keys.len() as u64,
        }
    }

    /// `n_p`: the number of /p prefixes covering the set.
    ///
    /// # Panics
    /// Panics if `p > 128`.
    pub fn n(&self, p: u8) -> u64 {
        self.counts[usize::from(p)]
    }

    /// The number of addresses in the underlying set (= `n_128`).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The MRA count ratio γ^k_p = n_{p+k} / n_p (paper §5.2.1). Returns
    /// 1.0 for an empty set.
    ///
    /// # Panics
    /// Panics if `p + k > 128`.
    pub fn ratio(&self, p: u8, k: u8) -> f64 {
        assert!(u16::from(p) + u16::from(k) <= 128, "segment exceeds /128");
        if self.total == 0 {
            return 1.0;
        }
        self.counts[usize::from(p) + usize::from(k)] as f64 / self.counts[usize::from(p)] as f64
    }

    /// All γ^k_p for p = 0, k, 2k, … — one curve of an MRA plot. The
    /// product of the returned ratios equals the set size (the identity
    /// noted in §5.2.1).
    ///
    /// # Panics
    /// Panics if `k` is 0 or does not divide 128.
    pub fn ratio_curve(&self, k: u8) -> Vec<(u8, f64)> {
        assert!(k > 0 && 128 % k == 0, "k must divide 128");
        (0..128 / k)
            .map(|i| {
                // i < 128/k, so i*k stays below 128.
                let p = i.saturating_mul(k);
                (p, self.ratio(p, k))
            })
            .collect()
    }
}

/// The observed population (address count) of every *active* /p aggregate,
/// in ascending block order — Kohler's aggregate population metric
/// (paper §5.2.2, Figure 3).
pub fn populations(set: &AddrSet, p: u8) -> Vec<u64> {
    assert!(p <= 128, "prefix length out of range");
    let keys = set.keys();
    // One output entry per distinct /p block — never more than keys.
    let mut out = Vec::with_capacity(keys.len());
    let Some(&first) = keys.first() else {
        return out;
    };
    let mask = high_mask(p);
    let mut cur = first & mask;
    let mut run = 0u64;
    for &k in keys {
        let m = k & mask;
        if m == cur {
            run = run.saturating_add(1);
        } else {
            out.push(run);
            cur = m;
            run = 1;
        }
    }
    out.push(run);
    out
}

/// The `n@/p-dense` class at a *fixed* prefix length (paper §5.2.2
/// definition): every /p block containing at least `n` observed addresses,
/// with its observed count. This is the sort-based fast path of
/// footnote 3; `RadixTree::densify_in_place` with /p-truncated inserts
/// computes the same answer (property-tested).
pub fn dense_prefixes_at(set: &AddrSet, n: u64, p: u8) -> Vec<DensePrefix> {
    assert!(p <= 128, "prefix length out of range");
    assert!(n >= 1, "density numerator must be at least 1");
    let keys = set.keys();
    // One output entry per distinct /p block — never more than keys.
    let mut out = Vec::with_capacity(keys.len());
    let Some(&first) = keys.first() else {
        return out;
    };
    let mask = high_mask(p);
    let mut cur = first & mask;
    let mut run = 0u64;
    let flush = |block: u128, run: u64, out: &mut Vec<DensePrefix>| {
        if run >= n {
            out.push(DensePrefix {
                prefix: Prefix::new(Addr(block), p),
                count: run,
            });
        }
    };
    for &k in keys {
        let m = k & mask;
        if m == cur {
            run = run.saturating_add(1);
        } else {
            flush(cur, run, &mut out);
            cur = m;
            run = 1;
        }
    }
    flush(cur, run, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_addr::Addr;

    fn set(addrs: &[&str]) -> AddrSet {
        AddrSet::from_iter(addrs.iter().map(|s| s.parse::<Addr>().unwrap()))
    }

    #[test]
    fn aggregate_counts_basics() {
        let s = set(&["2001:db8::1", "2001:db8::4", "2400::1"]);
        let agg = AggregateCounts::of(&s);
        assert_eq!(agg.n(0), 1);
        assert_eq!(agg.n(128), 3);
        // 2001::/3 vs 2400::/3: diverge inside the first 16 bits
        // (0x2001 vs 0x2400 -> common prefix 5 bits).
        assert_eq!(agg.n(5), 1);
        assert_eq!(agg.n(6), 2);
        // ::1 and ::4 diverge at bit 125.
        assert_eq!(agg.n(125), 2);
        assert_eq!(agg.n(126), 3);
        assert_eq!(agg.total(), 3);
    }

    #[test]
    fn empty_set() {
        let agg = AggregateCounts::of(&AddrSet::new());
        assert_eq!(agg.n(64), 0);
        assert_eq!(agg.ratio(0, 16), 1.0);
    }

    #[test]
    fn ratio_identity_product_equals_n() {
        let s = set(&[
            "2001:db8::1",
            "2001:db8::4",
            "2001:db8:1::9",
            "2400::1",
            "2607:f8b0::5",
        ]);
        let agg = AggregateCounts::of(&s);
        for k in [1u8, 4, 8, 16] {
            let product: f64 = agg.ratio_curve(k).iter().map(|&(_, r)| r).product();
            assert!(
                (product - s.len() as f64).abs() < 1e-6,
                "k={k}: product {product} != {}",
                s.len()
            );
        }
    }

    #[test]
    fn ratios_bounded() {
        let s = set(&["2001:db8::1", "2001:db8::2", "2001:db8::3"]);
        let agg = AggregateCounts::of(&s);
        for p in 0..128u8 {
            let r = agg.ratio(p, 1);
            assert!((1.0..=2.0).contains(&r), "γ at {p} = {r}");
        }
    }

    #[test]
    fn populations_run_lengths() {
        let s = set(&["2001:db8::1", "2001:db8::2", "2001:db8:0:1::1", "2400::1"]);
        let mut pops = populations(&s, 64);
        pops.sort_unstable();
        assert_eq!(pops, vec![1, 1, 2]);
        assert_eq!(populations(&s, 0), vec![4]);
        assert_eq!(populations(&s, 128), vec![1, 1, 1, 1]);
        assert!(populations(&AddrSet::new(), 64).is_empty());
    }

    #[test]
    fn dense_prefixes_fixed_length() {
        let s = set(&["2001:db8::1", "2001:db8::4", "2400::1"]);
        let d = dense_prefixes_at(&s, 2, 112);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].prefix.to_string(), "2001:db8::/112");
        assert_eq!(d[0].count, 2);
        assert!(dense_prefixes_at(&s, 2, 126).is_empty());
        assert_eq!(dense_prefixes_at(&s, 1, 112).len(), 2);
    }

    #[test]
    fn dense_matches_trie_at_fixed_length() {
        use crate::RadixTree;
        // Cross-check the sort path against the paper's trie algorithm
        // with /p-truncated inserts (§5.2.3 step 1 fixed-length variant).
        let s = set(&[
            "2001:db8::1",
            "2001:db8::4",
            "2001:db8::ffff",
            "2001:db8:0:1::1",
            "2400::1",
            "2400::2",
        ]);
        for p in [112u8, 64, 48] {
            let want = dense_prefixes_at(&s, 2, p);
            let mut t = RadixTree::new();
            for a in s.iter() {
                t.insert(v6census_addr::Prefix::of(a, p), 1);
            }
            let got: Vec<DensePrefix> = t
                .entries()
                .into_iter()
                .filter(|&(_, c)| c >= 2)
                .map(|(prefix, count)| DensePrefix { prefix, count })
                .collect();
            assert_eq!(want, got, "mismatch at /{p}");
        }
    }
}
