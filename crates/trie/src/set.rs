//! [`AddrSet`]: a compact, sorted, deduplicated set of IPv6 addresses.
//!
//! Daily observation sets in the temporal engine hold hundreds of
//! thousands to millions of addresses; a sorted `Vec<u128>` is the most
//! cache-friendly representation for the operations the classifiers
//! perform — membership, intersection size, union, and ordered scans for
//! aggregate counting.

use v6census_addr::bits::high_mask;
use v6census_addr::Addr;

/// A sorted, deduplicated set of IPv6 addresses backed by a `Vec<u128>`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AddrSet {
    keys: Vec<u128>,
}

impl AddrSet {
    /// Creates an empty set.
    pub fn new() -> AddrSet {
        AddrSet::default()
    }

    /// Builds a set from any iterator of addresses (sorts and dedups).
    /// (Also available through the `FromIterator` impl; the inherent
    /// method keeps call sites free of a `use` for the trait.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = Addr>>(iter: I) -> AddrSet {
        let mut keys: Vec<u128> = iter.into_iter().map(|a| a.0).collect();
        keys.sort_unstable();
        keys.dedup();
        AddrSet { keys }
    }

    /// Builds a set from a pre-sorted, pre-deduplicated vector of keys.
    ///
    /// # Panics
    /// Panics (in debug builds) if the input is not strictly increasing.
    pub fn from_sorted(keys: Vec<u128>) -> AddrSet {
        debug_assert!(
            keys.iter().zip(keys.iter().skip(1)).all(|(a, b)| a < b),
            "keys not strictly sorted"
        );
        AddrSet { keys }
    }

    /// Number of addresses in the set.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, a: Addr) -> bool {
        self.keys.binary_search(&a.0).is_ok()
    }

    /// Iterates the addresses in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Addr> + '_ {
        self.keys.iter().map(|&k| Addr(k))
    }

    /// The raw sorted keys.
    pub fn keys(&self) -> &[u128] {
        &self.keys
    }

    /// Size of the intersection with `other`, by linear merge — O(n+m),
    /// the workhorse of the stability classifier (common addresses
    /// between two observation days).
    pub fn intersection_len(&self, other: &AddrSet) -> usize {
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        let (a, b) = (&self.keys, &other.keys);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// The intersection with `other` as a new set.
    pub fn intersection(&self, other: &AddrSet) -> AddrSet {
        let mut out = Vec::with_capacity(self.keys.len().min(other.keys.len()));
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.keys, &other.keys);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        AddrSet { keys: out }
    }

    /// The union with `other` as a new set.
    pub fn union(&self, other: &AddrSet) -> AddrSet {
        let mut out = Vec::with_capacity(self.keys.len() + other.keys.len());
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.keys, &other.keys);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        AddrSet { keys: out }
    }

    /// Union of many sets, by k-way repeated pairwise merge (balanced
    /// enough for the ≤ 21-day windows the classifiers use).
    pub fn union_all<'a, I: IntoIterator<Item = &'a AddrSet>>(sets: I) -> AddrSet {
        let mut acc = AddrSet::new();
        for s in sets {
            acc = acc.union(s);
        }
        acc
    }

    /// Maps every address to its containing `/len` block and returns the
    /// set of distinct block network-addresses. `map_prefix(64)` turns an
    /// address set into its active-/64 set (paper Table 1).
    pub fn map_prefix(&self, len: u8) -> AddrSet {
        if len >= 128 {
            // Reserved copy, not `.clone()`: `map_prefix` runs inside
            // per-day loops (prefix_view, spectra), so its allocation
            // effect must stay amortized for the R005 proof.
            let mut out = Vec::with_capacity(self.keys.len());
            out.extend_from_slice(&self.keys);
            return AddrSet { keys: out };
        }
        let mut out: Vec<u128> = Vec::with_capacity(self.keys.len());
        let mask = high_mask(len);
        let mut last: Option<u128> = None;
        for &k in &self.keys {
            let m = k & mask;
            if last != Some(m) {
                out.push(m);
                last = Some(m);
            }
        }
        AddrSet { keys: out }
    }
}

impl FromIterator<Addr> for AddrSet {
    fn from_iter<I: IntoIterator<Item = Addr>>(iter: I) -> AddrSet {
        AddrSet::from_iter(iter)
    }
}

impl<'a> IntoIterator for &'a AddrSet {
    type Item = Addr;
    type IntoIter = std::iter::Map<std::slice::Iter<'a, u128>, fn(&u128) -> Addr>;
    fn into_iter(self) -> Self::IntoIter {
        self.keys.iter().map(|&k| Addr(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(addrs: &[&str]) -> AddrSet {
        AddrSet::from_iter(addrs.iter().map(|s| s.parse::<Addr>().unwrap()))
    }

    #[test]
    fn dedups_and_sorts() {
        let s = set(&["2001:db8::2", "2001:db8::1", "2001:db8::2"]);
        assert_eq!(s.len(), 2);
        let v: Vec<Addr> = s.iter().collect();
        assert_eq!(v[0].to_string(), "2001:db8::1");
        assert_eq!(v[1].to_string(), "2001:db8::2");
    }

    #[test]
    fn membership() {
        let s = set(&["2001:db8::1", "2001:db8::3"]);
        assert!(s.contains("2001:db8::1".parse().unwrap()));
        assert!(!s.contains("2001:db8::2".parse().unwrap()));
    }

    #[test]
    fn intersection_and_union() {
        let a = set(&["2001:db8::1", "2001:db8::2", "2001:db8::3"]);
        let b = set(&["2001:db8::2", "2001:db8::3", "2001:db8::4"]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.intersection(&b).len(), 2);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(AddrSet::union_all([&a, &b].into_iter()).len(), 4);
        assert_eq!(a.intersection_len(&AddrSet::new()), 0);
        assert_eq!(a.union(&AddrSet::new()), a);
    }

    #[test]
    fn map_prefix_collapses_to_64s() {
        let s = set(&["2001:db8:0:1::1", "2001:db8:0:1::2", "2001:db8:0:2::1"]);
        let p64 = s.map_prefix(64);
        assert_eq!(p64.len(), 2);
        assert_eq!(s.map_prefix(128), s);
        assert_eq!(s.map_prefix(0).len(), 1);
    }
}
