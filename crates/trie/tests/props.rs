//! Property-based tests for the trie substrate: the Patricia trie, the
//! sort-based fast paths, and their equivalence (a DESIGN.md ablation).
//!
//! Cases are driven by a deterministic splitmix64 stream (no external
//! property-testing crate), so the workspace builds offline. Failure
//! messages carry the case index, which reproduces the input.

use std::collections::{BTreeMap, BTreeSet};
use v6census_addr::{Addr, Prefix};
use v6census_trie::{
    dense_prefixes_at, populations, AddrSet, AggregateCounts, DensePrefix, PrefixMap, RadixTree,
};

const CASES: u64 = 120;

/// Deterministic case generator: a splitmix64 stream.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x6a09_e667_f3bc_c909)
    }

    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n >= 1);
        ((self.u64() as u128 * n as u128) >> 64) as u64
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Clustered address generator: realistic populations share prefixes,
    /// so bias toward a handful of /64-ish bases with small offsets.
    fn clustered_addrs(&mut self) -> Vec<Addr> {
        const BASES: [u64; 4] = [
            0x2001_0db8_0000_0000,
            0x2001_0db8_0000_0001,
            0x2400_4000_0012_0000,
            0x2600_1400_0abc_0000,
        ];
        let n = self.below(200) as usize;
        (0..n)
            .map(|_| {
                let hi = BASES[self.below(4) as usize];
                let lo = self.below(0x2_0000);
                Addr(((hi as u128) << 64) | lo as u128)
            })
            .collect()
    }
}

#[test]
fn addrset_matches_btreeset() {
    let mut g = Gen::new(41);
    for case in 0..CASES {
        let addrs = g.clustered_addrs();
        let probe_lo = g.u64();
        let set = AddrSet::from_iter(addrs.iter().copied());
        let reference: BTreeSet<u128> = addrs.iter().map(|a| a.0).collect();
        assert_eq!(set.len(), reference.len(), "case {case}");
        let collected: Vec<u128> = set.iter().map(|a| a.0).collect();
        let expected: Vec<u128> = reference.iter().copied().collect();
        assert_eq!(collected, expected, "case {case}");
        let p = Addr((0x2001_0db8u128 << 96) | probe_lo as u128);
        assert_eq!(set.contains(p), reference.contains(&p.0), "case {case}");
    }
}

#[test]
fn set_algebra() {
    let mut g = Gen::new(42);
    for case in 0..CASES {
        let xs = g.clustered_addrs();
        let ys = g.clustered_addrs();
        let a = AddrSet::from_iter(xs.iter().copied());
        let b = AddrSet::from_iter(ys.iter().copied());
        let ra: BTreeSet<u128> = xs.iter().map(|v| v.0).collect();
        let rb: BTreeSet<u128> = ys.iter().map(|v| v.0).collect();
        assert_eq!(
            a.intersection_len(&b),
            ra.intersection(&rb).count(),
            "case {case}"
        );
        assert_eq!(a.union(&b).len(), ra.union(&rb).count(), "case {case}");
        assert_eq!(
            a.intersection(&b).len(),
            ra.intersection(&rb).count(),
            "case {case}"
        );
        assert_eq!(
            a.union(&b).len() + a.intersection_len(&b),
            a.len() + b.len(),
            "case {case}: |A∪B| + |A∩B| = |A| + |B|"
        );
    }
}

#[test]
fn map_prefix_matches_mask() {
    let mut g = Gen::new(43);
    for case in 0..CASES {
        let addrs = g.clustered_addrs();
        let len = g.below(129) as u8;
        let set = AddrSet::from_iter(addrs.iter().copied());
        let mapped = set.map_prefix(len);
        let reference: BTreeSet<u128> = addrs.iter().map(|a| a.mask(len).0).collect();
        assert_eq!(mapped.len(), reference.len(), "case {case} len {len}");
        for a in mapped.iter() {
            assert!(reference.contains(&a.0), "case {case}: {a}");
        }
    }
}

#[test]
fn aggregate_count_laws() {
    let mut g = Gen::new(44);
    for case in 0..CASES {
        let set = AddrSet::from_iter(g.clustered_addrs());
        if set.is_empty() {
            continue;
        }
        let agg = AggregateCounts::of(&set);
        assert_eq!(agg.n(0), 1, "case {case}");
        assert_eq!(agg.n(128), set.len() as u64, "case {case}");
        for p in 0..128u8 {
            assert!(agg.n(p) <= agg.n(p + 1), "case {case} p {p}");
            assert!(agg.n(p + 1) <= 2 * agg.n(p), "case {case} p {p}");
        }
    }
}

#[test]
fn aggregate_counts_match_uniq() {
    let mut g = Gen::new(45);
    for case in 0..CASES {
        let set = AddrSet::from_iter(g.clustered_addrs());
        let p = g.below(129) as u8;
        if set.is_empty() {
            continue;
        }
        let agg = AggregateCounts::of(&set);
        let distinct: BTreeSet<u128> = set.iter().map(|a| a.mask(p).0).collect();
        assert_eq!(agg.n(p), distinct.len() as u64, "case {case} p {p}");
    }
}

#[test]
fn populations_match_counting() {
    let mut g = Gen::new(46);
    for case in 0..CASES {
        let set = AddrSet::from_iter(g.clustered_addrs());
        let p = g.below(129) as u8;
        let pops = populations(&set, p);
        assert_eq!(pops.iter().sum::<u64>() as usize, set.len(), "case {case}");
        let mut reference: BTreeMap<u128, u64> = BTreeMap::new();
        for a in set.iter() {
            *reference.entry(a.mask(p).0).or_default() += 1;
        }
        let mut expected: Vec<u64> = reference.values().copied().collect();
        let mut got = pops.clone();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expected, "case {case} p {p}");
    }
}

#[test]
fn dense_sort_equals_trie() {
    let mut g = Gen::new(47);
    for case in 0..CASES {
        let set = AddrSet::from_iter(g.clustered_addrs());
        let n = g.range(1, 6);
        let p = g.range(32, 129) as u8;
        let sorted_path = dense_prefixes_at(&set, n, p);
        let mut tree = RadixTree::new();
        for a in set.iter() {
            tree.insert(Prefix::of(a, p), 1);
        }
        let trie_path: Vec<DensePrefix> = tree
            .entries()
            .into_iter()
            .filter(|&(_, c)| c >= n)
            .map(|(prefix, count)| DensePrefix { prefix, count })
            .collect();
        assert_eq!(sorted_path, trie_path, "case {case} n {n} p {p}");
    }
}

#[test]
fn densify_laws() {
    let mut g = Gen::new(48);
    for case in 0..CASES {
        let set = AddrSet::from_iter(g.clustered_addrs());
        let n = g.range(1, 5);
        let p = g.range(96, 125) as u8;
        let mut tree = RadixTree::new();
        for a in set.iter() {
            tree.insert_addr(a, 1);
        }
        let dense = tree.densify(n, p);
        for (i, d) in dense.iter().enumerate() {
            assert!(d.count >= n, "case {case}: count filter");
            assert!(d.prefix.len() <= 127, "case {case}");
            if d.prefix.len() <= p {
                let needed = n << (p - d.prefix.len()).min(63);
                assert!(d.count >= needed, "case {case}: {d:?} under-dense");
            }
            for other in &dense[i + 1..] {
                assert!(!d.prefix.overlaps(other.prefix), "case {case}: overlap");
            }
        }
        for fixed in dense_prefixes_at(&set, n, p) {
            assert!(
                dense.iter().any(|d| d.prefix.contains(fixed.prefix)),
                "case {case}: missing {fixed:?}"
            );
        }
    }
}

#[test]
fn count_within_matches_filter() {
    let mut g = Gen::new(49);
    for case in 0..CASES {
        let set = AddrSet::from_iter(g.clustered_addrs());
        let len = g.below(129) as u8;
        let pick = g.u64();
        if set.is_empty() {
            continue;
        }
        let mut tree = RadixTree::new();
        for a in set.iter() {
            tree.insert_addr(a, 1);
        }
        assert_eq!(tree.total(), set.len() as u64, "case {case}");
        let keys = set.keys();
        let member = Addr(keys[(pick % keys.len() as u64) as usize]);
        let probe = Prefix::of(member, len);
        let expected = set.iter().filter(|&a| probe.contains_addr(a)).count() as u64;
        assert_eq!(
            tree.count_within(probe),
            expected,
            "case {case} probe {probe}"
        );
    }
}

#[test]
fn aguri_conserves() {
    let mut g = Gen::new(50);
    for case in 0..CASES {
        let set = AddrSet::from_iter(g.clustered_addrs());
        let frac = g.below(500) as f64 / 1000.0;
        if set.is_empty() {
            continue;
        }
        let mut tree = RadixTree::new();
        for a in set.iter() {
            tree.insert_addr(a, 1);
        }
        let agg = tree.aguri_aggregate(frac);
        let total: u64 = agg.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, set.len() as u64, "case {case}");
        let threshold = (frac * set.len() as f64).ceil() as u64;
        for &(prefix, count) in &agg {
            if prefix != Prefix::ALL && threshold > 0 {
                assert!(count >= threshold, "case {case}: {prefix} kept at {count}");
            }
        }
    }
}

#[test]
fn lpm_matches_linear_scan() {
    let mut g = Gen::new(51);
    for case in 0..CASES {
        let n = g.below(40) as usize;
        let entries: Vec<(u64, u8)> = (0..n).map(|_| (g.u64(), g.range(8, 65) as u8)).collect();
        let probe = g.u64();
        let mut map: PrefixMap<usize> = PrefixMap::new();
        let mut list: Vec<(Prefix, usize)> = Vec::new();
        for (i, (hi, len)) in entries.iter().enumerate() {
            let p = Prefix::new(Addr((*hi as u128) << 64), *len);
            map.insert(p, i);
            list.retain(|&(q, _)| q != p);
            list.push((p, i));
        }
        let target = Addr((probe as u128) << 64);
        let got = map.longest_match(target).map(|(p, &v)| (p, v));
        let want = list
            .iter()
            .filter(|&&(p, _)| p.contains_addr(target))
            .max_by_key(|&&(p, _)| p.len())
            .map(|&(p, v)| (p, v));
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn aggregate_to_size_conserves() {
    let mut g = Gen::new(52);
    for case in 0..CASES {
        let addrs = g.clustered_addrs();
        let budget = g.range(1, 64) as usize;
        let mut tree = RadixTree::new();
        for a in &addrs {
            tree.insert_addr(*a, 1);
        }
        let total = tree.total();
        let before = tree.node_count();
        let removed = tree.aggregate_to_size(budget);
        assert_eq!(tree.total(), total, "case {case}");
        assert_eq!(tree.node_count(), before - removed, "case {case}");
        let entries_total: u64 = tree.entries().iter().map(|&(_, c)| c).sum();
        assert_eq!(entries_total, total, "case {case}");
    }
}
