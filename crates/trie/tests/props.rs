//! Property-based tests for the trie substrate: the Patricia trie, the
//! sort-based fast paths, and their equivalence (a DESIGN.md ablation).

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use v6census_addr::{Addr, Prefix};
use v6census_trie::{dense_prefixes_at, populations, AddrSet, AggregateCounts, DensePrefix, PrefixMap, RadixTree};

/// Clustered address generator: realistic populations share prefixes, so
/// bias toward a handful of /64-ish bases with small offsets.
fn clustered_addrs() -> impl Strategy<Value = Vec<Addr>> {
    let base = prop_oneof![
        Just(0x2001_0db8_0000_0000u64),
        Just(0x2001_0db8_0000_0001u64),
        Just(0x2400_4000_0012_0000u64),
        Just(0x2600_1400_0abc_0000u64),
    ];
    prop::collection::vec(
        (base, 0u64..0x2_0000).prop_map(|(hi, lo)| Addr(((hi as u128) << 64) | lo as u128)),
        0..200,
    )
}

proptest! {
    /// AddrSet behaves like BTreeSet for membership/size/order.
    #[test]
    fn addrset_matches_btreeset(addrs in clustered_addrs(), probe: u64) {
        let set = AddrSet::from_iter(addrs.iter().copied());
        let reference: BTreeSet<u128> = addrs.iter().map(|a| a.0).collect();
        prop_assert_eq!(set.len(), reference.len());
        let collected: Vec<u128> = set.iter().map(|a| a.0).collect();
        let expected: Vec<u128> = reference.iter().copied().collect();
        prop_assert_eq!(collected, expected);
        let p = Addr((0x2001_0db8u128 << 96) | probe as u128);
        prop_assert_eq!(set.contains(p), reference.contains(&p.0));
    }

    /// Set algebra sizes agree with BTreeSet.
    #[test]
    fn set_algebra(xs in clustered_addrs(), ys in clustered_addrs()) {
        let a = AddrSet::from_iter(xs.iter().copied());
        let b = AddrSet::from_iter(ys.iter().copied());
        let ra: BTreeSet<u128> = xs.iter().map(|v| v.0).collect();
        let rb: BTreeSet<u128> = ys.iter().map(|v| v.0).collect();
        prop_assert_eq!(a.intersection_len(&b), ra.intersection(&rb).count());
        prop_assert_eq!(a.union(&b).len(), ra.union(&rb).count());
        prop_assert_eq!(a.intersection(&b).len(), ra.intersection(&rb).count());
        // |A∪B| + |A∩B| = |A| + |B|
        prop_assert_eq!(
            a.union(&b).len() + a.intersection_len(&b),
            a.len() + b.len()
        );
    }

    /// map_prefix agrees with masking through a BTreeSet.
    #[test]
    fn map_prefix_matches_mask(addrs in clustered_addrs(), len in 0u8..=128) {
        let set = AddrSet::from_iter(addrs.iter().copied());
        let mapped = set.map_prefix(len);
        let reference: BTreeSet<u128> = addrs.iter().map(|a| a.mask(len).0).collect();
        prop_assert_eq!(mapped.len(), reference.len());
        for a in mapped.iter() {
            prop_assert!(reference.contains(&a.0));
        }
    }

    /// Aggregate counts: n_0 = 1, n_128 = N, monotone, at most doubling.
    #[test]
    fn aggregate_count_laws(addrs in clustered_addrs()) {
        let set = AddrSet::from_iter(addrs.iter().copied());
        prop_assume!(!set.is_empty());
        let agg = AggregateCounts::of(&set);
        prop_assert_eq!(agg.n(0), 1);
        prop_assert_eq!(agg.n(128), set.len() as u64);
        for p in 0..128u8 {
            prop_assert!(agg.n(p) <= agg.n(p + 1));
            prop_assert!(agg.n(p + 1) <= 2 * agg.n(p));
        }
    }

    /// n_p computed by the adjacency scan equals the count of distinct
    /// masked values (the sort|cut|uniq definition).
    #[test]
    fn aggregate_counts_match_uniq(addrs in clustered_addrs(), p in 0u8..=128) {
        let set = AddrSet::from_iter(addrs.iter().copied());
        prop_assume!(!set.is_empty());
        let agg = AggregateCounts::of(&set);
        let distinct: BTreeSet<u128> = set.iter().map(|a| a.mask(p).0).collect();
        prop_assert_eq!(agg.n(p), distinct.len() as u64);
    }

    /// populations() sums to the set size and matches a map-reduce.
    #[test]
    fn populations_match_counting(addrs in clustered_addrs(), p in 0u8..=128) {
        let set = AddrSet::from_iter(addrs.iter().copied());
        let pops = populations(&set, p);
        prop_assert_eq!(pops.iter().sum::<u64>() as usize, set.len());
        let mut reference: BTreeMap<u128, u64> = BTreeMap::new();
        for a in set.iter() {
            *reference.entry(a.mask(p).0).or_default() += 1;
        }
        let mut expected: Vec<u64> = reference.values().copied().collect();
        let mut got = pops.clone();
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// The fixed-length dense classes from the sorted scan equal the
    /// trie computed with /p-truncated inserts (paper §5.2.3 step 1).
    #[test]
    fn dense_sort_equals_trie(addrs in clustered_addrs(), n in 1u64..6, p in 32u8..=128) {
        let set = AddrSet::from_iter(addrs.iter().copied());
        let sorted_path = dense_prefixes_at(&set, n, p);
        let mut tree = RadixTree::new();
        for a in set.iter() {
            tree.insert(Prefix::of(a, p), 1);
        }
        let trie_path: Vec<DensePrefix> = tree
            .entries()
            .into_iter()
            .filter(|&(_, c)| c >= n)
            .map(|(prefix, count)| DensePrefix { prefix, count })
            .collect();
        prop_assert_eq!(sorted_path, trie_path);
    }

    /// General densify: results are non-overlapping, meet the density
    /// and count requirements, and cover every address that any dense
    /// /p block covers.
    #[test]
    fn densify_laws(addrs in clustered_addrs(), n in 1u64..5, p in 96u8..=124) {
        let set = AddrSet::from_iter(addrs.iter().copied());
        let mut tree = RadixTree::new();
        for a in set.iter() {
            tree.insert_addr(a, 1);
        }
        let dense = tree.densify(n, p);
        for (i, d) in dense.iter().enumerate() {
            prop_assert!(d.count >= n, "count filter");
            prop_assert!(d.prefix.len() <= 127);
            // Density requirement: count ≥ n · 2^(p−len) for len ≤ p.
            if d.prefix.len() <= p {
                let needed = n << (p - d.prefix.len()).min(63);
                prop_assert!(d.count >= needed, "{:?} under-dense", d);
            }
            for other in &dense[i + 1..] {
                prop_assert!(!d.prefix.overlaps(other.prefix), "overlap");
            }
        }
        // Every fixed-length dense block is inside some reported block.
        for fixed in dense_prefixes_at(&set, n, p) {
            prop_assert!(
                dense.iter().any(|d| d.prefix.contains(fixed.prefix)),
                "missing {:?}",
                fixed
            );
        }
    }

    /// Tree totals and per-prefix subtree counts agree with counting.
    #[test]
    fn count_within_matches_filter(addrs in clustered_addrs(), len in 0u8..=128, pick: u64) {
        let set = AddrSet::from_iter(addrs.iter().copied());
        prop_assume!(!set.is_empty());
        let mut tree = RadixTree::new();
        for a in set.iter() {
            tree.insert_addr(a, 1);
        }
        prop_assert_eq!(tree.total(), set.len() as u64);
        // Probe with the prefix of one of the members.
        let keys = set.keys();
        let member = Addr(keys[(pick % keys.len() as u64) as usize]);
        let probe = Prefix::of(member, len);
        let expected = set.iter().filter(|&a| probe.contains_addr(a)).count() as u64;
        prop_assert_eq!(tree.count_within(probe), expected);
    }

    /// Aguri aggregation conserves counts and every kept aggregate meets
    /// the threshold (except the ::/0 remainder).
    #[test]
    fn aguri_conserves(addrs in clustered_addrs(), frac in 0.0f64..0.5) {
        let set = AddrSet::from_iter(addrs.iter().copied());
        prop_assume!(!set.is_empty());
        let mut tree = RadixTree::new();
        for a in set.iter() {
            tree.insert_addr(a, 1);
        }
        let agg = tree.aguri_aggregate(frac);
        let total: u64 = agg.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, set.len() as u64);
        let threshold = (frac * set.len() as f64).ceil() as u64;
        for &(prefix, count) in &agg {
            if prefix != Prefix::ALL && threshold > 0 {
                prop_assert!(count >= threshold, "{prefix} kept at {count}");
            }
        }
    }

    /// PrefixMap longest-match agrees with a linear scan.
    #[test]
    fn lpm_matches_linear_scan(
        entries in prop::collection::vec((any::<u64>(), 8u8..=64), 0..40),
        probe: u64,
    ) {
        let mut map: PrefixMap<usize> = PrefixMap::new();
        let mut list: Vec<(Prefix, usize)> = Vec::new();
        for (i, (hi, len)) in entries.iter().enumerate() {
            let p = Prefix::new(Addr((*hi as u128) << 64), *len);
            map.insert(p, i);
            list.retain(|&(q, _)| q != p);
            list.push((p, i));
        }
        let target = Addr((probe as u128) << 64);
        let got = map.longest_match(target).map(|(p, &v)| (p, v));
        let want = list
            .iter()
            .filter(|&&(p, _)| p.contains_addr(target))
            .max_by_key(|&&(p, _)| p.len())
            .map(|&(p, v)| (p, v));
        prop_assert_eq!(got, want);
    }
}

proptest! {
    /// Memory-bounded aggregation conserves totals and shrinks node
    /// counts monotonically.
    #[test]
    fn aggregate_to_size_conserves(addrs in clustered_addrs(), budget in 1usize..64) {
        let mut tree = RadixTree::new();
        for a in &addrs {
            tree.insert_addr(*a, 1);
        }
        let total = tree.total();
        let before = tree.node_count();
        let removed = tree.aggregate_to_size(budget);
        prop_assert_eq!(tree.total(), total);
        prop_assert_eq!(tree.node_count(), before - removed);
        let entries_total: u64 = tree.entries().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(entries_total, total);
    }
}
