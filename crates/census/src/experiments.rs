//! The paper's in-text experiments (§6.1.1, §6.2.1–§6.2.3), plus the
//! ground-truth evaluations the synthetic world makes possible.

use crate::ingest::{group_by_mac, Census};
use crate::routing::RoutingTable;
use std::collections::BTreeMap;
use v6census_addr::malone::{classify_content_only, MaloneVerdict};
use v6census_addr::Addr;
use v6census_core::spatial::DensityClass;
use v6census_core::temporal::{Day, StabilityParams};
use v6census_synth::router::ProbeSim;
use v6census_synth::{TrueKind, World};
use v6census_trie::AddrSet;

/// Deterministic sample: `want` evenly spaced elements across the whole
/// sorted set (all of it when `want ≥ len`), so no region of the address
/// space is favoured.
pub fn sample_every(set: &AddrSet, want: usize) -> Vec<Addr> {
    if set.is_empty() || want == 0 {
        return Vec::new();
    }
    let keys = set.keys();
    if want >= keys.len() {
        return set.iter().collect();
    }
    (0..want)
        .map(|i| Addr(keys[i * keys.len() / want]))
        .collect()
}

// ---------------------------------------------------------------------------
// §6.1.1: router discovery with 3d-stable targets
// ---------------------------------------------------------------------------

/// Result of the §6.1.1 target-selection experiment.
#[derive(Clone, Debug)]
pub struct RouterDiscovery {
    /// Routers discovered by the IPv4-style baseline (resolvers + random
    /// active WWW clients).
    pub baseline_routers: usize,
    /// Routers discovered with 3d-stable WWW clients as targets.
    pub stable_routers: usize,
    /// Probe targets used per strategy.
    pub targets_per_strategy: usize,
}

impl RouterDiscovery {
    /// The paper's headline metric: percentage improvement of the
    /// stable-target strategy over the baseline (the paper reports 129%).
    pub fn improvement_pct(&self) -> f64 {
        if self.baseline_routers == 0 {
            return 0.0;
        }
        (self.stable_routers as f64 / self.baseline_routers as f64 - 1.0) * 100.0
    }
}

/// Runs the experiment: equal-sized target sets, one drawn from random
/// actives, one from 3d-stable addresses, both on top of the resolver
/// target class.
pub fn router_discovery(
    world: &World,
    census: &Census,
    reference: Day,
    targets: usize,
) -> RouterDiscovery {
    let sim = ProbeSim::new(world, reference);
    let active = census.other_daily().on(reference);
    let stable = census
        .other_daily()
        .stable_on(reference, &StabilityParams::three_day());
    // Equal-sized client target sets for a fair comparison.
    let targets = targets.min(active.len()).min(stable.len());

    let resolvers = sim.resolver_targets();
    let run = |clients: Vec<Addr>| -> usize {
        let mut t = resolvers.clone();
        t.extend(clients);
        sim.survey(t).len()
    };
    let baseline = run(sample_every(&active, targets));
    let with_stable = run(sample_every(&stable, targets));
    RouterDiscovery {
        baseline_routers: baseline,
        stable_routers: with_stable,
        targets_per_strategy: targets,
    }
}

// ---------------------------------------------------------------------------
// §6.1.1 / §6.2.1: EUI-64 analyses
// ---------------------------------------------------------------------------

/// Results of the EUI-64 IID analyses.
#[derive(Clone, Debug)]
pub struct Eui64Analysis {
    /// EUI-64 addresses in the week classified not-3d-stable.
    pub not_stable_eui64: usize,
    /// Of those, the fraction whose IID (MAC) appears in more than one
    /// address (the paper: 62%).
    pub frac_iid_multi_addr: f64,
    /// Of those, the fraction whose IID also appears in a 3d-stable
    /// address (the paper: 14%).
    pub frac_iid_in_stable: f64,
    /// Per-ASN: fraction of EUI-64 IIDs observed in exactly one /64
    /// during the week (the paper: JP 99.6%, EU 67.4%).
    pub single_64_share_by_asn: BTreeMap<u32, f64>,
}

/// Runs the weekly EUI-64 analysis over the week starting at `first`.
pub fn eui64_analysis(census: &Census, rt: &RoutingTable, first: Day) -> Eui64Analysis {
    let days = || first.range_inclusive(first + 6);
    let eui_week = census.eui64_over(days());
    let stability = census
        .other_daily()
        .stable_over_week(first, &StabilityParams::three_day());

    let groups = group_by_mac(&eui_week);
    // MAC -> (addresses, any address stable?)
    let mut not_stable_eui = Vec::new();
    for a in eui_week.iter() {
        if !stability.stable.contains(a) {
            not_stable_eui.push(a);
        }
    }
    let mac_of = |a: Addr| -> Option<v6census_addr::Mac> { v6census_addr::Iid::of(a).eui64_mac() };
    let mut multi = 0usize;
    let mut in_stable = 0usize;
    for &a in &not_stable_eui {
        if let Some(mac) = mac_of(a) {
            if let Some(addrs) = groups.get(&mac) {
                if addrs.len() > 1 {
                    multi += 1;
                }
                if addrs.iter().any(|&x| stability.stable.contains(x)) {
                    in_stable += 1;
                }
            }
        }
    }
    let denom = not_stable_eui.len().max(1) as f64;

    // Per-ASN /64-spread of IIDs.
    let mut per_asn: BTreeMap<u32, (usize, usize)> = BTreeMap::new(); // (single, total)
    for (_, addrs) in groups.iter() {
        let mut nets: Vec<u64> = addrs.iter().map(|a| a.network_bits()).collect();
        nets.sort_unstable();
        nets.dedup();
        if let Some(asn) = addrs.first().and_then(|&a| rt.asn_of(a)) {
            let e = per_asn.entry(asn).or_default();
            e.1 += 1;
            if nets.len() == 1 {
                e.0 += 1;
            }
        }
    }
    Eui64Analysis {
        not_stable_eui64: not_stable_eui.len(),
        frac_iid_multi_addr: multi as f64 / denom,
        frac_iid_in_stable: in_stable as f64 / denom,
        single_64_share_by_asn: per_asn
            .into_iter()
            .filter(|&(_, (_, total))| total >= 5)
            .map(|(asn, (single, total))| (asn, single as f64 / total as f64))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// §6.2.2: dense WWW client prefixes
// ---------------------------------------------------------------------------

/// The §6.2.2 numbers for active WWW clients on one day.
pub fn dense_www(census: &Census, day: Day) -> v6census_core::spatial::DensityReport {
    let actives = census.other_daily().on(day);
    DensityClass::new(2, 112).report(&actives)
}

// ---------------------------------------------------------------------------
// §6.2.3: PTR harvest over dense prefixes
// ---------------------------------------------------------------------------

/// Result of the §6.2.3 reverse-DNS harvest.
#[derive(Clone, Debug)]
pub struct PtrHarvest {
    /// Dense prefixes of the 3@/120 class over the router dataset.
    pub dense_prefixes: usize,
    /// Possible addresses they span (the query universe).
    pub possible_addresses: u128,
    /// Names found by sweeping every possible address of the dense
    /// prefixes.
    pub names_from_sweep: usize,
    /// Names found by querying only the active WWW client addresses —
    /// the paper's comparison point.
    pub names_from_clients: usize,
    /// Sweep names for addresses *not* in the client set — the "additional
    /// domain names" of §6.2.3 (the paper: +47 K).
    pub additional: usize,
}

impl PtrHarvest {
    /// Additional names the dense sweep contributed beyond client-only
    /// querying.
    pub fn additional_names(&self) -> usize {
        self.additional
    }
}

/// Sweeps the 3@/120-dense prefixes of a router dataset against the PTR
/// oracle and compares with querying the active WWW clients only.
pub fn ptr_harvest(world: &World, routers: &AddrSet, clients: &AddrSet, day: Day) -> PtrHarvest {
    let oracle = world.ptr_oracle(day);
    let class = DensityClass::new(3, 120);
    let dense = class.dense_prefixes(routers);
    let possible: u128 = dense.iter().map(|d| d.possible().unwrap_or(0)).sum();
    let mut sweep = 0usize;
    let mut additional = 0usize;
    for d in &dense {
        let base = d.prefix.addr().0;
        let span = d.possible().unwrap_or(0);
        for i in 0..span {
            let a = Addr(base | i);
            if oracle.ptr_name(a).is_some() {
                sweep += 1;
                if !clients.contains(a) {
                    additional += 1;
                }
            }
        }
    }
    let from_clients = oracle.harvest(clients.iter());
    PtrHarvest {
        dense_prefixes: dense.len(),
        possible_addresses: possible,
        names_from_sweep: sweep,
        names_from_clients: from_clients,
        additional,
    }
}

// ---------------------------------------------------------------------------
// §7.1/§7.2: reverse-engineering address plans from EUI-64 guides
// ---------------------------------------------------------------------------

/// Per-ASN inference of the stable network-identifier length, from
/// tracking EUI-64 IIDs across two epochs — the paper's §7.1 technique
/// ("examining the network identifiers of EUI-64 addresses over time;
/// these persistent, unique IIDs serve as guides").
#[derive(Clone, Debug)]
pub struct NidInference {
    /// MACs observed in both epochs.
    pub samples: usize,
    /// Median cross-epoch common-prefix length of the *network halves*
    /// of each MAC's addresses (0..=64). 64 ⇒ fully static /64s;
    /// small ⇒ dynamic assignment beyond the allocation prefix.
    pub median_stable_bits: u8,
    /// Histogram of per-MAC stable bits.
    pub histogram: BTreeMap<u8, usize>,
}

/// For every ASN with enough cross-epoch EUI-64 devices, infers the
/// stable NID length. `current` and `earlier` are the first days of the
/// two comparison weeks.
pub fn stable_nid_by_mac(
    census: &Census,
    rt: &RoutingTable,
    current: Day,
    earlier: Day,
    min_samples: usize,
) -> BTreeMap<u32, NidInference> {
    let week = |d: Day| census.eui64_over(d.range_inclusive(d + 6));
    let cur_groups = group_by_mac(&week(current));
    let old_groups = group_by_mac(&week(earlier));

    let mut per_asn: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
    for (mac, cur_addrs) in &cur_groups {
        let Some(old_addrs) = old_groups.get(mac) else {
            continue;
        };
        // The stable portion is the best network-half agreement across
        // epochs (a device may roam among subnets; its home is stable).
        let mut best = 0u8;
        for &a in cur_addrs {
            for &b in old_addrs {
                let cpl = (a.network_bits() ^ b.network_bits()).leading_zeros() as u8;
                best = best.max(cpl.min(64));
            }
        }
        if let Some(asn) = cur_addrs.first().and_then(|&a| rt.asn_of(a)) {
            per_asn.entry(asn).or_default().push(best);
        }
    }
    per_asn
        .into_iter()
        .filter(|(_, v)| v.len() >= min_samples)
        .map(|(asn, mut bits)| {
            bits.sort_unstable();
            let median = bits[bits.len() / 2];
            let mut histogram: BTreeMap<u8, usize> = BTreeMap::new();
            for b in &bits {
                *histogram.entry(*b).or_default() += 1;
            }
            (
                asn,
                NidInference {
                    samples: bits.len(),
                    median_stable_bits: median,
                    histogram,
                },
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ground-truth evaluation: Malone baseline vs temporal classification
// ---------------------------------------------------------------------------

/// Ground-truth comparison of the content-only baseline (§2) against the
/// temporal classifier, possible only with synthetic labels.
#[derive(Clone, Debug)]
pub struct ClassifierEvaluation {
    /// True rotating-privacy addresses in the evaluation day.
    pub true_privacy: usize,
    /// Content-only (Malone-style) recall on true rotating-privacy
    /// addresses (Malone 2008 expected ≈73% for his rule set).
    pub malone_recall: f64,
    /// The content-only blind spot: the fraction of genuinely *stable*
    /// addresses (fixed IIDs, RFC 7217 stable-privacy) whose content is
    /// indistinguishable from a privacy address. This ambiguity is what
    /// temporal classification resolves.
    pub stable_lookalike_rate: f64,
    /// Fraction of 3d-stable addresses that are truly rotating privacy
    /// addresses (the paper's converse guarantee: stable ⇒ almost
    /// certainly not privacy).
    pub stable_privacy_contamination: f64,
}

/// Evaluates both classifiers against ground truth on `reference`
/// (census must hold the surrounding window).
pub fn classifier_evaluation(
    world: &World,
    census: &Census,
    reference: Day,
) -> ClassifierEvaluation {
    let log = world.day_log(reference);
    let mut privacy = Vec::new();
    let mut content_stable = Vec::new();
    for e in &log.entries {
        if e.kind.is_transition() {
            continue;
        }
        match e.kind {
            TrueKind::Privacy { rotation_days } if rotation_days <= 1 => privacy.push(e.addr),
            // Genuinely stable identities whose *value* may still look
            // random: per-device fixed IIDs and RFC 7217 addresses.
            TrueKind::FixedIid | TrueKind::StablePrivacy => content_stable.push(e.addr),
            _ => {}
        }
    }
    let recall = v6census_addr::malone::recall_on(&privacy);
    let lookalike = if content_stable.is_empty() {
        0.0
    } else {
        content_stable
            .iter()
            .filter(|&&a| classify_content_only(a) == MaloneVerdict::LikelyPrivacy)
            .count() as f64
            / content_stable.len() as f64
    };
    let stable = census
        .other_daily()
        .stable_on(reference, &StabilityParams::three_day());
    let privacy_set = AddrSet::from_iter(privacy.iter().copied());
    let contamination = if stable.is_empty() {
        0.0
    } else {
        stable.intersection_len(&privacy_set) as f64 / stable.len() as f64
    };
    ClassifierEvaluation {
        true_privacy: privacy.len(),
        malone_recall: recall,
        stable_lookalike_rate: lookalike,
        stable_privacy_contamination: contamination,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_synth::{world::epochs, WorldConfig};

    fn setup() -> (World, Census) {
        let w = World::standard(WorldConfig::tiny(29));
        let d = epochs::mar2015();
        let c = Census::run(&w, d - 7, d + 7);
        (w, c)
    }

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let set = AddrSet::from_iter((0..1000u128).map(Addr));
        let s = sample_every(&set, 100);
        assert_eq!(s.len(), 100);
        assert_eq!(s, sample_every(&set, 100));
        assert!(sample_every(&AddrSet::new(), 10).is_empty());
        // Wanting more than exists returns all.
        assert_eq!(sample_every(&set, 5000).len(), 1000);
    }

    #[test]
    fn stable_targets_discover_more_routers() {
        let (w, c) = setup();
        let r = router_discovery(&w, &c, epochs::mar2015(), 300);
        assert!(r.baseline_routers > 0);
        assert!(
            r.stable_routers > r.baseline_routers,
            "stable {} <= baseline {}",
            r.stable_routers,
            r.baseline_routers
        );
        assert!(r.improvement_pct() > 0.0);
    }

    #[test]
    fn eui64_analysis_fractions_in_range() {
        let (w, c) = setup();
        let rt = RoutingTable::of(&w, epochs::mar2015());
        let e = eui64_analysis(&c, &rt, epochs::mar2015() - 7);
        assert!(e.not_stable_eui64 > 0);
        assert!((0.0..=1.0).contains(&e.frac_iid_multi_addr));
        assert!((0.0..=1.0).contains(&e.frac_iid_in_stable));
        for (&asn, &share) in &e.single_64_share_by_asn {
            assert!((0.0..=1.0).contains(&share), "asn {asn}: {share}");
        }
    }

    #[test]
    fn jp_iids_more_single_64_than_eu() {
        let (w, c) = setup();
        let rt = RoutingTable::of(&w, epochs::mar2015());
        let e = eui64_analysis(&c, &rt, epochs::mar2015() - 7);
        use v6census_synth::world::asns;
        let jp = e.single_64_share_by_asn.get(&asns::JP_ISP);
        let eu = e.single_64_share_by_asn.get(&asns::EU_ISP);
        if let (Some(&jp), Some(&eu)) = (jp, eu) {
            assert!(
                jp >= eu,
                "JP static /48s should pin IIDs to one /64: jp {jp:.3} eu {eu:.3}"
            );
        }
    }

    #[test]
    fn dense_www_reports() {
        let (_, c) = setup();
        let r = dense_www(&c, epochs::mar2015());
        assert!(r.dense_prefixes > 0, "no dense WWW prefixes");
        assert!(r.covered_addresses >= 2 * r.dense_prefixes as u64);
        assert_eq!(r.possible_addresses, r.dense_prefixes as u128 * 65_536);
    }

    #[test]
    fn ptr_sweep_finds_more_than_client_queries() {
        let (w, c) = setup();
        let d = epochs::mar2015();
        let sim = ProbeSim::new(&w, d);
        let actives = c.other_daily().on(d);
        let client_sample = sample_every(&actives, 400);
        let routers = sim.router_dataset(&client_sample);
        let h = ptr_harvest(&w, &routers, &actives, d);
        assert!(h.dense_prefixes > 0);
        assert!(
            h.additional_names() > 100,
            "sweep should name silent infra neighbours: sweep {} clients {} additional {}",
            h.names_from_sweep,
            h.names_from_clients,
            h.additional_names()
        );
    }

    #[test]
    fn nid_inference_separates_static_from_dynamic() {
        let w = World::standard(WorldConfig {
            seed: 29,
            scale: 0.1,
        });
        let m15 = epochs::mar2015();
        let s14 = epochs::sep2014();
        let mut c = Census::new_empty();
        for d in s14.range_inclusive(s14 + 6) {
            c.ingest(&w.day_log(d));
        }
        for d in m15.range_inclusive(m15 + 6) {
            c.ingest(&w.day_log(d));
        }
        let rt = RoutingTable::of(&w, m15);
        let inf = stable_nid_by_mac(&c, &rt, m15, s14, 4);
        use v6census_synth::world::asns;
        let jp = inf.get(&asns::JP_ISP);
        let mob = inf.get(&asns::MOBILE_A);
        if let (Some(jp), Some(mob)) = (jp, mob) {
            assert_eq!(
                jp.median_stable_bits, 64,
                "JP static /48s pin devices to a /64: {jp:?}"
            );
            assert!(
                mob.median_stable_bits < 48,
                "mobile pools must look dynamic: {mob:?}"
            );
        } else {
            panic!("expected JP and mobile inference, got {:?}", inf.keys());
        }
    }

    #[test]
    fn temporal_beats_content_only_on_ground_truth() {
        let (w, c) = setup();
        let e = classifier_evaluation(&w, &c, epochs::mar2015());
        assert!(e.true_privacy > 100);
        // Content-only recall is substantial but imperfect (Malone
        // expected ~73%); the complementary temporal guarantee is that
        // stable addresses are essentially never rotating-privacy.
        assert!(
            e.malone_recall > 0.5 && e.malone_recall < 1.0,
            "recall {:.3}",
            e.malone_recall
        );
        assert!(
            e.stable_privacy_contamination < 0.05,
            "contamination {:.4}",
            e.stable_privacy_contamination
        );
    }
}
