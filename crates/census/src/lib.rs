//! The census pipeline: from aggregated logs to the paper's tables,
//! figures, and in-text experiments.
//!
//! * [`ingest`] — per-day culling into Teredo / ISATAP / 6to4 / "Other"
//!   (§4.1) and the multi-day [`ingest::Census`] store.
//! * [`routing`] — BGP snapshot + ASN/prefix attribution.
//! * [`tables`] — Table 1 (address characteristics), Table 2 (stability),
//!   Table 3 (dense router prefixes), with paper-style rendering.
//! * [`figures`] — the data series of Figures 2–5.
//! * [`plot`] — ASCII renderings and gnuplot-ready TSV emitters.
//! * [`svg`] — self-contained SVG renderers for MRA plots and CCDFs.
//! * [`experiments`] — §6.1.1 router discovery, the EUI-64 analyses,
//!   §6.2.2 dense WWW clients, §6.2.3 PTR harvest, and the ground-truth
//!   classifier evaluation the synthetic world enables.
//! * [`humane`] — the paper's "318M (95.8%)" number formatting.
//! * [`stream`] — fault-tolerant streaming ingestion of on-disk day
//!   logs: error taxonomy, error budgets, retries, checkpoints/resume.
//! * [`supervisor`] — supervised parallel execution of the analysis
//!   pipeline: panic isolation, stage deadlines, trie node budgets, and
//!   quality-annotated (degraded-mode) results under a run manifest.
//! * [`snapshot`] — immutable published census snapshots: readers never
//!   observe a half-ingested day, never block on ingest.
//! * [`serve`] — the crash-safe, load-shedding census daemon behind
//!   `v6census serve`: bounded HTTP/1.1 query surface, background
//!   incremental ingest, crash-safe journal, graceful drain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crashtest;
pub mod experiments;
pub mod figures;
pub mod humane;
pub mod ingest;
pub mod plot;
pub mod routing;
pub mod serve;
pub mod snapshot;
pub mod stream;
pub mod supervisor;
pub mod svg;
pub mod tables;

pub use ingest::{Census, DaySummary};
pub use routing::RoutingTable;
pub use serve::{DrainReport, MetricsReading, ServeConfig, ServeError, ServeHandle};
pub use snapshot::{Snapshot, SnapshotCell};
pub use stream::{IngestConfig, IngestError, IngestReport, StreamIngestor};
pub use supervisor::{
    run_census, PipelineConfig, RunManifest, StageReport, SupervisedRun, SupervisorConfig,
};
