//! Immutable published census snapshots for the serving daemon.
//!
//! The serving robustness posture rests on one rule: **readers never see
//! a census mid-ingest**. Ingest builds everything a query could touch —
//! the census itself, the reference day's active and stable sets, and
//! the aggregate stats — into a fresh [`Snapshot`] *outside* any lock,
//! then publishes it into the [`SnapshotCell`] with a single pointer
//! swap under a briefly held write lock. Readers clone the `Arc` under a
//! read lock (nanoseconds) and keep the snapshot alive for the duration
//! of their request, so a response is internally consistent with exactly
//! one generation even while the next day is being ingested.
//!
//! The generation number is defined as the number of ingested days, so
//! `generation == days` is an invariant every response can carry and the
//! atomicity tests can assert: a torn read would break it.

use std::sync::{Arc, RwLock};
use v6census_core::spatial::DensityClass;
use v6census_core::temporal::{Day, StabilityParams};
use v6census_trie::AddrSet;

use crate::ingest::Census;

/// Per-day stability counts — the `/stats` stability histogram.
#[derive(Clone, Copy, Debug)]
pub struct DayStat {
    /// The observation day.
    pub day: Day,
    /// Active "Other" addresses on the day.
    pub active: usize,
    /// Of those, nd-stable under the snapshot's parameters.
    pub stable: usize,
}

/// Aggregate figures precomputed at publish time so `/stats` is a read,
/// not a computation.
#[derive(Clone, Debug, Default)]
pub struct SnapshotStats {
    /// Reference-day counts by scheme category, in a stable order:
    /// `(label, count)` for teredo / isatap / 6to4 / other / eui64.
    pub scheme_counts: Vec<(&'static str, usize)>,
    /// Per-day active/stable counts, ascending by day.
    pub daily: Vec<DayStat>,
}

/// One immutable, internally consistent view of the census. Everything a
/// query endpoint reads lives here; nothing is computed against shared
/// mutable state.
#[derive(Clone)]
pub struct Snapshot {
    /// Publish generation; equals the number of ingested days.
    pub generation: u64,
    /// The census as of this generation.
    pub census: Census,
    /// The reference day queries run against: the latest ingested day.
    pub reference: Option<Day>,
    /// Stability parameters the `stable` set was computed with.
    pub params: StabilityParams,
    /// Density class `/classify` profiles report against.
    pub dense_class: DensityClass,
    /// Active "Other" addresses on the reference day.
    pub active: AddrSet,
    /// nd-stable "Other" addresses on the reference day.
    pub stable: AddrSet,
    /// Aggregate `/stats` figures.
    pub stats: SnapshotStats,
}

impl std::fmt::Debug for SnapshotCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("generation", &self.load().generation)
            .finish()
    }
}

impl Snapshot {
    /// Builds a snapshot from a census. This is the expensive step and
    /// deliberately takes `&Census` *by value semantics of the caller's
    /// clone* — it runs on the ingest thread, outside any lock readers
    /// touch.
    pub fn build(census: Census, params: StabilityParams, dense_class: DensityClass) -> Snapshot {
        let reference = census.days().last();
        let (active, stable) = match reference {
            None => (AddrSet::new(), AddrSet::new()),
            Some(r) => (
                census.other_daily().on(r),
                census.other_daily().stable_on(r, &params),
            ),
        };
        let scheme_counts = match reference.and_then(|r| census.summary(r)) {
            None => Vec::new(),
            Some(s) => vec![
                ("teredo", s.teredo.len()),
                ("isatap", s.isatap.len()),
                ("6to4", s.sixtofour.len()),
                ("other", s.other.len()),
                ("eui64", s.eui64.len()),
            ],
        };
        let daily: Vec<DayStat> = census
            .days()
            .map(|day| {
                let active = census.other_daily().on(day).len();
                let stable = census.other_daily().stable_on(day, &params).len();
                DayStat {
                    day,
                    active,
                    stable,
                }
            })
            .collect();
        let generation = daily.len() as u64;
        Snapshot {
            generation,
            census,
            reference,
            params,
            dense_class,
            active,
            stable,
            stats: SnapshotStats {
                scheme_counts,
                daily,
            },
        }
    }

    /// Number of ingested days (always equals `generation`).
    pub fn days(&self) -> u64 {
        self.stats.daily.len() as u64
    }
}

/// The publish point: a swappable pointer to the current [`Snapshot`].
///
/// `load` takes a read lock only long enough to clone the `Arc`;
/// `publish` takes the write lock only long enough to swap the pointer.
/// Snapshot *construction* never happens under either lock, so readers
/// never block on ingest. Lock poisoning is survived the same way the
/// supervisor survives it: a poisoned cell still holds a complete
/// snapshot (the swap is a single pointer store), so we take the inner
/// value and keep serving.
pub struct SnapshotCell {
    inner: RwLock<Arc<Snapshot>>,
}

impl SnapshotCell {
    /// Creates a cell publishing `initial`.
    pub fn new(initial: Snapshot) -> SnapshotCell {
        SnapshotCell {
            inner: RwLock::new(Arc::new(initial)),
        }
    }

    /// The current snapshot. Cheap: one `Arc` clone under a read lock.
    pub fn load(&self) -> Arc<Snapshot> {
        self.inner.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Publishes a new snapshot, returning its generation. The write
    /// lock is held only for the pointer swap.
    pub fn publish(&self, snapshot: Snapshot) -> u64 {
        let generation = snapshot.generation;
        let fresh = Arc::new(snapshot);
        let mut slot = self.inner.write().unwrap_or_else(|e| e.into_inner());
        *slot = fresh;
        generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_synth::world::epochs;
    use v6census_synth::{World, WorldConfig};

    fn snapshot_of(days: u32) -> Snapshot {
        let world = World::standard(WorldConfig::tiny(7));
        let first = epochs::mar2015();
        let census = Census::run(&world, first, first + (days as i32) - 1);
        Snapshot::build(census, StabilityParams::nd(3), DensityClass::new(8, 64))
    }

    #[test]
    fn generation_equals_days() {
        for days in [1u32, 3, 5] {
            let s = snapshot_of(days);
            assert_eq!(s.generation, days as u64);
            assert_eq!(s.days(), days as u64);
            assert_eq!(s.stats.daily.len(), days as usize);
        }
        let empty = Snapshot::build(
            Census::new_empty(),
            StabilityParams::nd(3),
            DensityClass::new(8, 64),
        );
        assert_eq!(empty.generation, 0);
        assert!(empty.reference.is_none());
        assert!(empty.active.is_empty());
    }

    #[test]
    fn reference_products_are_consistent() {
        let s = snapshot_of(5);
        let r = s.reference.expect("5 days ingested");
        assert_eq!(s.active.len(), s.census.other_daily().on(r).len());
        assert!(s.stable.len() <= s.active.len());
        assert_eq!(
            s.stats.scheme_counts.iter().map(|&(_, n)| n).sum::<usize>(),
            s.census
                .summary(r)
                .map(|d| d.total() + d.eui64.len())
                .unwrap_or(0),
            "scheme counts cover the reference day (other includes eui64)"
        );
        let last = s.stats.daily.last().expect("daily stats present");
        assert_eq!(last.active, s.active.len());
        assert_eq!(last.stable, s.stable.len());
    }

    #[test]
    fn cell_swaps_whole_snapshots() {
        let cell = SnapshotCell::new(snapshot_of(1));
        assert_eq!(cell.load().generation, 1);
        let held = cell.load();
        assert_eq!(cell.publish(snapshot_of(3)), 3);
        // The published snapshot replaced the pointer…
        assert_eq!(cell.load().generation, 3);
        assert_eq!(cell.load().days(), 3);
        // …but a reader that loaded before the swap still holds a
        // complete, consistent old generation.
        assert_eq!(held.generation, 1);
        assert_eq!(held.days(), 1);
    }
}
