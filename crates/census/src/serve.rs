//! `v6census serve`: a crash-safe, load-shedding census daemon.
//!
//! A long-running process on top of the PR-1/PR-2 failure-handling
//! substrate: it restores the last committed state from an ingest
//! journal, ingests new day logs incrementally in the background, and
//! answers point queries over a hand-rolled HTTP/1.1 surface. The
//! robustness posture is designed in, not bolted on:
//!
//! * **Immutable published snapshots** ([`crate::snapshot`]): ingest
//!   builds the next [`Snapshot`] outside any lock and publishes it with
//!   a single pointer swap; readers never observe a half-ingested day
//!   and never block on ingest.
//! * **Bounded request buffers**: a request head larger than
//!   [`ServeConfig::max_request_bytes`] is answered `431` and dropped —
//!   memory per connection is capped, always.
//! * **Read/write deadlines**: per-socket timeouts plus a whole-header
//!   deadline defeat slow-writer (slowloris) clients with `408`.
//! * **Load shedding**: beyond [`ServeConfig::max_connections`]
//!   concurrent connections, new clients are answered `503` with
//!   `Retry-After` and closed — thread growth is bounded.
//! * **Crash-safe ingest journal**: each committed day writes its atomic
//!   checkpoint (PR 1) and then the journal is atomically rewritten; a
//!   kill -9 at any point leaves either the old or the new journal, so a
//!   restart resumes from the last *completed* day and keeps serving the
//!   pre-crash snapshot.
//! * **Retry and quarantine on ingest failure**: failures reuse the
//!   [`IngestError`] taxonomy; transient ones back off exponentially,
//!   poisoned files are quarantined after the configured retries so one
//!   bad day can never wedge the daemon.
//! * **Graceful drain**: shutdown stops accepting, lets in-flight
//!   responses finish under [`ServeConfig::drain_deadline`], and reports
//!   whether any connection had to be abandoned (the CLI maps that to
//!   its degraded exit code).
//!
//! Endpoints: `/stable/<addr>`, `/classify/<prefix>`, `/stats`,
//! `/healthz`, `/readyz`. Every response body carries the snapshot
//! `generation` and `days` — equal by construction — which the
//! atomicity tests assert on every concurrent read.

use std::collections::BTreeMap;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use v6census_addr::{Addr, Prefix};
use v6census_core::query::{days_seen, prefix_profile};
use v6census_core::spatial::DensityClass;
use v6census_core::temporal::{Day, StabilityParams};
use v6census_core::vfs::Vfs;

use crate::ingest::{Census, DaySummary};
use crate::routing::RoutingTable;
use crate::snapshot::{Snapshot, SnapshotCell};
use crate::stream::{
    checkpoint_path, day_from_filename, load_checkpoint, sweep_stale_tmp, FileOutcome,
    IngestConfig, IngestError, StreamIngestor,
};

/// The daemon's single monotonic clock read: header deadlines, drain
/// deadlines, and backoff pacing all derive from instants returned here.
fn now() -> Instant {
    // lint: allow(L002, reason = "serve needs a monotonic clock for socket/drain deadlines (slowloris defeat, bounded drain); snapshots, response bodies, and equivalence keys never read it")
    Instant::now()
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Startup failures of the daemon. Runtime failures never surface here —
/// they are absorbed per connection or per ingest file and counted in
/// [`ServeMetrics`].
#[derive(Debug)]
pub enum ServeError {
    /// The listen address could not be bound.
    Bind {
        /// The requested bind address.
        addr: String,
        /// OS-level detail.
        detail: String,
    },
    /// The state directory could not be created or prepared.
    State {
        /// The offending path.
        path: PathBuf,
        /// OS-level detail.
        detail: String,
    },
    /// A routing-table entry was structurally invalid.
    Routing {
        /// What was wrong.
        detail: String,
    },
    /// A daemon thread could not be spawned.
    Spawn {
        /// Which thread.
        what: &'static str,
        /// OS-level detail.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, detail } => write!(f, "cannot bind {addr}: {detail}"),
            ServeError::State { path, detail } => {
                write!(f, "cannot prepare state dir {}: {detail}", path.display())
            }
            ServeError::Routing { detail } => write!(f, "bad routing table: {detail}"),
            ServeError::Spawn { what, detail } => {
                write!(f, "cannot spawn {what} thread: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Full configuration of the serving daemon.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Directory scanned for day-log files (`YYYY-MM-DD*`).
    pub source_dir: PathBuf,
    /// Directory for the ingest journal + per-day checkpoints; `None`
    /// disables crash-safe persistence (queries still work).
    pub state_dir: Option<PathBuf>,
    /// Listen address, e.g. `127.0.0.1:0` (port 0: OS-assigned).
    pub bind: String,
    /// Concurrent-connection cap; beyond it new clients are shed with
    /// `503` + `Retry-After`.
    pub max_connections: usize,
    /// Per-socket read timeout.
    pub read_timeout: Duration,
    /// Per-socket write timeout.
    pub write_timeout: Duration,
    /// Whole-request-head deadline (defeats slowloris).
    pub header_deadline: Duration,
    /// Hard cap on buffered request bytes; beyond it the client gets
    /// `431` and the connection closes.
    pub max_request_bytes: usize,
    /// How long a graceful drain waits for in-flight responses.
    pub drain_deadline: Duration,
    /// How often the background ingest rescans `source_dir`.
    pub poll_interval: Duration,
    /// Streaming-ingest configuration (error budget, retries, backoff).
    /// `checkpoint_dir` is overridden to `state_dir` at spawn.
    pub ingest: IngestConfig,
    /// nd-stability parameters for the published `stable` set.
    pub params: StabilityParams,
    /// Density class `/classify` profiles report against.
    pub dense_class: DensityClass,
    /// Optional BGP entries for ASN attribution in `/classify`.
    pub routing: Vec<(Prefix, u32)>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            source_dir: PathBuf::from("."),
            state_dir: None,
            bind: "127.0.0.1:0".to_string(),
            max_connections: 64,
            read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(2_000),
            header_deadline: Duration::from_millis(3_000),
            max_request_bytes: 8 * 1024,
            drain_deadline: Duration::from_millis(5_000),
            poll_interval: Duration::from_millis(200),
            ingest: IngestConfig::default(),
            params: StabilityParams::nd(3),
            dense_class: DensityClass::new(8, 64),
            routing: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Liveness counters, updated lock-free by every thread.
#[derive(Default)]
pub struct ServeMetrics {
    /// Connections accepted (including ones later shed).
    pub accepted: AtomicU64,
    /// Requests answered with a 2xx.
    pub served: AtomicU64,
    /// Connections shed with `503` at the cap.
    pub shed: AtomicU64,
    /// Requests rejected as malformed (`400`/`405`).
    pub malformed: AtomicU64,
    /// Requests rejected as oversized (`431`).
    pub oversized: AtomicU64,
    /// Requests that hit the header deadline (`408`).
    pub timeouts: AtomicU64,
    /// Clients that disconnected before completing a request.
    pub early_disconnects: AtomicU64,
    /// Responses dropped because the client went away mid-write
    /// (broken pipe / reset) — logged and dropped, never fatal.
    pub dropped_responses: AtomicU64,
    /// Unknown-route requests (`404`).
    pub not_found: AtomicU64,
    /// Well-routed requests with unparseable operands (`400`).
    pub bad_queries: AtomicU64,
    /// Days committed and published by background ingest.
    pub ingested_days: AtomicU64,
    /// Ingest attempts that failed (before any retry/quarantine).
    pub ingest_failures: AtomicU64,
    /// Source files quarantined after exhausting retries.
    pub quarantined_files: AtomicU64,
    /// Days restored from the journal + checkpoints at startup.
    pub resumed_days: AtomicU64,
    /// Startup recoveries: torn journal or unreadable checkpoints
    /// skipped (their days re-ingest from source).
    pub recovered_errors: AtomicU64,
    /// Stale `*.tmp` files deleted by the startup sweep.
    pub stale_tmp_removed: AtomicU64,
}

/// A plain-value reading of [`ServeMetrics`].
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsReading {
    /// See [`ServeMetrics::accepted`].
    pub accepted: u64,
    /// See [`ServeMetrics::served`].
    pub served: u64,
    /// See [`ServeMetrics::shed`].
    pub shed: u64,
    /// See [`ServeMetrics::malformed`].
    pub malformed: u64,
    /// See [`ServeMetrics::oversized`].
    pub oversized: u64,
    /// See [`ServeMetrics::timeouts`].
    pub timeouts: u64,
    /// See [`ServeMetrics::early_disconnects`].
    pub early_disconnects: u64,
    /// See [`ServeMetrics::dropped_responses`].
    pub dropped_responses: u64,
    /// See [`ServeMetrics::not_found`].
    pub not_found: u64,
    /// See [`ServeMetrics::bad_queries`].
    pub bad_queries: u64,
    /// See [`ServeMetrics::ingested_days`].
    pub ingested_days: u64,
    /// See [`ServeMetrics::ingest_failures`].
    pub ingest_failures: u64,
    /// See [`ServeMetrics::quarantined_files`].
    pub quarantined_files: u64,
    /// See [`ServeMetrics::resumed_days`].
    pub resumed_days: u64,
    /// See [`ServeMetrics::recovered_errors`].
    pub recovered_errors: u64,
    /// See [`ServeMetrics::stale_tmp_removed`].
    pub stale_tmp_removed: u64,
}

impl ServeMetrics {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough reading for reports (counters are
    /// independent; exactness across counters is not promised).
    pub fn read(&self) -> MetricsReading {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsReading {
            accepted: g(&self.accepted),
            served: g(&self.served),
            shed: g(&self.shed),
            malformed: g(&self.malformed),
            oversized: g(&self.oversized),
            timeouts: g(&self.timeouts),
            early_disconnects: g(&self.early_disconnects),
            dropped_responses: g(&self.dropped_responses),
            not_found: g(&self.not_found),
            bad_queries: g(&self.bad_queries),
            ingested_days: g(&self.ingested_days),
            ingest_failures: g(&self.ingest_failures),
            quarantined_files: g(&self.quarantined_files),
            resumed_days: g(&self.resumed_days),
            recovered_errors: g(&self.recovered_errors),
            stale_tmp_removed: g(&self.stale_tmp_removed),
        }
    }
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

/// The journal file inside a state directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join("journal.v1")
}

/// Atomically and durably rewrites the journal (temp file + fsync +
/// rename via [`Vfs::write_atomic`]) listing the committed days in
/// order. A crash mid-write leaves the previous journal intact, and a
/// completed write survives power loss.
pub fn write_journal(fs: &dyn Vfs, dir: &Path, days: &[Day]) -> io::Result<()> {
    fs.create_dir_all(dir)?;
    let mut text = String::from("# v6census serve journal v1\n");
    for day in days {
        text.push_str(&day.to_string());
        text.push('\n');
    }
    text.push_str(&format!("# end {}\n", days.len()));
    fs.write_atomic(&journal_path(dir), text.as_bytes())
}

/// Loads and validates a journal. A missing file is an empty journal; a
/// torn or corrupt one is a typed error the caller recovers from by
/// re-ingesting from source.
pub fn load_journal(fs: &dyn Vfs, path: &Path) -> Result<Vec<Day>, IngestError> {
    let bad = |reason: String| IngestError::BadCheckpoint {
        path: path.to_path_buf(),
        reason,
    };
    let text = match fs.read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(IngestError::Io {
                path: path.to_path_buf(),
                kind: e.kind(),
                retries: 0,
                detail: e.to_string(),
            })
        }
    };
    let mut lines = text.lines();
    match lines.next() {
        Some("# v6census serve journal v1") => {}
        _ => return Err(bad("missing journal header".into())),
    }
    let mut days = Vec::new();
    let mut declared: Option<usize> = None;
    for line in lines {
        if let Some(rest) = line.strip_prefix("# end ") {
            declared = rest.trim().parse().ok();
            break;
        }
        match day_from_filename(line.trim()) {
            Some(day) => days.push(day),
            None => return Err(bad(format!("bad journal day {line:?}"))),
        }
    }
    match declared {
        Some(n) if n == days.len() => Ok(days),
        Some(n) => Err(bad(format!(
            "journal count mismatch: declared {n}, got {}",
            days.len()
        ))),
        None => Err(bad("journal missing end marker (torn write)".into())),
    }
}

/// What startup restoration accomplished, surfaced on `/healthz` and
/// `/stats` so operators can watch recovery happen.
pub(crate) struct RestoreOutcome {
    pub(crate) census: Census,
    /// Days restored cleanly from journal + checkpoints, in order.
    pub(crate) restored: Vec<Day>,
    /// `restored.len()`, as a metric.
    pub(crate) resumed: u64,
    /// Torn journal / unreadable checkpoints skipped (their days
    /// re-ingest from source).
    pub(crate) recovered: u64,
    /// Stale `*.tmp` leftovers deleted by the startup sweep.
    pub(crate) swept_tmp: u64,
}

impl Default for RestoreOutcome {
    fn default() -> RestoreOutcome {
        RestoreOutcome {
            census: Census::new_empty(),
            restored: Vec::new(),
            resumed: 0,
            recovered: 0,
            swept_tmp: 0,
        }
    }
}

/// Restores a census from the journal + checkpoints. First sweeps and
/// deletes stale `*.tmp` files an aborted atomic write left behind
/// (counted, never silently orphaned). Days whose checkpoint is missing
/// or corrupt are skipped (and re-ingested from source later); a torn
/// journal restores nothing.
pub(crate) fn restore_state(fs: &dyn Vfs, state: &Path) -> RestoreOutcome {
    let mut out = RestoreOutcome {
        swept_tmp: sweep_stale_tmp(fs, state).unwrap_or(0),
        ..RestoreOutcome::default()
    };
    let journal_days = match load_journal(fs, &journal_path(state)) {
        Ok(days) => days,
        Err(_) => {
            // Torn/corrupt journal: recover by starting empty; source
            // re-ingest rebuilds, checkpoints make it cheap.
            out.recovered = 1;
            return out;
        }
    };
    for day in journal_days {
        match load_checkpoint(fs, &checkpoint_path(state, day)) {
            Ok((ckpt_day, entries)) if ckpt_day == day => {
                let summary = DaySummary::from_entries(day, entries);
                if out.census.try_ingest(summary).is_ok() {
                    out.restored.push(day);
                } else {
                    out.recovered += 1;
                }
            }
            _ => out.recovered += 1,
        }
    }
    out.resumed = out.restored.len() as u64;
    out
}

// ---------------------------------------------------------------------------
// Shared daemon state
// ---------------------------------------------------------------------------

struct Shared {
    cfg: ServeConfig,
    cell: SnapshotCell,
    metrics: ServeMetrics,
    shutdown: AtomicBool,
    draining: AtomicBool,
    ready: AtomicBool,
    open: AtomicUsize,
    routing: Option<RoutingTable>,
    /// The generation restored from the journal at startup; 0 means a
    /// cold start (nothing restored — fresh state or full recovery).
    restored_generation: u64,
}

impl Shared {
    fn log(&self, line: &str) {
        let _ = writeln!(io::stderr(), "[serve] {line}");
    }
}

/// Decrements the open-connection gauge when a connection thread ends,
/// however it ends.
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.open.fetch_sub(1, Ordering::AcqRel);
    }
}

/// What a graceful drain accomplished.
#[derive(Clone, Copy, Debug)]
pub struct DrainReport {
    /// True when every in-flight connection finished before the drain
    /// deadline.
    pub clean: bool,
    /// Connections abandoned at the deadline.
    pub abandoned: usize,
    /// The final published generation.
    pub generation: u64,
    /// Final counters.
    pub metrics: MetricsReading,
}

/// A handle to a running daemon: address discovery, introspection for
/// tests and benches, and graceful shutdown.
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    ingest: Option<JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound listen address (port resolved when binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn metrics(&self) -> MetricsReading {
        self.shared.metrics.read()
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.cell.load()
    }

    /// True once the daemon answers `/readyz` with 200.
    pub fn is_ready(&self) -> bool {
        self.shared.ready.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting, wait for in-flight connections
    /// under the drain deadline, stop ingest, and report.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.shutdown.store(true, Ordering::Release);
        let deadline = now() + self.shared.cfg.drain_deadline;
        while self.shared.open.load(Ordering::Acquire) > 0 && now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let abandoned = self.shared.open.load(Ordering::Acquire);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ingest.take() {
            let _ = h.join();
        }
        DrainReport {
            clean: abandoned == 0,
            abandoned,
            generation: self.shared.cell.load().generation,
            metrics: self.shared.metrics.read(),
        }
    }
}

// ---------------------------------------------------------------------------
// Spawn
// ---------------------------------------------------------------------------

/// Starts the daemon: restores journal state, publishes the initial
/// snapshot, binds the listener, and spawns the accept + ingest threads.
pub fn spawn(mut cfg: ServeConfig) -> Result<ServeHandle, ServeError> {
    let restore = match &cfg.state_dir {
        None => RestoreOutcome::default(),
        Some(state) => {
            cfg.ingest
                .vfs
                .create_dir_all(state)
                .map_err(|e| ServeError::State {
                    path: state.clone(),
                    detail: e.to_string(),
                })?;
            cfg.ingest.checkpoint_dir = Some(state.clone());
            restore_state(cfg.ingest.vfs.as_ref(), state)
        }
    };
    let RestoreOutcome {
        census,
        restored: restored_days,
        resumed,
        recovered,
        swept_tmp,
    } = restore;
    let routing = if cfg.routing.is_empty() {
        None
    } else {
        Some(
            RoutingTable::from_entries(cfg.routing.iter().copied()).map_err(|e| {
                ServeError::Routing {
                    detail: e.to_string(),
                }
            })?,
        )
    };
    let initial = Snapshot::build(census.clone(), cfg.params, cfg.dense_class);
    let ready_now = initial.generation > 0;

    let listener = TcpListener::bind(&cfg.bind).map_err(|e| ServeError::Bind {
        addr: cfg.bind.clone(),
        detail: e.to_string(),
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::Bind {
            addr: cfg.bind.clone(),
            detail: e.to_string(),
        })?;
    let addr = listener.local_addr().map_err(|e| ServeError::Bind {
        addr: cfg.bind.clone(),
        detail: e.to_string(),
    })?;

    let shared = Arc::new(Shared {
        cfg,
        cell: SnapshotCell::new(initial),
        metrics: ServeMetrics::default(),
        shutdown: AtomicBool::new(false),
        draining: AtomicBool::new(false),
        ready: AtomicBool::new(ready_now),
        open: AtomicUsize::new(0),
        routing,
        restored_generation: resumed,
    });
    shared
        .metrics
        .resumed_days
        .store(resumed, Ordering::Relaxed);
    shared
        .metrics
        .recovered_errors
        .store(recovered, Ordering::Relaxed);
    shared
        .metrics
        .stale_tmp_removed
        .store(swept_tmp, Ordering::Relaxed);
    if swept_tmp > 0 {
        shared.log(&format!(
            "startup sweep removed {swept_tmp} stale tmp file(s)"
        ));
    }

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("v6c-serve-accept".into())
        .spawn(move || accept_loop(&accept_shared, &listener))
        .map_err(|e| ServeError::Spawn {
            what: "accept",
            detail: e.to_string(),
        })?;

    let ingest_shared = Arc::clone(&shared);
    let ingest = std::thread::Builder::new()
        .name("v6c-serve-ingest".into())
        .spawn(move || ingest_loop(&ingest_shared, census, restored_days))
        .map_err(|e| ServeError::Spawn {
            what: "ingest",
            detail: e.to_string(),
        })?;

    Ok(ServeHandle {
        addr,
        shared,
        accept: Some(accept),
        ingest: Some(ingest),
    })
}

// ---------------------------------------------------------------------------
// Accept loop + load shedding
// ---------------------------------------------------------------------------

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                ServeMetrics::bump(&shared.metrics.accepted);
                let open = shared.open.load(Ordering::Acquire);
                if open >= shared.cfg.max_connections {
                    shed(shared, stream);
                    continue;
                }
                shared.open.fetch_add(1, Ordering::AcqRel);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("v6c-serve-conn".into())
                    .spawn(move || {
                        let _guard = ConnGuard(Arc::clone(&conn_shared));
                        handle_connection(&conn_shared, stream);
                    });
                if let Err(e) = spawned {
                    // The guard never ran; undo the reservation and shed.
                    shared.open.fetch_sub(1, Ordering::AcqRel);
                    shared.log(&format!("connection thread spawn failed: {e}"));
                    ServeMetrics::bump(&shared.metrics.shed);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                // Transient accept failure (EMFILE under a storm, …):
                // log, breathe, keep serving.
                shared.log(&format!("accept error: {e}"));
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Accept-then-503: the client gets an explicit retry signal instead of
/// a hang or a reset. Runs on the accept thread, so both the write and
/// the lingering close are bounded by short budgets — a hostile shed
/// target can stall accepting for at most ~½ s.
fn shed(shared: &Arc<Shared>, mut stream: TcpStream) {
    ServeMetrics::bump(&shared.metrics.shed);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    if write_response(
        &mut stream,
        503,
        "Service Unavailable",
        Some(1),
        "{\"error\":\"overloaded\"}\n",
    )
    .is_ok()
    {
        drain_then_close(&mut stream, Duration::from_millis(300));
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

enum HeadOutcome {
    Request(String),
    TooLarge,
    TimedOut,
    Disconnected,
    Failed(String),
}

/// Reads one request head under the byte cap and header deadline.
fn read_head(stream: &mut TcpStream, cfg: &ServeConfig) -> HeadOutcome {
    let deadline = now() + cfg.header_deadline;
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut tmp = [0u8; 512];
    loop {
        if buf.len() > cfg.max_request_bytes {
            return HeadOutcome::TooLarge;
        }
        if now() >= deadline {
            return HeadOutcome::TimedOut;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return HeadOutcome::Disconnected,
            Ok(n) => {
                buf.extend_from_slice(tmp.get(..n).unwrap_or(&[]));
                if head_complete(&buf) {
                    return match String::from_utf8(buf) {
                        Ok(text) => HeadOutcome::Request(text),
                        Err(_) => HeadOutcome::Failed("non-utf8 request head".into()),
                    };
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Socket timeout: loop re-checks the overall deadline.
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::ConnectionReset
                    || e.kind() == io::ErrorKind::BrokenPipe =>
            {
                return HeadOutcome::Disconnected;
            }
            Err(e) => return HeadOutcome::Failed(e.to_string()),
        }
    }
}

fn head_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let cfg = &shared.cfg;
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream.set_nodelay(true);

    let head = match read_head(&mut stream, cfg) {
        HeadOutcome::Request(text) => text,
        HeadOutcome::TooLarge => {
            ServeMetrics::bump(&shared.metrics.oversized);
            deliver(
                shared,
                &mut stream,
                431,
                "Request Header Fields Too Large",
                None,
                "{\"error\":\"request too large\"}\n",
            );
            return;
        }
        HeadOutcome::TimedOut => {
            ServeMetrics::bump(&shared.metrics.timeouts);
            deliver(
                shared,
                &mut stream,
                408,
                "Request Timeout",
                None,
                "{\"error\":\"request timeout\"}\n",
            );
            return;
        }
        HeadOutcome::Disconnected => {
            ServeMetrics::bump(&shared.metrics.early_disconnects);
            return;
        }
        HeadOutcome::Failed(detail) => {
            ServeMetrics::bump(&shared.metrics.malformed);
            shared.log(&format!("malformed request: {detail}"));
            deliver(
                shared,
                &mut stream,
                400,
                "Bad Request",
                None,
                "{\"error\":\"bad request\"}\n",
            );
            return;
        }
    };

    let Some((method, target)) = parse_request_line(&head) else {
        ServeMetrics::bump(&shared.metrics.malformed);
        deliver(
            shared,
            &mut stream,
            400,
            "Bad Request",
            None,
            "{\"error\":\"bad request line\"}\n",
        );
        return;
    };
    if method != "GET" {
        ServeMetrics::bump(&shared.metrics.malformed);
        deliver(
            shared,
            &mut stream,
            405,
            "Method Not Allowed",
            None,
            "{\"error\":\"only GET\"}\n",
        );
        return;
    }

    let (status, reason, body) = route(shared, target);
    let retry = if status == 503 { Some(1) } else { None };
    if status == 200 {
        ServeMetrics::bump(&shared.metrics.served);
    }
    deliver(shared, &mut stream, status, reason, retry, &body);
}

/// Writes a response; a client that vanished mid-write is logged and
/// dropped per connection — never fatal to the daemon. Ends with a
/// lingering close so the response survives unread input.
fn deliver(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    retry_after: Option<u64>,
    body: &str,
) {
    match write_response(stream, status, reason, retry_after, body) {
        Ok(()) => drain_then_close(stream, Duration::from_millis(1_000)),
        Err(e) => {
            ServeMetrics::bump(&shared.metrics.dropped_responses);
            if e.kind() != io::ErrorKind::BrokenPipe
                && e.kind() != io::ErrorKind::ConnectionReset
                && e.kind() != io::ErrorKind::ConnectionAborted
            {
                shared.log(&format!("response write failed: {e}"));
            }
        }
    }
}

/// Lingering close: half-close the write side, then briefly drain
/// whatever the client is still sending. Closing a socket with unread
/// input makes the kernel answer with RST, which can destroy the final
/// response (a 431 to a client mid-blob, a 503 to an unread request)
/// before the client reads it. The drain buffer is one fixed KiB and the
/// loop is deadline-bounded, so hostile clients cannot pin memory — only
/// at most `budget` of this connection thread's time.
fn drain_then_close(stream: &mut TcpStream, budget: Duration) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let deadline = now() + budget;
    let mut tmp = [0u8; 1024];
    while now() < deadline {
        match stream.read(&mut tmp) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    Some((method, target))
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    retry_after: Option<u64>,
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    if let Some(secs) = retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

/// A finite rendering of a possibly-degenerate float measurement.
fn fin(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

fn route(shared: &Arc<Shared>, target: &str) -> (u16, &'static str, String) {
    let snapshot = shared.cell.load();
    let gen = snapshot.generation;
    let days = snapshot.days();
    match target {
        "/healthz" => {
            let m = shared.metrics.read();
            let body = format!(
                "{{\"status\":\"ok\",\"generation\":{gen},\"days\":{days},\"open\":{},\"draining\":{},\"resumed\":{},\"served\":{},\"shed\":{},\"quarantined\":{},{}}}\n",
                shared.open.load(Ordering::Acquire),
                shared.draining.load(Ordering::Acquire),
                m.resumed_days,
                m.served,
                m.shed,
                m.quarantined_files,
                restore_json(shared, &m),
            );
            (200, "OK", body)
        }
        "/readyz" => {
            let ready =
                shared.ready.load(Ordering::Acquire) && !shared.draining.load(Ordering::Acquire);
            if ready {
                (
                    200,
                    "OK",
                    format!("{{\"status\":\"ready\",\"generation\":{gen},\"days\":{days}}}\n"),
                )
            } else {
                (
                    503,
                    "Service Unavailable",
                    format!("{{\"status\":\"not-ready\",\"generation\":{gen},\"days\":{days}}}\n"),
                )
            }
        }
        "/stats" => (200, "OK", stats_body(shared, &snapshot)),
        _ => {
            if let Some(raw) = target.strip_prefix("/stable/") {
                return stable_route(shared, &snapshot, raw);
            }
            if let Some(raw) = target.strip_prefix("/classify/") {
                return classify_route(shared, &snapshot, raw);
            }
            ServeMetrics::bump(&shared.metrics.not_found);
            (
                404,
                "Not Found",
                format!("{{\"error\":\"no such route\",\"generation\":{gen},\"days\":{days}}}\n"),
            )
        }
    }
}

/// The last-restore outcome as a JSON fragment (no surrounding braces):
/// whether this process cold-started or resumed a journaled generation,
/// plus what recovery had to do to get there.
fn restore_json(shared: &Arc<Shared>, m: &MetricsReading) -> String {
    format!(
        "\"restore\":{{\"restored_generation\":{},\"cold_start\":{},\"recovered\":{},\"stale_tmp_removed\":{}}}",
        shared.restored_generation,
        shared.restored_generation == 0,
        m.recovered_errors,
        m.stale_tmp_removed,
    )
}

fn stats_body(shared: &Arc<Shared>, snapshot: &Snapshot) -> String {
    let gen = snapshot.generation;
    let days = snapshot.days();
    let reference = match snapshot.reference {
        Some(r) => format!("\"{r}\""),
        None => "null".to_string(),
    };
    let schemes: Vec<String> = snapshot
        .stats
        .scheme_counts
        .iter()
        .map(|(label, n)| format!("\"{label}\":{n}"))
        .collect();
    let daily: Vec<String> = snapshot
        .stats
        .daily
        .iter()
        .map(|d| {
            format!(
                "{{\"day\":\"{}\",\"active\":{},\"stable\":{}}}",
                d.day, d.active, d.stable
            )
        })
        .collect();
    let m = shared.metrics.read();
    format!(
        "{{\"generation\":{gen},\"days\":{days},\"reference\":{reference},\"params\":\"{}\",\"active\":{},\"stable\":{},\"quarantined\":{},{},\"schemes\":{{{}}},\"daily\":[{}]}}\n",
        snapshot.params.label(),
        snapshot.active.len(),
        snapshot.stable.len(),
        m.quarantined_files,
        restore_json(shared, &m),
        schemes.join(","),
        daily.join(","),
    )
}

fn stable_route(
    shared: &Arc<Shared>,
    snapshot: &Snapshot,
    raw: &str,
) -> (u16, &'static str, String) {
    let gen = snapshot.generation;
    let days = snapshot.days();
    let Ok(addr) = raw.parse::<Addr>() else {
        ServeMetrics::bump(&shared.metrics.bad_queries);
        return (
            400,
            "Bad Request",
            format!("{{\"error\":\"bad address\",\"generation\":{gen},\"days\":{days}}}\n"),
        );
    };
    let active = snapshot.active.contains(addr);
    let stable = snapshot.stable.contains(addr);
    let seen = days_seen(snapshot.census.other_daily(), addr).len();
    let body = format!(
        "{{\"generation\":{gen},\"days\":{days},\"addr\":\"{addr}\",\"active\":{active},\"stable\":{stable},\"params\":\"{}\",\"days_seen\":{seen}}}\n",
        snapshot.params.label(),
    );
    (200, "OK", body)
}

fn classify_route(
    shared: &Arc<Shared>,
    snapshot: &Snapshot,
    raw: &str,
) -> (u16, &'static str, String) {
    let gen = snapshot.generation;
    let days = snapshot.days();
    let prefix = if raw.contains('/') {
        Prefix::from_str_lossy(raw).ok()
    } else {
        raw.parse::<Addr>().ok().map(Prefix::host)
    };
    let Some(prefix) = prefix else {
        ServeMetrics::bump(&shared.metrics.bad_queries);
        return (
            400,
            "Bad Request",
            format!("{{\"error\":\"bad prefix\",\"generation\":{gen},\"days\":{days}}}\n"),
        );
    };
    let profile = prefix_profile(&snapshot.active, prefix, snapshot.dense_class);
    let flatline = match profile.signature.flatline_at {
        Some(bit) => bit.to_string(),
        None => "null".to_string(),
    };
    let asn = match shared
        .routing
        .as_ref()
        .and_then(|t| t.asn_of(prefix.addr()))
    {
        Some(asn) => asn.to_string(),
        None => "null".to_string(),
    };
    let body = format!(
        "{{\"generation\":{gen},\"days\":{days},\"prefix\":\"{prefix}\",\"members\":{},\"privacy\":{},\"signature\":{{\"iid_head_ratio\":{:.4},\"u_bit_ratio\":{:.4},\"flatline_at\":{flatline}}},\"tail_prominence\":{:.4},\"common_prefix_len\":{},\"dense\":{{\"class\":\"{}\",\"prefixes\":{},\"members\":{}}},\"asn\":{asn}}}\n",
        profile.members,
        profile.privacy,
        fin(profile.signature.iid_head_ratio),
        fin(profile.signature.u_bit_ratio),
        fin(profile.tail_prominence),
        profile.common_prefix_len,
        snapshot.dense_class,
        profile.dense_prefixes,
        profile.dense_members,
    );
    (200, "OK", body)
}

// ---------------------------------------------------------------------------
// Background ingest
// ---------------------------------------------------------------------------

/// Sleeps up to `total`, in slices, returning early on shutdown.
fn nap(shared: &Arc<Shared>, total: Duration) {
    let deadline = now() + total;
    while now() < deadline {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn ingest_loop(shared: &Arc<Shared>, mut census: Census, mut committed: Vec<Day>) {
    let ingestor = StreamIngestor::new(shared.cfg.ingest.clone());
    // Per-file failure counts; a file past `max_retries` is quarantined.
    let mut failures: BTreeMap<PathBuf, u32> = BTreeMap::new();
    let max_retries = shared.cfg.ingest.max_retries;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut pending = scan_source(
            shared.cfg.ingest.vfs.as_ref(),
            &shared.cfg.source_dir,
            &census,
        );
        pending.retain(|(_, path)| failures.get(path).copied().unwrap_or(0) <= max_retries);
        let mut backoff_after_error = false;
        for (day, path) in pending {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            match ingest_one(&ingestor, &path, &mut census, &mut committed) {
                Ok(true) => {
                    failures.remove(&path);
                    if let Some(state) = &shared.cfg.state_dir {
                        if let Err(e) =
                            write_journal(shared.cfg.ingest.vfs.as_ref(), state, &committed)
                        {
                            shared.log(&format!("journal write failed: {e}"));
                        }
                    }
                    let next =
                        Snapshot::build(census.clone(), shared.cfg.params, shared.cfg.dense_class);
                    let generation = shared.cell.publish(next);
                    ServeMetrics::bump(&shared.metrics.ingested_days);
                    shared.ready.store(true, Ordering::Release);
                    shared.log(&format!(
                        "ingested {day}, published generation {generation}"
                    ));
                }
                Ok(false) => {
                    // Structurally bad file (error budget, truncation,
                    // duplicate): permanently quarantined — rescans must
                    // not retry a poisoned file forever.
                    ServeMetrics::bump(&shared.metrics.ingest_failures);
                    ServeMetrics::bump(&shared.metrics.quarantined_files);
                    failures.insert(path.clone(), max_retries + 1);
                    shared.log(&format!("quarantined {}", path.display()));
                }
                Err(e) => {
                    // Typed failure (I/O, strict-mode): retry with
                    // exponential backoff across scan rounds, then
                    // quarantine.
                    ServeMetrics::bump(&shared.metrics.ingest_failures);
                    let n = failures.entry(path.clone()).or_insert(0);
                    *n += 1;
                    let attempts = *n;
                    shared.log(&format!(
                        "ingest of {} failed (attempt {attempts}): [{}] {e}",
                        path.display(),
                        e.label(),
                    ));
                    if attempts > max_retries {
                        ServeMetrics::bump(&shared.metrics.quarantined_files);
                        shared.log(&format!("quarantined {}", path.display()));
                    } else {
                        let backoff = shared
                            .cfg
                            .ingest
                            .retry_backoff
                            .saturating_mul(2u32.saturating_pow(attempts.min(6)));
                        nap(shared, backoff);
                    }
                    backoff_after_error = true;
                    break;
                }
            }
        }
        // First full scan done (even over an empty dir): the daemon has
        // seen everything there is; it is as ready as it will get.
        shared.ready.store(true, Ordering::Release);
        if !backoff_after_error {
            nap(shared, shared.cfg.poll_interval);
        }
    }
}

/// Day files in the source dir not yet in the census, ascending by day.
fn scan_source(fs: &dyn Vfs, dir: &Path, census: &Census) -> Vec<(Day, PathBuf)> {
    let mut out: Vec<(Day, PathBuf)> = Vec::new();
    let Ok(entries) = fs.read_dir(dir) else {
        return out;
    };
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if let Some(day) = day_from_filename(&name) {
            if !census.has_day(day) {
                out.push((day, path));
            }
        }
    }
    out.sort();
    out
}

/// Parses and commits one day file. `Ok(true)`: committed (checkpoint
/// written when configured). `Ok(false)`: the file is structurally bad
/// and was *not* committed. `Err`: a typed failure worth retrying.
fn ingest_one(
    ingestor: &StreamIngestor,
    path: &Path,
    census: &mut Census,
    committed: &mut Vec<Day>,
) -> Result<bool, IngestError> {
    let parsed = ingestor.parse_file(path)?;
    let report = ingestor.commit_parsed(parsed, census, committed)?;
    Ok(matches!(
        report.outcome,
        FileOutcome::Ingested | FileOutcome::FromCheckpoint
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("v6census-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    use v6census_core::vfs::RealFs;

    #[test]
    fn journal_round_trips() {
        let dir = tempdir("journal");
        let d0 = Day::from_ymd(2015, 3, 17);
        assert_eq!(
            load_journal(&RealFs, &journal_path(&dir)).unwrap(),
            Vec::new()
        );
        write_journal(&RealFs, &dir, &[d0, d0 + 1, d0 + 2]).unwrap();
        assert_eq!(
            load_journal(&RealFs, &journal_path(&dir)).unwrap(),
            vec![d0, d0 + 1, d0 + 2]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_is_a_typed_error() {
        let dir = tempdir("torn");
        // No end marker: a kill -9 mid-write before the atomic rename
        // can't produce this (rename is atomic), but a corrupt disk can.
        std::fs::write(
            journal_path(&dir),
            "# v6census serve journal v1\n2015-03-17\n",
        )
        .unwrap();
        let err = load_journal(&RealFs, &journal_path(&dir)).unwrap_err();
        assert_eq!(err.label(), "bad-checkpoint");
        // Count mismatch is also torn.
        std::fs::write(
            journal_path(&dir),
            "# v6census serve journal v1\n2015-03-17\n# end 4\n",
        )
        .unwrap();
        assert!(load_journal(&RealFs, &journal_path(&dir)).is_err());
        // Garbage day line.
        std::fs::write(
            journal_path(&dir),
            "# v6census serve journal v1\nnot-a-day\n# end 1\n",
        )
        .unwrap();
        assert!(load_journal(&RealFs, &journal_path(&dir)).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_skips_missing_checkpoints_and_sweeps_tmp() {
        let dir = tempdir("restore");
        let d0 = Day::from_ymd(2015, 3, 17);
        let addr: Addr = "2001:db8::1".parse().unwrap();
        crate::stream::write_checkpoint(&RealFs, &dir, d0, &[(addr, 3)]).unwrap();
        // Journal claims two days; only one checkpoint exists. An
        // aborted atomic write also left a stale tmp file behind.
        write_journal(&RealFs, &dir, &[d0, d0 + 1]).unwrap();
        std::fs::write(dir.join(".ckpt-2015-03-18.tsv.tmp"), "torn").unwrap();
        let out = restore_state(&RealFs, &dir);
        assert_eq!(out.restored, vec![d0]);
        assert_eq!(out.resumed, 1);
        assert_eq!(out.recovered, 1);
        assert_eq!(out.swept_tmp, 1);
        assert!(!dir.join(".ckpt-2015-03-18.tsv.tmp").exists());
        assert!(out.census.has_day(d0));
        assert!(!out.census.has_day(d0 + 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn head_completion_and_request_line() {
        assert!(head_complete(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(head_complete(b"GET / HTTP/1.1\n\n"));
        assert!(!head_complete(b"GET / HTTP/1.1\r\n"));
        assert_eq!(
            parse_request_line("GET /stats HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET", "/stats"))
        );
        assert_eq!(parse_request_line("FLOOP\r\n\r\n"), None);
        assert_eq!(parse_request_line("GET /stats SMTP/1.0\r\n\r\n"), None);
    }
}
