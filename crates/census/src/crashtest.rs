//! Exhaustive crash-point exploration of the durability pipeline.
//!
//! The serve daemon's crash story used to be demonstrated at a handful
//! of hand-picked points (SIGKILL after publish, one torn journal).
//! Real durability bugs live in the gaps. This harness closes them by
//! *enumerating every gap*: it runs a full ingest→checkpoint→journal→
//! publish pipeline against a [`MemFs`] that models the documented
//! persistence contract (DESIGN.md "Crash consistency": what survives a
//! crash is fsynced bytes plus completed renames/removals), counts every
//! durability-relevant mutation of the uninterrupted baseline run, then
//! replays the run once per mutation ordinal with a crash scheduled at
//! exactly that operation. At each crash point it inspects the durable
//! wreckage and runs recovery, asserting the invariants:
//!
//! 1. **No torn state visible** — the journal restored from the durable
//!    wreckage parses cleanly and lists a *prefix* of the baseline's
//!    committed days (generation g or earlier, never a mix), and every
//!    durable checkpoint is byte-identical to the baseline's.
//! 2. **Monotonic generations** — every run (baseline, crashed,
//!    recovery) publishes strictly increasing snapshot generations, and
//!    recovery restores at or below the last pre-crash generation.
//! 3. **Byte-identical resume** — recovery completes, commits exactly
//!    the baseline's days, reaches the baseline generation, and leaves
//!    the durable filesystem byte-for-byte equal to the uninterrupted
//!    run's. Resumed is *identical*, not just similar.
//! 4. **Lost days re-ingestable** — days whose checkpoint or journal
//!    entry did not survive are re-ingested from source during
//!    recovery; nothing is silently orphaned (stale `.tmp` leftovers
//!    are swept and counted).
//!
//! Violations are collected, never panicked — the harness itself obeys
//! the census crates' no-panic discipline.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use v6census_core::spatial::DensityClass;
use v6census_core::temporal::{Day, StabilityParams};
use v6census_core::vfs::{MemFs, Vfs};
use v6census_synth::world::epochs;
use v6census_synth::{World, WorldConfig};

use crate::ingest::Census;
use crate::serve::{restore_state, write_journal};
use crate::snapshot::Snapshot;
use crate::stream::{day_from_filename, ErrorMode, FileOutcome, IngestConfig, StreamIngestor};

/// Shape of the synthetic run the explorer drives.
#[derive(Clone, Copy, Debug)]
pub struct CrashTestConfig {
    /// Consecutive days to ingest (more days → more crash points;
    /// 6 days yields ~37).
    pub days: u32,
    /// World seed (determinism: same seed → same crash points).
    pub seed: u64,
    /// World scale (fraction of the standard population).
    pub scale: f64,
}

impl Default for CrashTestConfig {
    fn default() -> CrashTestConfig {
        CrashTestConfig {
            days: 6,
            seed: 41,
            scale: 0.001,
        }
    }
}

/// What the exploration proved (or found broken).
#[derive(Clone, Debug)]
pub struct CrashReport {
    /// Distinct crash points enumerated (one per durability-relevant
    /// mutation of the baseline run).
    pub crash_points: usize,
    /// Days the baseline run committed.
    pub baseline_days: usize,
    /// The baseline's final published generation.
    pub baseline_generation: u64,
    /// The baseline's durability op log (one line per mutation), for
    /// diagnosing a violation at ordinal *k*.
    pub op_log: Vec<String>,
    /// Every invariant violation found, labeled by crash ordinal.
    /// Empty means the recovery invariants hold at every crash point.
    pub violations: Vec<String>,
}

/// Where the harness puts the synthetic world inside the [`MemFs`].
pub fn source_dir() -> PathBuf {
    PathBuf::from("/crash/source")
}

/// Where the pipeline keeps its checkpoints + journal.
pub fn state_dir() -> PathBuf {
    PathBuf::from("/crash/state")
}

/// One pipeline run's observable outcome.
struct RunResult {
    /// Days committed, in commit order (restored first, then ingested).
    committed: Vec<Day>,
    /// Days restored from the journal before any source ingest.
    restored: Vec<Day>,
    /// Published snapshot generations, starting with the restore
    /// generation.
    generations: Vec<u64>,
}

impl RunResult {
    fn final_generation(&self) -> u64 {
        self.generations.last().copied().unwrap_or(0)
    }

    /// Strictly increasing after the restore generation.
    fn monotonic(&self) -> bool {
        self.generations.windows(2).all(|w| match w {
            [a, b] => a < b,
            _ => true,
        })
    }
}

fn ingest_config(fs: &Arc<MemFs>) -> IngestConfig {
    IngestConfig {
        mode: ErrorMode::Strict,
        checkpoint_dir: Some(state_dir()),
        resume: true,
        max_retries: 0,
        vfs: Arc::clone(fs) as Arc<dyn Vfs>,
        ..IngestConfig::default()
    }
}

/// Runs the serve-shaped durability pipeline to completion on `fs`:
/// restore (sweep + journal + checkpoints), then for each pending source
/// day parse → commit → checkpoint → journal → snapshot publish. `Err`
/// carries the first failure rendered — under a crash schedule that is
/// the simulated crash surfacing as a typed I/O error.
fn run_pipeline(fs: &Arc<MemFs>) -> Result<RunResult, String> {
    let state = state_dir();
    let source = source_dir();
    let params = StabilityParams::nd(3);
    let dense = DensityClass::new(8, 64);

    let restore = restore_state(fs.as_ref(), &state);
    let mut census = restore.census;
    let restored = restore.restored.clone();
    let mut committed = restore.restored;
    let mut generations = vec![Snapshot::build(census.clone(), params, dense).generation];

    let ingestor = StreamIngestor::new(ingest_config(fs));
    let mut pending: Vec<(Day, PathBuf)> = Vec::new();
    let entries = fs
        .read_dir(&source)
        .map_err(|e| format!("source scan failed: {e}"))?;
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if let Some(day) = day_from_filename(&name) {
            if !census.has_day(day) {
                pending.push((day, path));
            }
        }
    }
    pending.sort();

    for (day, path) in pending {
        let parsed = ingestor
            .parse_file(&path)
            .map_err(|e| format!("parse of {day} failed: [{}] {e}", e.label()))?;
        let report = ingestor
            .commit_parsed(parsed, &mut census, &mut committed)
            .map_err(|e| format!("commit of {day} failed: [{}] {e}", e.label()))?;
        if !matches!(
            report.outcome,
            FileOutcome::Ingested | FileOutcome::FromCheckpoint
        ) {
            return Err(format!("day {day} not committed ({:?})", report.outcome));
        }
        write_journal(fs.as_ref(), &state, &committed)
            .map_err(|e| format!("journal write after {day} failed: {e}"))?;
        generations.push(Snapshot::build(census.clone(), params, dense).generation);
    }

    Ok(RunResult {
        committed,
        restored,
        generations,
    })
}

/// True when `prefix` is an exact leading slice of `full`.
fn is_prefix(prefix: &[Day], full: &[Day]) -> bool {
    prefix.len() <= full.len() && prefix.iter().zip(full.iter()).all(|(a, b)| a == b)
}

/// Enumerates every crash point of the baseline run, simulates a crash
/// at each, runs recovery, and checks the module-level invariants.
/// Returns the report; violations are collected, not panicked.
pub fn explore(cfg: &CrashTestConfig) -> CrashReport {
    let mut violations: Vec<String> = Vec::new();
    let bail = |violations: Vec<String>| CrashReport {
        crash_points: 0,
        baseline_days: 0,
        baseline_generation: 0,
        op_log: Vec::new(),
        violations,
    };

    // Stage the synthetic world once; every run starts from this
    // durable image, exactly as a host reboot would see it.
    let world = World::standard(WorldConfig {
        seed: cfg.seed,
        scale: cfg.scale,
    });
    let seeded = MemFs::new();
    if let Err(e) = world.emit_day_logs(&seeded, &source_dir(), epochs::mar2015(), cfg.days) {
        violations.push(format!("world emission failed: {e}"));
        return bail(violations);
    }
    let world_files = seeded.durable_files();
    let world_dirs = seeded.durable_dirs();

    // Baseline: the uninterrupted run every crashed run is compared to.
    let base_fs = Arc::new(MemFs::from_durable(world_files.clone(), world_dirs.clone()));
    let baseline = match run_pipeline(&base_fs) {
        Ok(r) => r,
        Err(e) => {
            violations.push(format!("baseline run failed: {e}"));
            return bail(violations);
        }
    };
    if !baseline.monotonic() {
        violations.push(format!(
            "baseline generations not strictly monotonic: {:?}",
            baseline.generations
        ));
    }
    if baseline.committed.len() != cfg.days as usize {
        violations.push(format!(
            "baseline committed {} days, expected {}",
            baseline.committed.len(),
            cfg.days
        ));
    }
    let crash_points = base_fs.mutations();
    let op_log = base_fs.op_log();
    let baseline_durable = base_fs.durable_files();
    let journal = crate::serve::journal_path(&state_dir());

    for k in 0..crash_points {
        let fs = Arc::new(MemFs::from_durable(world_files.clone(), world_dirs.clone()));
        fs.set_crash_after(k);
        let crashed_run = run_pipeline(&fs);
        let at = op_log.get(k).map(String::as_str).unwrap_or("?");
        if !fs.crashed() {
            violations.push(format!("crash {k} ({at}): schedule never fired"));
            continue;
        }
        if crashed_run.is_ok() {
            violations.push(format!(
                "crash {k} ({at}): run reported success despite crashing"
            ));
        }
        let last_pre_crash_generation = match &crashed_run {
            Ok(r) => r.final_generation(),
            Err(_) => u64::MAX, // unknown: publish count not observable mid-crash
        };

        // The durable wreckage: exactly what a restart observes.
        let wreck_files = fs.durable_files();
        let wreck_dirs = fs.durable_dirs();

        // Invariant 1: no torn state visible. Durable checkpoints must
        // be byte-identical to the baseline's (content is deterministic
        // per day; write_atomic admits no intermediate states), and the
        // durable journal must parse to a prefix of the baseline's
        // committed days — g or earlier, never a mix.
        for (path, bytes) in &wreck_files {
            if !path.starts_with(state_dir()) {
                continue;
            }
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if v6census_core::vfs::is_stale_tmp(&name) {
                continue; // aborted-write leftover; recovery sweeps it
            }
            if !name.starts_with("ckpt-") {
                // The journal is rewritten after every day, so a crash
                // legitimately leaves an *earlier* journal than the
                // baseline's final one; its own invariant is the
                // prefix check below.
                continue;
            }
            match baseline_durable.get(path) {
                Some(base) if base == bytes => {}
                Some(_) => violations.push(format!(
                    "crash {k} ({at}): {} differs from baseline bytes",
                    path.display()
                )),
                None => violations.push(format!(
                    "crash {k} ({at}): unexpected durable file {}",
                    path.display()
                )),
            }
        }
        let rec_fs = Arc::new(MemFs::from_durable(wreck_files, wreck_dirs));
        match crate::serve::load_journal(rec_fs.as_ref(), &journal) {
            Ok(days) => {
                if !is_prefix(&days, &baseline.committed) {
                    violations.push(format!(
                        "crash {k} ({at}): journal {days:?} is not a prefix of baseline {:?}",
                        baseline.committed
                    ));
                }
            }
            Err(e) => violations.push(format!(
                "crash {k} ({at}): durable journal is torn: [{}] {e}",
                e.label()
            )),
        }

        // Invariants 2–4: recovery completes, restores at or below the
        // pre-crash generation, republishes monotonically, re-ingests
        // every lost day, and converges byte-identically.
        match run_pipeline(&rec_fs) {
            Ok(rec) => {
                if !rec.monotonic() {
                    violations.push(format!(
                        "crash {k} ({at}): recovery generations not monotonic: {:?}",
                        rec.generations
                    ));
                }
                let restored_generation = rec.generations.first().copied().unwrap_or(0);
                if restored_generation > last_pre_crash_generation {
                    violations.push(format!(
                        "crash {k} ({at}): restored generation {restored_generation} exceeds last pre-crash generation {last_pre_crash_generation}"
                    ));
                }
                if !is_prefix(&rec.restored, &baseline.committed) {
                    violations.push(format!(
                        "crash {k} ({at}): restored days {:?} not a prefix of baseline {:?}",
                        rec.restored, baseline.committed
                    ));
                }
                if rec.committed != baseline.committed {
                    violations.push(format!(
                        "crash {k} ({at}): recovery committed {:?}, baseline {:?}",
                        rec.committed, baseline.committed
                    ));
                }
                if rec.final_generation() != baseline.final_generation() {
                    violations.push(format!(
                        "crash {k} ({at}): recovery generation {} != baseline {}",
                        rec.final_generation(),
                        baseline.final_generation()
                    ));
                }
                if rec_fs.durable_files() != baseline_durable {
                    violations.push(format!(
                        "crash {k} ({at}): recovered durable state not byte-identical to baseline"
                    ));
                }
            }
            Err(e) => violations.push(format!("crash {k} ({at}): recovery failed: {e}")),
        }
    }

    CrashReport {
        crash_points,
        baseline_days: baseline.committed.len(),
        baseline_generation: baseline.final_generation(),
        op_log,
        violations,
    }
}

/// A deterministic verification census of the durable files a pipeline
/// produced — used by fault-plan tests to prove a recovered state still
/// classifies correctly.
pub fn census_of_durable(fs: &MemFs, state: &Path) -> Census {
    let restore = restore_state(fs, state);
    restore.census
}
