//! BGP routing table and per-ASN attribution of observed addresses.

use std::collections::BTreeMap;
use v6census_addr::{Addr, Prefix};
use v6census_core::temporal::Day;
use v6census_synth::World;
use v6census_trie::{AddrSet, PrefixMap, TrieError};

/// A routing-table snapshot with attribution helpers.
pub struct RoutingTable {
    table: PrefixMap<u32>,
}

impl RoutingTable {
    /// Snapshot of a world's BGP table on `day`.
    pub fn of(world: &World, day: Day) -> RoutingTable {
        RoutingTable {
            table: world.routing_table(day),
        }
    }

    /// Builds a table from externally sourced `(prefix, asn)` entries —
    /// the untrusted path (a parsed BGP snapshot). A structurally broken
    /// entry yields an error naming the offending prefix instead of a
    /// panic, so a malformed snapshot can never abort ASN attribution.
    pub fn from_entries(
        entries: impl IntoIterator<Item = (Prefix, u32)>,
    ) -> Result<RoutingTable, TrieError> {
        let mut table = PrefixMap::new();
        for (p, asn) in entries {
            table.try_insert(p, asn)?;
        }
        Ok(RoutingTable { table })
    }

    /// The originating ASN for an address, via longest-prefix match.
    pub fn asn_of(&self, a: Addr) -> Option<u32> {
        self.table.longest_match(a).map(|(_, &asn)| asn)
    }

    /// The matched BGP prefix for an address.
    pub fn prefix_of(&self, a: Addr) -> Option<Prefix> {
        self.table.longest_match(a).map(|(p, _)| p)
    }

    /// Number of advertised prefixes.
    pub fn prefix_count(&self) -> usize {
        self.table.len()
    }

    /// Splits a set of addresses by originating ASN. Unrouted addresses
    /// (none exist in the synthetic world, but defensive anyway) land
    /// under ASN 0.
    pub fn group_by_asn(&self, set: &AddrSet) -> BTreeMap<u32, AddrSet> {
        let mut buckets: BTreeMap<u32, Vec<Addr>> = BTreeMap::new();
        for a in set.iter() {
            buckets
                .entry(self.asn_of(a).unwrap_or(0))
                .or_default()
                .push(a);
        }
        buckets
            .into_iter()
            .map(|(asn, v)| (asn, AddrSet::from_iter(v)))
            .collect()
    }

    /// Splits a set of addresses by matched BGP prefix.
    pub fn group_by_prefix(&self, set: &AddrSet) -> BTreeMap<Prefix, AddrSet> {
        let mut buckets: BTreeMap<Prefix, Vec<Addr>> = BTreeMap::new();
        for a in set.iter() {
            if let Some(p) = self.prefix_of(a) {
                buckets.entry(p).or_default().push(a);
            }
        }
        buckets
            .into_iter()
            .map(|(p, v)| (p, AddrSet::from_iter(v)))
            .collect()
    }

    /// Per-ASN counts of a set (cheaper than materializing sets).
    pub fn count_by_asn(&self, set: &AddrSet) -> BTreeMap<u32, u64> {
        let mut out: BTreeMap<u32, u64> = BTreeMap::new();
        for a in set.iter() {
            *out.entry(self.asn_of(a).unwrap_or(0)).or_default() += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_synth::world::{asns, epochs};
    use v6census_synth::WorldConfig;

    #[test]
    fn attribution_covers_the_log() {
        let w = World::standard(WorldConfig::tiny(17));
        let d = epochs::mar2015();
        let rt = RoutingTable::of(&w, d);
        assert!(rt.prefix_count() > 30);
        let log = w.day_log(d);
        let set = AddrSet::from_iter(log.addrs());
        let groups = rt.group_by_asn(&set);
        assert!(!groups.contains_key(&0), "unrouted addresses found");
        let total: usize = groups.values().map(|s| s.len()).sum();
        assert_eq!(total, set.len());
        // The mobile carrier is present and large.
        assert!(groups.contains_key(&asns::MOBILE_A));
        let counts = rt.count_by_asn(&set);
        assert_eq!(
            counts[&asns::MOBILE_A],
            groups[&asns::MOBILE_A].len() as u64
        );
    }

    #[test]
    fn from_entries_builds_equivalent_table() {
        let entries = vec![
            ("2001:db8::/32".parse().unwrap(), 64496u32),
            ("2001:db8:ff::/48".parse().unwrap(), 64497),
            ("::/0".parse().unwrap(), 0),
        ];
        let rt = RoutingTable::from_entries(entries).unwrap();
        assert_eq!(rt.prefix_count(), 3);
        assert_eq!(rt.asn_of("2001:db8:ff::1".parse().unwrap()), Some(64497));
        assert_eq!(rt.asn_of("9999::1".parse().unwrap()), Some(0));
    }

    #[test]
    fn prefix_grouping_matches_longest_match() {
        let w = World::standard(WorldConfig::tiny(17));
        let d = epochs::mar2015();
        let rt = RoutingTable::of(&w, d);
        let log = w.day_log(d);
        let set = AddrSet::from_iter(log.addrs().take(2_000));
        for (p, sub) in rt.group_by_prefix(&set) {
            for a in sub.iter() {
                assert!(p.contains_addr(a));
            }
        }
    }
}
