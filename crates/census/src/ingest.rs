//! Log ingestion and transition-mechanism culling (§4.1).
//!
//! The census separates client addresses of the early transition
//! mechanisms (Teredo, ISATAP, 6to4) from "Other" addresses — native
//! end-to-end IPv6 transport, which includes 464XLAT and DS-Lite — before
//! any temporal or spatial classification, because the mechanisms'
//! content-defined address formats would skew results.

use std::collections::BTreeSet;
use v6census_addr::scheme::{classify, classify_beneath_6to4};
use v6census_addr::{Addr, AddressScheme, Mac};
use v6census_core::temporal::{DailyObservations, Day};
use v6census_synth::{DayLog, World};
use v6census_trie::AddrSet;

/// One day's log, culled into the paper's §4.1 categories.
#[derive(Clone, Debug)]
pub struct DaySummary {
    /// The log-processed date.
    pub day: Day,
    /// Teredo client addresses.
    pub teredo: AddrSet,
    /// ISATAP client addresses.
    pub isatap: AddrSet,
    /// 6to4 client addresses.
    pub sixtofour: AddrSet,
    /// "Other" addresses: native IPv6 end-to-end transport.
    pub other: AddrSet,
    /// EUI-64 addresses among "Other" (the Table 1 "EUI-64 addr (!6to4)"
    /// row).
    pub eui64: AddrSet,
    /// Unique MACs behind the EUI-64 addresses.
    pub eui64_macs: BTreeSet<Mac>,
    /// Total hits for the day.
    pub hits: u64,
}

impl DaySummary {
    /// Classifies and culls one day's aggregated log.
    pub fn from_log(log: &DayLog) -> DaySummary {
        DaySummary::from_entries(log.day, log.entries.iter().map(|e| (e.addr, e.hits)))
    }

    /// Classifies and culls weighted `(address, hits)` entries for one
    /// day — the streaming ingestion path, where entries come from parsed
    /// text rather than an in-memory [`DayLog`].
    pub fn from_entries(day: Day, entries: impl IntoIterator<Item = (Addr, u64)>) -> DaySummary {
        let mut teredo = Vec::new();
        let mut isatap = Vec::new();
        let mut sixtofour = Vec::new();
        let mut other = Vec::new();
        let mut eui64 = Vec::new();
        let mut eui64_macs = BTreeSet::new();
        let mut hits = 0u64;
        for (addr, h) in entries {
            hits += h;
            match classify(addr) {
                AddressScheme::Teredo => teredo.push(addr),
                AddressScheme::Isatap => isatap.push(addr),
                AddressScheme::SixToFour => sixtofour.push(addr),
                AddressScheme::Eui64(mac) => {
                    other.push(addr);
                    eui64.push(addr);
                    eui64_macs.insert(mac);
                }
                _ => other.push(addr),
            }
        }
        DaySummary {
            day,
            teredo: AddrSet::from_iter(teredo),
            isatap: AddrSet::from_iter(isatap),
            sixtofour: AddrSet::from_iter(sixtofour),
            other: AddrSet::from_iter(other),
            eui64: AddrSet::from_iter(eui64),
            eui64_macs,
            hits,
        }
    }

    /// Merges another summary *for the same day* into this one: category
    /// unions, hit totals summed.
    ///
    /// # Panics
    /// Panics if the days differ — merging across days is always a bug.
    pub fn merge(&mut self, other: &DaySummary) {
        assert_eq!(
            self.day, other.day,
            "cannot merge summaries of different days"
        );
        self.teredo = self.teredo.union(&other.teredo);
        self.isatap = self.isatap.union(&other.isatap);
        self.sixtofour = self.sixtofour.union(&other.sixtofour);
        self.other = self.other.union(&other.other);
        self.eui64 = self.eui64.union(&other.eui64);
        self.eui64_macs.extend(other.eui64_macs.iter().copied());
        self.hits += other.hits;
    }

    /// Total active addresses across all categories (the percentage base
    /// of Table 1).
    pub fn total(&self) -> usize {
        self.teredo.len() + self.isatap.len() + self.sixtofour.len() + self.other.len()
    }

    /// Active /64 prefixes among "Other" addresses.
    pub fn other_64s(&self) -> AddrSet {
        self.other.map_prefix(64)
    }
}

/// A multi-day census over a world: per-day culled summaries plus the
/// observation stores that feed the temporal classifier.
///
/// Days are indexed (`Day → summary`) so per-day lookups are O(log d)
/// rather than linear scans, and duplicate-day ingestion is an explicit
/// decision: [`Census::ingest`] merges, [`Census::try_ingest`] rejects.
#[derive(Clone)]
pub struct Census {
    summaries: Vec<DaySummary>,
    /// Day → position in `summaries`.
    index: std::collections::BTreeMap<Day, usize>,
    other_daily: DailyObservations,
    other64_daily: DailyObservations,
}

impl Census {
    /// An empty census, to be fed with [`Census::ingest`].
    pub fn new_empty() -> Census {
        Census {
            summaries: Vec::new(),
            index: std::collections::BTreeMap::new(),
            other_daily: DailyObservations::new(),
            other64_daily: DailyObservations::new(),
        }
    }

    /// Ingests logs for every day in `first..=last` (inclusive).
    pub fn run(world: &World, first: Day, last: Day) -> Census {
        let mut c = Census::new_empty();
        for day in first.range_inclusive(last) {
            c.ingest(&world.day_log(day));
        }
        c
    }

    /// Ingests one pre-generated log (for callers generating days in
    /// parallel). A day already present is **merged** (category unions,
    /// hits summed); use [`Census::try_ingest`] to reject duplicates
    /// instead.
    pub fn ingest(&mut self, log: &DayLog) {
        self.ingest_summary(DaySummary::from_log(log));
    }

    /// Ingests a pre-culled summary, merging into an existing same-day
    /// summary if one exists.
    pub fn ingest_summary(&mut self, s: DaySummary) {
        self.other_daily.record(s.day, s.other.clone());
        self.other64_daily.record(s.day, s.other_64s());
        match self.index.get(&s.day) {
            Some(&i) => self.summaries[i].merge(&s),
            None => {
                self.index.insert(s.day, self.summaries.len());
                self.summaries.push(s);
            }
        }
    }

    /// Ingests a summary only if its day is new; a duplicate day is
    /// rejected with the summary handed back untouched so the caller can
    /// choose to merge it instead (hence the deliberately large `Err`).
    #[allow(clippy::result_large_err)]
    pub fn try_ingest(&mut self, s: DaySummary) -> Result<(), DaySummary> {
        if self.index.contains_key(&s.day) {
            return Err(s);
        }
        self.ingest_summary(s);
        Ok(())
    }

    /// True when `day` has been ingested.
    pub fn has_day(&self, day: Day) -> bool {
        self.index.contains_key(&day)
    }

    /// The ingested days, ascending.
    pub fn days(&self) -> impl Iterator<Item = Day> + '_ {
        self.index.keys().copied()
    }

    /// The per-day summaries, in ingestion order.
    pub fn summaries(&self) -> &[DaySummary] {
        &self.summaries
    }

    /// The summary for one day, if ingested. O(log days) via the index.
    pub fn summary(&self, day: Day) -> Option<&DaySummary> {
        self.index.get(&day).map(|&i| &self.summaries[i])
    }

    /// Daily "Other" address observations (temporal classifier input).
    pub fn other_daily(&self) -> &DailyObservations {
        &self.other_daily
    }

    /// Daily "Other" /64 observations.
    pub fn other64_daily(&self) -> &DailyObservations {
        &self.other64_daily
    }

    /// Union of "Other" addresses over `days`.
    pub fn other_over(&self, days: impl IntoIterator<Item = Day>) -> AddrSet {
        AddrSet::union_all(
            days.into_iter()
                .filter_map(|d| self.other_daily.get(d))
                .collect::<Vec<_>>(),
        )
    }

    /// Union of EUI-64 "Other" addresses over `days`. Each day resolves
    /// through the index — O(k log d), not a scan per day.
    pub fn eui64_over(&self, days: impl IntoIterator<Item = Day>) -> AddrSet {
        AddrSet::union_all(
            days.into_iter()
                .filter_map(|d| self.summary(d).map(|s| &s.eui64))
                .collect::<Vec<_>>(),
        )
    }

    /// The full classification join for one day: every "Other" address
    /// with its content scheme (§3), temporal class (§5.1), and — when a
    /// density class is supplied — its spatial dense-prefix membership
    /// (§5.2.2). This is the record the paper's applications (target
    /// selection, retention policy, reputation) consume.
    pub fn classify_day(
        &self,
        day: Day,
        params: &v6census_core::temporal::StabilityParams,
        dense: Option<v6census_core::spatial::DensityClass>,
    ) -> Vec<v6census_core::ClassifiedAddr> {
        use v6census_core::{ClassifiedAddr, TemporalClass};
        let active = self.other_daily.on(day);
        let stable = self.other_daily.stable_on(day, params);
        let dense_members = dense.map(|c| c.dense_addresses(&active));
        active
            .iter()
            .map(|a| ClassifiedAddr {
                addr: a,
                scheme: classify(a),
                temporal: if stable.contains(a) {
                    TemporalClass::NdStable {
                        n: params.n,
                        back: params.back,
                        fwd: params.fwd,
                    }
                } else {
                    TemporalClass::NotKnownStable
                },
                dense_in: match (&dense_members, dense) {
                    (Some(members), Some(c)) if members.contains(a) => Some((c.n, c.p)),
                    _ => None,
                },
            })
            .collect()
    }

    /// Weekly category rollup: a [`DaySummary`]-shaped union over the
    /// seven days starting at `first` (Table 1b).
    pub fn week_summary(&self, first: Day) -> DaySummary {
        let days: Vec<&DaySummary> = self
            .summaries
            .iter()
            .filter(|s| s.day >= first && s.day <= first + 6)
            .collect();
        let mut eui64_macs = BTreeSet::new();
        for s in &days {
            eui64_macs.extend(s.eui64_macs.iter().copied());
        }
        let union = |f: fn(&DaySummary) -> &AddrSet| {
            AddrSet::union_all(days.iter().map(|s| f(s)).collect::<Vec<_>>())
        };
        DaySummary {
            day: first,
            teredo: union(|s| &s.teredo),
            isatap: union(|s| &s.isatap),
            sixtofour: union(|s| &s.sixtofour),
            other: union(|s| &s.other),
            eui64: union(|s| &s.eui64),
            eui64_macs,
            hits: days.iter().map(|s| s.hits).sum(),
        }
    }
}

/// Splits EUI-64 addresses of a set by their embedded MAC — used by the
/// §6.1.1 / §6.2.1 EUI-64 analyses.
pub fn group_by_mac(set: &AddrSet) -> std::collections::BTreeMap<Mac, Vec<Addr>> {
    let mut out: std::collections::BTreeMap<Mac, Vec<Addr>> = std::collections::BTreeMap::new();
    for a in set.iter() {
        if let AddressScheme::Eui64(mac) = classify_beneath_6to4(a) {
            out.entry(mac).or_default().push(a);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_synth::{world::epochs, WorldConfig};

    fn world() -> World {
        World::standard(WorldConfig::tiny(13))
    }

    #[test]
    fn day_summary_partitions_the_log() {
        let w = world();
        let log = w.day_log(epochs::mar2015());
        let s = DaySummary::from_log(&log);
        assert_eq!(s.total(), log.len(), "culling must not lose addresses");
        assert!(s.other.len() > s.sixtofour.len());
        assert!(!s.eui64.is_empty());
        assert!(s.eui64_macs.len() <= s.eui64.len());
        assert!(s.hits > 0);
        // Categories are disjoint.
        assert_eq!(s.other.intersection_len(&s.sixtofour), 0);
        assert_eq!(s.other.intersection_len(&s.teredo), 0);
        assert_eq!(s.sixtofour.intersection_len(&s.isatap), 0);
    }

    #[test]
    fn census_accumulates_days() {
        let w = world();
        let d = epochs::mar2015();
        let c = Census::run(&w, d, d + 2);
        assert_eq!(c.summaries().len(), 3);
        assert!(c.summary(d).is_some());
        assert!(c.summary(d + 3).is_none());
        assert_eq!(c.other_daily().day_count(), 3);
        let union = c.other_over(d.range_inclusive(d + 2));
        assert!(union.len() >= c.summary(d).unwrap().other.len());
    }

    #[test]
    fn week_summary_unions() {
        let w = world();
        let d = epochs::mar2015();
        let c = Census::run(&w, d, d + 6);
        let week = c.week_summary(d);
        let day = c.summary(d).unwrap();
        assert!(week.other.len() > day.other.len());
        assert!(week.eui64_macs.len() >= day.eui64_macs.len());
        // Every daily address is in the weekly union.
        for a in day.other.iter().take(500) {
            assert!(week.other.contains(a));
        }
    }

    #[test]
    fn classify_day_joins_all_dimensions() {
        use v6census_core::spatial::DensityClass;
        use v6census_core::temporal::StabilityParams;
        use v6census_core::TemporalClass;
        let w = world();
        let d = epochs::mar2015();
        let c = Census::run(&w, d - 7, d + 7);
        let params = StabilityParams::three_day();
        let records = c.classify_day(d, &params, Some(DensityClass::new(2, 112)));
        assert_eq!(records.len(), c.other_daily().on(d).len());
        let stable_count = records
            .iter()
            .filter(|r| matches!(r.temporal, TemporalClass::NdStable { .. }))
            .count();
        assert_eq!(
            stable_count,
            c.other_daily().stable_on(d, &params).len(),
            "temporal classes must agree with the classifier"
        );
        let dense_count = records.iter().filter(|r| r.dense_in.is_some()).count();
        assert!(
            dense_count > 0,
            "server blocks guarantee some dense members"
        );
        // The record renders with the paper's labels.
        let rendered = records
            .iter()
            .find(|r| r.dense_in.is_some())
            .unwrap()
            .to_string();
        assert!(rendered.contains("2@/112-dense"), "{rendered}");
    }

    #[test]
    fn duplicate_day_merges_or_rejects_explicitly() {
        let w = world();
        let d = epochs::mar2015();
        let log = w.day_log(d);
        let mut c = Census::new_empty();
        c.ingest(&log);
        let once_other = c.summary(d).unwrap().other.len();
        let once_hits = c.summary(d).unwrap().hits;
        // Merging the same log again must not duplicate the summary...
        c.ingest(&log);
        assert_eq!(c.summaries().len(), 1, "merge, not a second entry");
        assert_eq!(c.summary(d).unwrap().other.len(), once_other);
        // ...but hit totals accumulate (two deliveries of the same day).
        assert_eq!(c.summary(d).unwrap().hits, 2 * once_hits);
        // try_ingest rejects instead.
        let rejected = c.try_ingest(DaySummary::from_log(&log));
        assert!(rejected.is_err());
        assert_eq!(rejected.unwrap_err().day, d);
        assert!(c
            .try_ingest(DaySummary::from_log(&w.day_log(d + 1)))
            .is_ok());
        assert!(c.has_day(d + 1));
        assert_eq!(c.days().collect::<Vec<_>>(), vec![d, d + 1]);
    }

    #[test]
    fn from_entries_matches_from_log() {
        let w = world();
        let log = w.day_log(epochs::mar2015());
        let a = DaySummary::from_log(&log);
        let b = DaySummary::from_entries(log.day, log.entries.iter().map(|e| (e.addr, e.hits)));
        assert_eq!(a.other.len(), b.other.len());
        assert_eq!(a.teredo.len(), b.teredo.len());
        assert_eq!(a.eui64_macs, b.eui64_macs);
        assert_eq!(a.hits, b.hits);
    }

    #[test]
    fn indexed_lookup_agrees_with_scan() {
        let w = world();
        let d = epochs::mar2015();
        let c = Census::run(&w, d, d + 4);
        for day in d.range_inclusive(d + 4) {
            let via_index = c.summary(day).unwrap();
            let via_scan = c.summaries().iter().find(|s| s.day == day).unwrap();
            assert_eq!(via_index.day, via_scan.day);
            assert_eq!(via_index.other.len(), via_scan.other.len());
        }
        let eui = c.eui64_over(d.range_inclusive(d + 4));
        let manual = AddrSet::union_all(c.summaries().iter().map(|s| &s.eui64));
        assert_eq!(eui.len(), manual.len());
    }

    #[test]
    fn mac_grouping_is_consistent() {
        let w = world();
        let d = epochs::mar2015();
        let c = Census::run(&w, d, d);
        let s = c.summary(d).unwrap();
        let groups = group_by_mac(&s.eui64);
        let total: usize = groups.values().map(|v| v.len()).sum();
        assert_eq!(total, s.eui64.len());
        assert_eq!(groups.len(), s.eui64_macs.len());
    }
}
