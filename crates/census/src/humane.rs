//! Paper-style number formatting: `318M (95.8%)`, `1.81M`, `8.39B`.

/// Formats a count with three significant figures and a K/M/B/T suffix,
/// matching the paper's tables ("12.8M", "1.98K", "318M", "1.81T").
pub fn si(n: u128) -> String {
    const UNITS: [(u128, &str); 4] = [
        (1_000_000_000_000, "T"),
        (1_000_000_000, "B"),
        (1_000_000, "M"),
        (1_000, "K"),
    ];
    for &(scale, suffix) in &UNITS {
        if n >= scale {
            let v = n as f64 / scale as f64;
            return format!("{}{}", three_sig(v), suffix);
        }
    }
    n.to_string()
}

/// Three significant figures: 1.98, 12.8, 318.
fn three_sig(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a proportion the way the paper's tables do: `(95.8%)`,
/// `(0.00%)`, `(.296%)` style is normalized to three significant figures
/// with a leading digit.
pub fn pct(part: u128, whole: u128) -> String {
    if whole == 0 {
        return "(—)".to_string();
    }
    let p = part as f64 / whole as f64 * 100.0;
    if p >= 10.0 {
        format!("({p:.1}%)")
    } else if p >= 0.995 {
        format!("({p:.2}%)")
    } else {
        format!("({p:.3}%)")
    }
}

/// `count + percentage` cell, e.g. `318M (95.8%)`.
pub fn count_pct(part: u128, whole: u128) -> String {
    format!("{} {}", si(part), pct(part, whole))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_matches_paper_style() {
        assert_eq!(si(1_980), "1.98K");
        assert_eq!(si(12_800_000), "12.8M");
        assert_eq!(si(318_000_000), "318M");
        assert_eq!(si(1_800_000_000), "1.80B");
        assert_eq!(si(1_810_000_000_000), "1.81T");
        assert_eq!(si(999), "999");
        assert_eq!(si(0), "0");
    }

    #[test]
    fn pct_styles() {
        assert_eq!(pct(958, 1000), "(95.8%)");
        assert_eq!(pct(944, 10_000), "(9.44%)");
        assert_eq!(pct(296, 100_000), "(0.296%)");
        assert_eq!(pct(0, 100), "(0.000%)");
        assert_eq!(pct(1, 0), "(—)");
    }

    #[test]
    fn combined_cell() {
        assert_eq!(count_pct(12_800_000, 160_600_000), "12.8M (7.97%)");
    }
}
