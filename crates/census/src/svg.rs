//! Self-contained SVG renderers for the paper's figures — no external
//! plotting dependency, suitable for embedding in reports.
//!
//! The visual conventions follow the paper: MRA plots use a log₂ y-axis
//! from 1 to 65536 over prefix length 0..128 with one polyline per
//! resolution; CCDFs are log-log.

#![allow(clippy::write_with_newline)] // SVG templates end lines deliberately

use crate::figures::{MraFigure, PopulationFigure};
use std::fmt::Write as _;
use v6census_core::spatial::MraResolution;

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 60.0;
const MARGIN_B: f64 = 40.0;
const MARGIN_T: f64 = 30.0;
const MARGIN_R: f64 = 20.0;

fn plot_w() -> f64 {
    WIDTH - MARGIN_L - MARGIN_R
}
fn plot_h() -> f64 {
    HEIGHT - MARGIN_T - MARGIN_B
}

fn svg_header(title: &str) -> String {
    format!(
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">
<rect width="100%" height="100%" fill="white"/>
<text x="{}" y="18" font-family="sans-serif" font-size="13" text-anchor="middle">{}</text>
"##,
        WIDTH / 2.0,
        xml_escape(title)
    )
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn polyline(points: &[(f64, f64)], color: &str, dash: &str) -> String {
    let mut d = String::new();
    for (x, y) in points {
        let _ = write!(d, "{x:.1},{y:.1} ");
    }
    format!(
        r##"<polyline fill="none" stroke="{color}" stroke-width="1.5"{} points="{d}"/>
"##,
        if dash.is_empty() {
            String::new()
        } else {
            format!(r##" stroke-dasharray="{dash}""##)
        }
    )
}

/// Renders an MRA figure as an SVG document (log₂ ratio axis 1..65536,
/// prefix length axis 0..128, one curve per resolution).
pub fn svg_mra(fig: &MraFigure) -> String {
    let mut out = svg_header(&format!("{} — {} addrs", fig.title, fig.total));

    // Axes and gridlines.
    for k in 0..=16u32 {
        let y = MARGIN_T + plot_h() * (1.0 - k as f64 / 16.0);
        let _ = write!(
            out,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#eeeeee"/>
"##,
            WIDTH - MARGIN_R
        );
        if k % 4 == 0 {
            let _ = write!(
                out,
                r##"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10" text-anchor="end">{}</text>
"##,
                MARGIN_L - 6.0,
                y + 3.0,
                1u64 << k
            );
        }
    }
    for p in (0..=128u32).step_by(16) {
        let x = MARGIN_L + plot_w() * p as f64 / 128.0;
        let _ = write!(
            out,
            r##"<line x1="{x:.1}" y1="{MARGIN_T}" x2="{x:.1}" y2="{:.1}" stroke="#eeeeee"/>
<text x="{x:.1}" y="{:.1}" font-family="sans-serif" font-size="10" text-anchor="middle">{p}</text>
"##,
            HEIGHT - MARGIN_B,
            HEIGHT - MARGIN_B + 14.0
        );
    }

    // Curves in the paper's styling: 16-bit dashed red, 4-bit black,
    // single-bit blue.
    for (res, curve) in &fig.curves {
        let (color, dash) = match res {
            MraResolution::Segment16 => ("#cc2222", "6,3"),
            MraResolution::Nybble => ("#222222", ""),
            MraResolution::Byte => ("#22aa22", "2,2"),
            MraResolution::SingleBit => ("#2244cc", ""),
        };
        let points: Vec<(f64, f64)> = curve
            .iter()
            .map(|&(p, r)| {
                let x = MARGIN_L + plot_w() * p as f64 / 128.0;
                let y = MARGIN_T + plot_h() * (1.0 - r.max(1.0).log2() / 16.0);
                (x, y)
            })
            .collect();
        out.push_str(&polyline(&points, color, dash));
    }

    // Legend.
    let mut ly = MARGIN_T + 12.0;
    for (res, _) in &fig.curves {
        let color = match res {
            MraResolution::Segment16 => "#cc2222",
            MraResolution::Nybble => "#222222",
            MraResolution::Byte => "#22aa22",
            MraResolution::SingleBit => "#2244cc",
        };
        let _ = write!(
            out,
            r##"<rect x="{:.1}" y="{:.1}" width="12" height="3" fill="{color}"/>
<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10">{}</text>
"##,
            MARGIN_L + 10.0,
            ly - 3.0,
            MARGIN_L + 28.0,
            ly + 1.0,
            res.label()
        );
        ly += 14.0;
    }
    out.push_str("</svg>\n");
    out
}

/// Renders a CCDF family as a log-log SVG document.
pub fn svg_ccdf(title: &str, fig: &PopulationFigure) -> String {
    let mut out = svg_header(title);
    let max_x = fig
        .series
        .iter()
        .map(|(_, c)| c.max())
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let decades_x = max_x.log10().ceil().max(1.0);
    let decades_y = 6.0;

    for d in 0..=decades_x as u32 {
        let x = MARGIN_L + plot_w() * d as f64 / decades_x;
        let _ = write!(
            out,
            r##"<line x1="{x:.1}" y1="{MARGIN_T}" x2="{x:.1}" y2="{:.1}" stroke="#eeeeee"/>
<text x="{x:.1}" y="{:.1}" font-family="sans-serif" font-size="10" text-anchor="middle">1e{d}</text>
"##,
            HEIGHT - MARGIN_B,
            HEIGHT - MARGIN_B + 14.0
        );
    }
    for d in 0..=decades_y as u32 {
        let y = MARGIN_T + plot_h() * d as f64 / decades_y;
        let _ = write!(
            out,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#eeeeee"/>
<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10" text-anchor="end">1e-{d}</text>
"##,
            WIDTH - MARGIN_R,
            MARGIN_L - 6.0,
            y + 3.0
        );
    }

    const COLORS: [&str; 6] = [
        "#cc2222", "#2244cc", "#228833", "#aa22aa", "#d08020", "#222222",
    ];
    let mut ly = MARGIN_T + 12.0;
    for (i, (label, ccdf)) in fig.series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let points: Vec<(f64, f64)> = ccdf
            .steps()
            .into_iter()
            .filter(|&(_, prop)| prop > 0.0)
            .map(|(x, prop)| {
                let fx = (x.max(1) as f64).log10() / decades_x;
                let fy = (-prop.log10()).clamp(0.0, decades_y) / decades_y;
                (MARGIN_L + plot_w() * fx, MARGIN_T + plot_h() * fy)
            })
            .collect();
        out.push_str(&polyline(&points, color, ""));
        let _ = write!(
            out,
            r##"<rect x="{:.1}" y="{:.1}" width="12" height="3" fill="{color}"/>
<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10">{}</text>
"##,
            MARGIN_L + 10.0,
            ly - 3.0,
            MARGIN_L + 28.0,
            ly + 1.0,
            xml_escape(label)
        );
        ly += 14.0;
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_addr::Addr;
    use v6census_core::spatial::Ccdf;
    use v6census_trie::AddrSet;

    fn sample_fig() -> MraFigure {
        let set = AddrSet::from_iter(
            (0..256u128).map(|i| Addr((0x2001_0db8u128 << 96) | (i << 64) | (i * 3))),
        );
        MraFigure::of("test & demo", &set)
    }

    #[test]
    fn mra_svg_is_wellformed() {
        let svg = svg_mra(&sample_fig());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 3, "one per resolution");
        // Title is escaped.
        assert!(svg.contains("test &amp; demo"));
        // Y-axis labels include the extremes of the paper's axis.
        assert!(svg.contains(">1<") || svg.contains(">1</text>"));
        assert!(svg.contains("65536"));
    }

    #[test]
    fn ccdf_svg_is_wellformed() {
        let fig = PopulationFigure {
            series: vec![
                ("series <a>".into(), Ccdf::new(vec![1, 2, 3, 50, 1000])),
                ("b".into(), Ccdf::new(vec![5, 5, 7])),
            ],
        };
        let svg = svg_ccdf("ccdf", &fig);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("series &lt;a&gt;"));
    }

    #[test]
    fn curves_stay_inside_the_canvas() {
        let svg = svg_mra(&sample_fig());
        for points in svg
            .split("points=\"")
            .skip(1)
            .map(|s| s.split('"').next().unwrap())
        {
            for pair in points.split_whitespace() {
                let (x, y) = pair.split_once(',').unwrap();
                let x: f64 = x.parse().unwrap();
                let y: f64 = y.parse().unwrap();
                assert!((0.0..=WIDTH).contains(&x), "x {x}");
                assert!((0.0..=HEIGHT).contains(&y), "y {y}");
            }
        }
    }
}
