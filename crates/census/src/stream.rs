//! Fault-tolerant streaming ingestion of day-log files.
//!
//! The library's [`Census::run`] path assumes a perfect in-memory
//! [`v6census_synth::DayLog`]; a real multi-day census reads a directory
//! of text files produced by log collection, and log collection fails in
//! mundane ways: corrupt lines, files cut short, the same day delivered
//! twice, mislabeled headers, days that never arrive. This module makes
//! those failures first-class:
//!
//! * [`IngestError`] — a structured taxonomy with per-line diagnostics
//!   (file, line number, offending content) and per-file outcomes.
//! * [`IngestConfig`] — the error budget (`max_bad_ratio`), strict /
//!   lenient modes, retry-with-backoff for transient I/O, duplicate-day
//!   policy, and checkpointing for `--resume`.
//! * [`StreamIngestor`] — reads files line-by-line in bounded memory,
//!   validates the header and the `# end` integrity trailer, and builds
//!   a [`Census`] plus a per-day [`IngestReport`] health report.
//!
//! Checkpoints are one file per ingested day (written atomically via
//! temp-file + rename), holding the parsed `(address, hits)` entries.
//! Because [`DaySummary::from_entries`] is a pure function of those
//! entries, a resumed census is *identical* to an uninterrupted one —
//! not just similar.

use crate::ingest::{Census, DaySummary};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::io::{self, BufRead};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use v6census_addr::Addr;
use v6census_core::temporal::Day;
use v6census_core::vfs::{self, RealFs, Vfs};

/// Everything that can go wrong while ingesting day logs.
#[derive(Clone, Debug, PartialEq)]
pub enum IngestError {
    /// An I/O failure that survived the retry budget.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The error kind, for programmatic triage.
        kind: io::ErrorKind,
        /// Retries attempted before giving up.
        retries: u32,
        /// The rendered error.
        detail: String,
    },
    /// A data line that did not parse (bad address or bad hits column).
    BadLine {
        /// The file involved.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// The offending content, truncated for reports.
        content: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The file's header is missing or malformed.
    BadHeader {
        /// The file involved.
        path: PathBuf,
        /// Why it was rejected.
        reason: String,
    },
    /// The file ended early: fewer data lines than the header/trailer
    /// declared, or no integrity trailer at all.
    Truncated {
        /// The file involved.
        path: PathBuf,
        /// Entries the header (or trailer) declared.
        expected: usize,
        /// Data lines actually present.
        got: usize,
    },
    /// The header date disagrees with the file name's date.
    DayMismatch {
        /// The file involved.
        path: PathBuf,
        /// The date in the file name.
        file_day: Day,
        /// The date in the header.
        header_day: Day,
    },
    /// A day that was already ingested arrived again.
    DuplicateDay {
        /// The repeated day.
        day: Day,
        /// The file carrying the repeat.
        path: PathBuf,
    },
    /// A file's day precedes one already ingested (streaming order
    /// violation; only possible via [`StreamIngestor::ingest_paths`]).
    OutOfOrderDay {
        /// The late-arriving day.
        day: Day,
        /// The most recent day ingested before it.
        after: Day,
    },
    /// A calendar day between the first and last ingested day was never
    /// successfully ingested.
    MissingDay {
        /// The uncovered day.
        day: Day,
    },
    /// Bad lines exceeded the configured budget; the file was abandoned.
    ErrorBudgetExceeded {
        /// The file involved.
        path: PathBuf,
        /// Bad data lines.
        bad: usize,
        /// Total data lines.
        total: usize,
        /// The configured ceiling.
        max_bad_ratio: f64,
    },
    /// A checkpoint file failed validation.
    BadCheckpoint {
        /// The checkpoint involved.
        path: PathBuf,
        /// Why it was rejected.
        reason: String,
    },
    /// A supervised work unit processing this file died (panic) or was
    /// abandoned (deadline); the file's data never reached the census.
    UnitFailed {
        /// The file involved.
        path: PathBuf,
        /// What happened to the unit.
        reason: String,
    },
}

impl IngestError {
    /// A stable short label per variant, for health reports and tests.
    pub fn label(&self) -> &'static str {
        match self {
            IngestError::Io { .. } => "io",
            IngestError::BadLine { .. } => "bad-line",
            IngestError::BadHeader { .. } => "bad-header",
            IngestError::Truncated { .. } => "truncated",
            IngestError::DayMismatch { .. } => "day-mismatch",
            IngestError::DuplicateDay { .. } => "duplicate-day",
            IngestError::OutOfOrderDay { .. } => "out-of-order-day",
            IngestError::MissingDay { .. } => "missing-day",
            IngestError::ErrorBudgetExceeded { .. } => "error-budget-exceeded",
            IngestError::BadCheckpoint { .. } => "bad-checkpoint",
            IngestError::UnitFailed { .. } => "unit-failed",
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io {
                path,
                kind,
                retries,
                detail,
            } => write!(
                f,
                "{}: I/O error ({kind:?}) after {retries} retries: {detail}",
                path.display()
            ),
            IngestError::BadLine {
                path,
                line,
                content,
                reason,
            } => write!(f, "{}:{line}: {reason}: {content:?}", path.display()),
            IngestError::BadHeader { path, reason } => {
                write!(f, "{}: bad header: {reason}", path.display())
            }
            IngestError::Truncated {
                path,
                expected,
                got,
            } => write!(
                f,
                "{}: truncated: expected {expected} entries, got {got}",
                path.display()
            ),
            IngestError::DayMismatch {
                path,
                file_day,
                header_day,
            } => write!(
                f,
                "{}: header says {header_day} but file name says {file_day}",
                path.display()
            ),
            IngestError::DuplicateDay { day, path } => {
                write!(f, "{}: day {day} already ingested", path.display())
            }
            IngestError::OutOfOrderDay { day, after } => {
                write!(f, "day {day} arrived after {after}")
            }
            IngestError::MissingDay { day } => write!(f, "day {day} was never ingested"),
            IngestError::ErrorBudgetExceeded {
                path,
                bad,
                total,
                max_bad_ratio,
            } => write!(
                f,
                "{}: {bad}/{total} bad lines exceeds --max-bad-ratio {max_bad_ratio}",
                path.display()
            ),
            IngestError::BadCheckpoint { path, reason } => {
                write!(f, "{}: bad checkpoint: {reason}", path.display())
            }
            IngestError::UnitFailed { path, reason } => {
                write!(f, "{}: work unit failed: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Whether an error aborts the whole run or is recorded and survived.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ErrorMode {
    /// First error aborts the run with that error.
    Strict,
    /// Errors are recorded in the report; ingestion continues with
    /// whatever can be salvaged.
    #[default]
    Lenient,
}

/// What to do when a day arrives twice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Keep the first delivery; record the repeat as an error.
    #[default]
    Reject,
    /// Union the deliveries (hits accumulate).
    Merge,
}

/// Configuration for [`StreamIngestor`].
#[derive(Clone, Debug)]
pub struct IngestConfig {
    /// Maximum tolerated fraction of bad data lines per file before the
    /// file is abandoned ([`IngestError::ErrorBudgetExceeded`]).
    pub max_bad_ratio: f64,
    /// Strict (fail fast) or lenient (record and continue).
    pub mode: ErrorMode,
    /// What to do when the same day arrives twice.
    pub on_duplicate: DuplicatePolicy,
    /// Transient-I/O retries per file.
    pub max_retries: u32,
    /// Base backoff between retries (doubles per attempt).
    pub retry_backoff: Duration,
    /// Directory for per-day checkpoints; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Reuse existing checkpoints instead of re-reading their days.
    pub resume: bool,
    /// Stop after ingesting this many days (used by tests to simulate a
    /// mid-run kill).
    pub max_days: Option<usize>,
    /// The filesystem every durability path goes through. Production
    /// uses [`RealFs`]; tests and the `--fault-fs` debug flag substitute
    /// a [`v6census_core::vfs::FaultFs`] or
    /// [`v6census_core::vfs::MemFs`].
    pub vfs: Arc<dyn Vfs>,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig {
            max_bad_ratio: 0.01,
            mode: ErrorMode::Lenient,
            on_duplicate: DuplicatePolicy::Reject,
            max_retries: 3,
            retry_backoff: Duration::from_millis(25),
            checkpoint_dir: None,
            resume: false,
            max_days: None,
            vfs: Arc::new(RealFs),
        }
    }
}

/// True for I/O errors worth retrying: the next attempt may succeed
/// without anything changing on disk.
pub fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Runs `op`, retrying transient failures with exponential backoff.
/// Returns the value and the number of retries used, or the final error
/// and the retries exhausted on it.
pub fn with_retry<T>(
    cfg: &IngestConfig,
    mut op: impl FnMut() -> io::Result<T>,
) -> Result<(T, u32), (io::Error, u32)> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok((v, attempt)),
            Err(e) if is_transient(e.kind()) && attempt < cfg.max_retries => {
                std::thread::sleep(cfg.retry_backoff * 2u32.saturating_pow(attempt));
                attempt += 1;
            }
            Err(e) => return Err((e, attempt)),
        }
    }
}

/// Parses the leading `YYYY-MM-DD` of a file name.
pub fn day_from_filename(name: &str) -> Option<Day> {
    let b = name.as_bytes();
    if b.len() < 10 || b.get(4) != Some(&b'-') || b.get(7) != Some(&b'-') {
        return None;
    }
    let y: i32 = name.get(0..4)?.parse().ok()?;
    let m: u8 = name.get(5..7)?.parse().ok()?;
    let d: u8 = name.get(8..10)?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(Day::from_ymd(y, m, d))
}

/// Parses a day-log header: `# synthetic day YYYY-MM-DD: N unique ...`.
/// Returns `(day, declared_entry_count)`.
fn parse_header(line: &str) -> Option<(Day, usize)> {
    let rest = line.strip_prefix("# synthetic day ")?;
    let (date_s, tail) = rest.split_once(':')?;
    let day = day_from_filename(date_s.trim())?;
    let count: usize = tail.split_whitespace().next()?.parse().ok()?;
    Some((day, count))
}

/// What happened to one file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileOutcome {
    /// Parsed and ingested.
    Ingested,
    /// Satisfied from an existing checkpoint; the file was not read.
    FromCheckpoint,
    /// Read, but abandoned (truncation, budget, duplicate, mismatch).
    Failed,
    /// Never processed (run stopped first).
    Skipped,
}

/// Per-file ingestion health.
#[derive(Clone, Debug)]
pub struct FileReport {
    /// The file.
    pub path: PathBuf,
    /// The day the file contributes (from its name).
    pub day: Day,
    /// Data lines seen.
    pub data_lines: usize,
    /// Data lines rejected.
    pub bad_lines: usize,
    /// The outcome.
    pub outcome: FileOutcome,
    /// Every error attributed to this file.
    pub errors: Vec<IngestError>,
}

/// The result of a streaming ingestion run.
pub struct IngestReport {
    /// The census built from every ingested day.
    pub census: Census,
    /// Per-file health, in processing order.
    pub files: Vec<FileReport>,
    /// Calendar days between the first and last ingested day that were
    /// never ingested ([`IngestError::MissingDay`] for each).
    pub gaps: Vec<Day>,
    /// Stale `*.tmp` files deleted from the checkpoint directory before
    /// ingestion (leftovers of an aborted atomic write).
    pub stale_tmp_removed: u64,
}

impl IngestReport {
    /// All recorded errors across files plus the per-gap missing-day
    /// errors, in processing order.
    pub fn errors(&self) -> Vec<IngestError> {
        let mut out: Vec<IngestError> = self
            .files
            .iter()
            .flat_map(|f| f.errors.iter().cloned())
            .collect();
        out.extend(self.gaps.iter().map(|&day| IngestError::MissingDay { day }));
        out
    }

    /// The per-day ingest health report, one line per file plus gap and
    /// error sections.
    pub fn health_report(&self) -> String {
        let mut out = String::from("==== ingest health ====\n");
        let _ = writeln!(
            out,
            "{:<12} {:<28} {:<16} {:>8} {:>5}",
            "day", "file", "outcome", "lines", "bad"
        );
        for f in &self.files {
            let name = f
                .path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| f.path.display().to_string());
            let outcome = match f.outcome {
                FileOutcome::Ingested => "ingested",
                FileOutcome::FromCheckpoint => "checkpoint",
                FileOutcome::Failed => "FAILED",
                FileOutcome::Skipped => "skipped",
            };
            let _ = writeln!(
                out,
                "{:<12} {:<28} {:<16} {:>8} {:>5}",
                f.day.to_string(),
                name,
                outcome,
                f.data_lines,
                f.bad_lines
            );
        }
        if self.gaps.is_empty() {
            out.push_str("gaps: none\n");
        } else {
            let days: Vec<String> = self.gaps.iter().map(|d| d.to_string()).collect();
            let _ = writeln!(out, "gaps: {}", days.join(", "));
        }
        if self.stale_tmp_removed > 0 {
            let _ = writeln!(out, "stale tmp files removed: {}", self.stale_tmp_removed);
        }
        let errors = self.errors();
        let _ = writeln!(out, "errors: {}", errors.len());
        for e in &errors {
            let _ = writeln!(out, "  [{}] {e}", e.label());
        }
        out
    }
}

/// The parsed content of one day-log file.
struct FileParse {
    header_day: Option<Day>,
    declared: Option<usize>,
    trailer: Option<(usize, u64)>,
    entries: Vec<(Addr, u64)>,
    data_lines: usize,
    bad: Vec<IngestError>,
}

/// The census-independent result of reading and fully validating one day
/// file, produced by [`StreamIngestor::parse_file`] and consumed by
/// [`StreamIngestor::commit_parsed`]. The split exists so the supervised
/// engine can parse files in parallel while committing serially.
pub struct ParsedFile {
    /// Per-file health so far (the outcome can still change at commit
    /// time — e.g. a duplicate day rejected under the duplicate policy).
    pub report: FileReport,
    /// The validated day summary, `None` when the file failed validation.
    pub summary: Option<DaySummary>,
    /// Entries to checkpoint after a successful commit (`None` when the
    /// data came *from* a checkpoint, or validation failed).
    checkpoint_entries: Option<Vec<(Addr, u64)>>,
}

impl ParsedFile {
    /// Wraps a failed file report: nothing to commit or checkpoint.
    fn failed(report: FileReport) -> ParsedFile {
        ParsedFile {
            report,
            summary: None,
            checkpoint_entries: None,
        }
    }
}

/// Streaming, fault-tolerant ingestion over day-log files.
#[derive(Clone, Debug, Default)]
pub struct StreamIngestor {
    /// The configuration.
    pub cfg: IngestConfig,
}

impl StreamIngestor {
    /// Creates an ingestor.
    pub fn new(cfg: IngestConfig) -> StreamIngestor {
        StreamIngestor { cfg }
    }

    /// Ingests every `*.log`-style day file under `dir`, in day order.
    /// In lenient mode the `Err` arm is unreachable; in strict mode the
    /// first error aborts.
    pub fn ingest_dir(&self, dir: &Path) -> Result<IngestReport, IngestError> {
        let entries = self.cfg.vfs.read_dir(dir).map_err(|e| IngestError::Io {
            path: dir.to_path_buf(),
            kind: e.kind(),
            retries: 0,
            detail: e.to_string(),
        })?;
        let mut paths: Vec<(Day, PathBuf)> = Vec::new();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if let Some(day) = day_from_filename(&name) {
                paths.push((day, path));
            }
        }
        paths.sort();
        self.ingest_paths(paths.into_iter().map(|(_, p)| p).collect())
    }

    /// Ingests an explicit file list in the given order (the streaming
    /// case: late or out-of-order deliveries are detected, not assumed
    /// away by sorting).
    pub fn ingest_paths(&self, paths: Vec<PathBuf>) -> Result<IngestReport, IngestError> {
        let mut census = Census::new_empty();
        let mut files = Vec::new();
        let mut ingested_days: Vec<Day> = Vec::new();
        // Sweep aborted-write leftovers before resume can see them. A
        // failed sweep is not fatal — the stale files simply survive
        // until the next run.
        let stale_tmp_removed = match &self.cfg.checkpoint_dir {
            Some(dir) => sweep_stale_tmp(self.cfg.vfs.as_ref(), dir).unwrap_or(0),
            None => 0,
        };
        for path in paths {
            if self
                .cfg
                .max_days
                .is_some_and(|limit| ingested_days.len() >= limit)
            {
                let day = day_from_filename(
                    &path
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default(),
                )
                .unwrap_or(Day(0));
                files.push(FileReport {
                    path,
                    day,
                    data_lines: 0,
                    bad_lines: 0,
                    outcome: FileOutcome::Skipped,
                    errors: Vec::new(),
                });
                continue;
            }
            let report = self.ingest_one(&path, &mut census, &mut ingested_days)?;
            files.push(report);
        }
        let gaps = match (ingested_days.iter().min(), ingested_days.iter().max()) {
            (Some(&first), Some(&last)) => first
                .range_inclusive(last)
                .filter(|d| !census.has_day(*d))
                .collect(),
            _ => Vec::new(),
        };
        Ok(IngestReport {
            census,
            files,
            gaps,
            stale_tmp_removed,
        })
    }

    /// Processes one file end-to-end: checkpoint short-circuit, retrying
    /// read, validation, budget, duplicate policy, checkpoint write.
    fn ingest_one(
        &self,
        path: &Path,
        census: &mut Census,
        ingested_days: &mut Vec<Day>,
    ) -> Result<FileReport, IngestError> {
        let parsed = self.parse_file(path)?;
        self.commit_parsed(parsed, census, ingested_days)
    }

    /// The census-independent half of ingestion: reads and fully
    /// validates one file (checkpoint short-circuit, retrying read,
    /// header/budget/truncation checks). Parsing many files this way is
    /// embarrassingly parallel — the supervised engine runs one
    /// [`StreamIngestor::parse_file`] per work unit and then applies
    /// [`StreamIngestor::commit_parsed`] serially, in day order, so the
    /// resulting census is identical to a sequential ingest.
    pub fn parse_file(&self, path: &Path) -> Result<ParsedFile, IngestError> {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let file_day = match day_from_filename(&name) {
            Some(d) => d,
            None => {
                let e = IngestError::BadHeader {
                    path: path.to_path_buf(),
                    reason: format!("file name {name:?} has no YYYY-MM-DD date"),
                };
                return self
                    .fail(path, Day(0), 0, 0, vec![e])
                    .map(ParsedFile::failed);
            }
        };
        let mut report = FileReport {
            path: path.to_path_buf(),
            day: file_day,
            data_lines: 0,
            bad_lines: 0,
            outcome: FileOutcome::Ingested,
            errors: Vec::new(),
        };

        // Resume: an existing checkpoint for this day replaces the read.
        if self.cfg.resume {
            if let Some(dir) = &self.cfg.checkpoint_dir {
                let ckpt = checkpoint_path(dir, file_day);
                if self.cfg.vfs.exists(&ckpt) {
                    match load_checkpoint(self.cfg.vfs.as_ref(), &ckpt) {
                        Ok((day, entries)) => {
                            report.data_lines = entries.len();
                            report.outcome = FileOutcome::FromCheckpoint;
                            return Ok(ParsedFile {
                                summary: Some(DaySummary::from_entries(day, entries)),
                                report,
                                checkpoint_entries: None,
                            });
                        }
                        Err(e) => {
                            // A bad checkpoint falls through to re-reading
                            // the original file.
                            if self.cfg.mode == ErrorMode::Strict {
                                return Err(e);
                            }
                            report.errors.push(e);
                        }
                    }
                }
            }
        }

        let parse = match with_retry(&self.cfg, || self.read_and_parse(path)) {
            Ok((p, _retries)) => p,
            Err((e, retries)) => {
                let err = IngestError::Io {
                    path: path.to_path_buf(),
                    kind: e.kind(),
                    retries,
                    detail: e.to_string(),
                };
                return self
                    .fail(path, file_day, 0, 0, vec![err])
                    .map(ParsedFile::failed);
            }
        };
        report.data_lines = parse.data_lines;
        report.bad_lines = parse.bad.len();

        // Header validation.
        let Some(header_day) = parse.header_day else {
            let e = IngestError::BadHeader {
                path: path.to_path_buf(),
                reason: "missing or malformed `# synthetic day` header".into(),
            };
            return self
                .fail(path, file_day, parse.data_lines, parse.bad.len(), vec![e])
                .map(ParsedFile::failed);
        };
        if header_day != file_day {
            let e = IngestError::DayMismatch {
                path: path.to_path_buf(),
                file_day,
                header_day,
            };
            let mut errors = parse.bad.clone();
            errors.push(e);
            return self
                .fail(path, file_day, parse.data_lines, parse.bad.len(), errors)
                .map(ParsedFile::failed);
        }

        // Per-line errors count against the budget.
        if self.cfg.mode == ErrorMode::Strict {
            if let Some(e) = parse.bad.first() {
                return Err(e.clone());
            }
        }
        report.errors.extend(parse.bad.iter().cloned());
        if parse.data_lines > 0 {
            let ratio = parse.bad.len() as f64 / parse.data_lines as f64;
            if ratio > self.cfg.max_bad_ratio {
                let e = IngestError::ErrorBudgetExceeded {
                    path: path.to_path_buf(),
                    bad: parse.bad.len(),
                    total: parse.data_lines,
                    max_bad_ratio: self.cfg.max_bad_ratio,
                };
                report.errors.push(e.clone());
                report.outcome = FileOutcome::Failed;
                if self.cfg.mode == ErrorMode::Strict {
                    return Err(e);
                }
                return Ok(ParsedFile::failed(report));
            }
        }

        // Truncation: the trailer is authoritative; without one, the
        // header's declared count must be met.
        let truncated = match parse.trailer {
            Some((n, _hits)) => (parse.data_lines != n).then_some(n),
            None => {
                let declared = parse.declared.unwrap_or(0);
                (parse.data_lines < declared).then_some(declared)
            }
        };
        if let Some(expected) = truncated {
            let e = IngestError::Truncated {
                path: path.to_path_buf(),
                expected,
                got: parse.data_lines,
            };
            report.errors.push(e.clone());
            report.outcome = FileOutcome::Failed;
            if self.cfg.mode == ErrorMode::Strict {
                return Err(e);
            }
            return Ok(ParsedFile::failed(report));
        }

        let summary = DaySummary::from_entries(file_day, parse.entries.iter().copied());
        Ok(ParsedFile {
            report,
            summary: Some(summary),
            checkpoint_entries: Some(parse.entries),
        })
    }

    /// The shared-state half of ingestion: applies ordering/duplicate
    /// policy, enters the day into the census, and writes the checkpoint.
    /// Must be called in delivery order — it is the serial step of a
    /// supervised parallel ingest.
    pub fn commit_parsed(
        &self,
        parsed: ParsedFile,
        census: &mut Census,
        ingested_days: &mut Vec<Day>,
    ) -> Result<FileReport, IngestError> {
        let ParsedFile {
            mut report,
            summary,
            checkpoint_entries,
        } = parsed;
        let Some(summary) = summary else {
            return Ok(report);
        };
        let path = report.path.clone();
        let day = summary.day;
        let committed = self.commit(summary, &path, census, ingested_days, &mut report)?;
        if committed {
            if let (Some(entries), Some(dir)) = (&checkpoint_entries, &self.cfg.checkpoint_dir) {
                if let Err(e) = write_checkpoint(self.cfg.vfs.as_ref(), dir, day, entries) {
                    let err = IngestError::Io {
                        path: checkpoint_path(dir, day),
                        kind: e.kind(),
                        retries: 0,
                        detail: e.to_string(),
                    };
                    if self.cfg.mode == ErrorMode::Strict {
                        return Err(err);
                    }
                    report.errors.push(err);
                }
            }
        }
        Ok(report)
    }

    /// Applies ordering and duplicate policy, then ingests. Returns
    /// whether the day actually entered the census.
    fn commit(
        &self,
        summary: DaySummary,
        path: &Path,
        census: &mut Census,
        ingested_days: &mut Vec<Day>,
        report: &mut FileReport,
    ) -> Result<bool, IngestError> {
        let day = summary.day;
        if let Some(&last) = ingested_days.last() {
            if day < last && !census.has_day(day) {
                let e = IngestError::OutOfOrderDay { day, after: last };
                if self.cfg.mode == ErrorMode::Strict {
                    return Err(e);
                }
                // Late data is still data: record the anomaly, ingest it.
                report.errors.push(e);
            }
        }
        if census.has_day(day) {
            let e = IngestError::DuplicateDay {
                day,
                path: path.to_path_buf(),
            };
            if self.cfg.mode == ErrorMode::Strict {
                return Err(e);
            }
            report.errors.push(e);
            match self.cfg.on_duplicate {
                DuplicatePolicy::Reject => {
                    report.outcome = FileOutcome::Failed;
                    return Ok(false);
                }
                DuplicatePolicy::Merge => {
                    census.ingest_summary(summary);
                    return Ok(true);
                }
            }
        }
        census.ingest_summary(summary);
        ingested_days.push(day);
        Ok(true)
    }

    /// Builds a failed report, or aborts in strict mode.
    fn fail(
        &self,
        path: &Path,
        day: Day,
        data_lines: usize,
        bad_lines: usize,
        errors: Vec<IngestError>,
    ) -> Result<FileReport, IngestError> {
        if self.cfg.mode == ErrorMode::Strict {
            // fail() is always invoked with at least one error; if that
            // invariant ever broke we fall through to the lenient Failed
            // report rather than panicking mid-stream.
            if let Some(e) = errors.last() {
                return Err(e.clone());
            }
        }
        Ok(FileReport {
            path: path.to_path_buf(),
            day,
            data_lines,
            bad_lines,
            outcome: FileOutcome::Failed,
            errors,
        })
    }

    /// Reads one file line-by-line (bounded memory: one line buffered at
    /// a time) and parses header, data lines, and trailer.
    fn read_and_parse(&self, path: &Path) -> io::Result<FileParse> {
        let file = self.cfg.vfs.open_read(path)?;
        let mut reader = io::BufReader::new(file);
        let mut parse = FileParse {
            header_day: None,
            declared: None,
            trailer: None,
            entries: Vec::new(),
            data_lines: 0,
            bad: Vec::new(),
        };
        let mut buf = String::new();
        let mut line_no = 0usize;
        loop {
            buf.clear();
            if reader.read_line(&mut buf)? == 0 {
                break;
            }
            line_no += 1;
            let line = buf.trim_end_matches('\n');
            let t = line.trim();
            if t.is_empty() {
                continue;
            }
            if let Some(c) = t.strip_prefix('#') {
                if line_no == 1 {
                    if let Some((day, n)) = parse_header(t) {
                        parse.header_day = Some(day);
                        parse.declared = Some(n);
                    }
                } else if let Some(rest) = c.trim().strip_prefix("end ") {
                    let mut cols = rest.split_whitespace();
                    if let (Some(Ok(n)), Some(Ok(h))) = (
                        cols.next().map(str::parse::<usize>),
                        cols.next().map(str::parse::<u64>),
                    ) {
                        parse.trailer = Some((n, h));
                    }
                }
                continue;
            }
            parse.data_lines += 1;
            let mut cols = t.split_whitespace();
            let addr_s = cols.next().unwrap_or("");
            let addr = match addr_s.parse::<Addr>() {
                Ok(a) => a,
                Err(_) => {
                    parse.bad.push(IngestError::BadLine {
                        path: path.to_path_buf(),
                        line: line_no,
                        content: clip(t),
                        reason: "unparseable address".into(),
                    });
                    continue;
                }
            };
            let hits = match cols.next() {
                None => 1,
                Some(h) => match h.parse::<u64>() {
                    Ok(v) => v,
                    Err(_) => {
                        parse.bad.push(IngestError::BadLine {
                            path: path.to_path_buf(),
                            line: line_no,
                            content: clip(t),
                            reason: "unparseable hits column".into(),
                        });
                        continue;
                    }
                },
            };
            parse.entries.push((addr, hits));
        }
        Ok(parse)
    }
}

fn clip(s: &str) -> String {
    const MAX: usize = 60;
    if s.len() <= MAX {
        s.to_string()
    } else {
        let cut = (0..=MAX)
            .rev()
            .find(|&i| s.is_char_boundary(i))
            .unwrap_or(0);
        format!("{}…", &s[..cut])
    }
}

/// The checkpoint file for a day.
pub fn checkpoint_path(dir: &Path, day: Day) -> PathBuf {
    dir.join(format!("ckpt-{day}.tsv"))
}

/// Writes a per-day checkpoint atomically *and durably* (temp file +
/// fsync + rename via [`Vfs::write_atomic`]), so a crash mid-write
/// leaves either no checkpoint or a complete one — and a completed
/// write survives power loss, per the DESIGN.md persistence model.
pub fn write_checkpoint(
    fs: &dyn Vfs,
    dir: &Path,
    day: Day,
    entries: &[(Addr, u64)],
) -> io::Result<()> {
    fs.create_dir_all(dir)?;
    let hits: u64 = entries.iter().map(|&(_, h)| h).sum();
    let mut text = format!("# v6census checkpoint v1 {day} {} {hits}\n", entries.len());
    for (addr, h) in entries {
        let _ = writeln!(text, "{addr}\t{h}");
    }
    text.push_str("# end\n");
    fs.write_atomic(&checkpoint_path(dir, day), text.as_bytes())
}

/// Deletes stale `.{name}.tmp` leftovers an aborted atomic write can
/// leave under `dir`, returning how many were removed. A missing
/// directory is not an error (cold start). Finished artifacts are never
/// touched: only names matching [`vfs::is_stale_tmp`] qualify.
pub fn sweep_stale_tmp(fs: &dyn Vfs, dir: &Path) -> io::Result<u64> {
    let entries = match fs.read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut removed = 0u64;
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if vfs::is_stale_tmp(&name) {
            fs.remove_file(&path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Loads and validates a checkpoint written by [`write_checkpoint`].
pub fn load_checkpoint(fs: &dyn Vfs, path: &Path) -> Result<(Day, Vec<(Addr, u64)>), IngestError> {
    let bad = |reason: String| IngestError::BadCheckpoint {
        path: path.to_path_buf(),
        reason,
    };
    let text = fs.read_to_string(path).map_err(|e| IngestError::Io {
        path: path.to_path_buf(),
        kind: e.kind(),
        retries: 0,
        detail: e.to_string(),
    })?;
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| bad("empty file".into()))?;
    let rest = header
        .strip_prefix("# v6census checkpoint v1 ")
        .ok_or_else(|| bad("missing checkpoint header".into()))?;
    let mut cols = rest.split_whitespace();
    let day = cols
        .next()
        .and_then(day_from_filename)
        .ok_or_else(|| bad("bad checkpoint day".into()))?;
    let declared: usize = cols
        .next()
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| bad("bad entry count".into()))?;
    let declared_hits: u64 = cols
        .next()
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| bad("bad hit count".into()))?;
    let mut entries = Vec::with_capacity(declared);
    let mut ended = false;
    for line in lines {
        if line == "# end" {
            ended = true;
            break;
        }
        let (addr_s, hits_s) = line
            .split_once('\t')
            .ok_or_else(|| bad(format!("bad entry line {line:?}")))?;
        let addr: Addr = addr_s
            .parse()
            .map_err(|_| bad(format!("bad address {addr_s:?}")))?;
        let hits: u64 = hits_s
            .parse()
            .map_err(|_| bad(format!("bad hits {hits_s:?}")))?;
        entries.push((addr, hits));
    }
    if !ended {
        return Err(bad("missing end marker".into()));
    }
    if entries.len() != declared {
        return Err(bad(format!(
            "entry count mismatch: declared {declared}, got {}",
            entries.len()
        )));
    }
    let hits: u64 = entries.iter().map(|&(_, h)| h).sum();
    if hits != declared_hits {
        return Err(bad(format!(
            "hit total mismatch: declared {declared_hits}, got {hits}"
        )));
    }
    Ok((day, entries))
}

/// Groups a report's errors by variant label — the health-report rollup.
pub fn errors_by_label(errors: &[IngestError]) -> BTreeMap<&'static str, usize> {
    let mut out = BTreeMap::new();
    for e in errors {
        *out.entry(e.label()).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn filename_days() {
        assert_eq!(
            day_from_filename("2015-03-17.log"),
            Some(Day::from_ymd(2015, 3, 17))
        );
        assert_eq!(
            day_from_filename("2015-03-17"),
            Some(Day::from_ymd(2015, 3, 17))
        );
        assert!(day_from_filename("notes.txt").is_none());
        assert!(day_from_filename("2015-13-01.log").is_none());
        assert!(day_from_filename("20150317").is_none());
    }

    #[test]
    fn header_parses() {
        let (d, n) = parse_header("# synthetic day 2015-03-17: 1234 unique client addrs").unwrap();
        assert_eq!(d, Day::from_ymd(2015, 3, 17));
        assert_eq!(n, 1234);
        assert!(parse_header("# something else").is_none());
    }

    #[test]
    fn retry_survives_transient_errors() {
        let cfg = IngestConfig {
            max_retries: 3,
            retry_backoff: Duration::from_millis(1),
            ..IngestConfig::default()
        };
        let calls = AtomicU32::new(0);
        let (v, retries) = with_retry(&cfg, || {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
            } else {
                Ok(7)
            }
        })
        .unwrap();
        assert_eq!(v, 7);
        assert_eq!(retries, 2);
    }

    #[test]
    fn retry_gives_up_on_persistent_and_fatal_errors() {
        let cfg = IngestConfig {
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            ..IngestConfig::default()
        };
        let calls = AtomicU32::new(0);
        let (e, retries) = with_retry::<()>(&cfg, || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(io::Error::new(io::ErrorKind::TimedOut, "still down"))
        })
        .unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
        assert_eq!(retries, 2);
        assert_eq!(calls.load(Ordering::SeqCst), 3, "initial try + 2 retries");
        // Non-transient errors never retry.
        let calls = AtomicU32::new(0);
        let (e, retries) = with_retry::<()>(&cfg, || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(io::Error::new(io::ErrorKind::NotFound, "gone"))
        })
        .unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::NotFound);
        assert_eq!(retries, 0);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn checkpoint_roundtrip_and_validation() {
        let dir =
            std::env::temp_dir().join(format!("v6census-ckpt-{}-{}", std::process::id(), line!()));
        let _ = std::fs::remove_dir_all(&dir);
        let day = Day::from_ymd(2015, 3, 17);
        let entries: Vec<(Addr, u64)> = vec![
            ("2001:db8::1".parse().unwrap(), 3),
            ("2001:db8::2".parse().unwrap(), 9),
        ];
        write_checkpoint(&RealFs, &dir, day, &entries).unwrap();
        let (d, back) = load_checkpoint(&RealFs, &checkpoint_path(&dir, day)).unwrap();
        assert_eq!(d, day);
        assert_eq!(back, entries);
        // Tampering is detected.
        let path = checkpoint_path(&dir, day);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("# end\n", "")).unwrap();
        let e = load_checkpoint(&RealFs, &path).unwrap_err();
        assert_eq!(e.label(), "bad-checkpoint");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_sweep_removes_only_aborted_artifacts() {
        let dir =
            std::env::temp_dir().join(format!("v6census-sweep-{}-{}", std::process::id(), line!()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let day = Day::from_ymd(2015, 3, 17);
        write_checkpoint(&RealFs, &dir, day, &[("2001:db8::1".parse().unwrap(), 1)]).unwrap();
        std::fs::write(dir.join(".ckpt-2015-03-18.tsv.tmp"), "torn").unwrap();
        std::fs::write(dir.join(".journal.v1.tmp"), "torn").unwrap();
        assert_eq!(sweep_stale_tmp(&RealFs, &dir).unwrap(), 2);
        assert!(checkpoint_path(&dir, day).exists(), "real artifact kept");
        assert!(!dir.join(".journal.v1.tmp").exists());
        // Idempotent; missing directory is a no-op, not an error.
        assert_eq!(sweep_stale_tmp(&RealFs, &dir).unwrap(), 0);
        assert_eq!(sweep_stale_tmp(&RealFs, &dir.join("nope")).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_labels_and_display() {
        let e = IngestError::Truncated {
            path: PathBuf::from("x.log"),
            expected: 10,
            got: 7,
        };
        assert_eq!(e.label(), "truncated");
        assert!(e.to_string().contains("expected 10"));
        let grouped = errors_by_label(&[
            e.clone(),
            IngestError::MissingDay {
                day: Day::from_ymd(2015, 3, 17),
            },
            e,
        ]);
        assert_eq!(grouped["truncated"], 2);
        assert_eq!(grouped["missing-day"], 1);
    }

    #[test]
    fn clip_respects_char_boundaries() {
        let s = "é".repeat(100);
        let c = clip(&s);
        assert!(c.ends_with('…'));
        assert!(c.len() <= 64);
        assert_eq!(clip("short"), "short");
    }
}
