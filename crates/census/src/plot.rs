//! Terminal and file renderers for the paper's figures: ASCII plots for
//! quick inspection, TSV for gnuplot-grade reproduction.

use crate::figures::{MraFigure, PopulationFigure, StabilityFigure};
use std::fmt::Write as _;
use v6census_core::spatial::MraResolution;

/// Renders an MRA figure as an ASCII plot: x = prefix length 0..128,
/// y = aggregate count ratio on a log2 scale (1 to 65536), one glyph per
/// resolution (`.` bits, `o` nybbles, `#` 16-bit segments), matching the
/// paper's axes.
pub fn ascii_mra(fig: &MraFigure) -> String {
    const WIDTH: usize = 64; // 2 bits per column
    const HEIGHT: usize = 17; // log2 ratio 0..=16
    let mut grid = vec![vec![' '; WIDTH + 1]; HEIGHT];
    let mut put = |p: u8, ratio: f64, glyph: char| {
        let x = (p as usize * WIDTH) / 128;
        let y = ratio.max(1.0).log2().round() as usize;
        let y = HEIGHT - 1 - y.min(HEIGHT - 1);
        // Don't let coarse glyphs obscure finer ones already placed.
        if grid[y][x] == ' ' {
            grid[y][x] = glyph;
        }
    };
    for (res, curve) in &fig.curves {
        let glyph = match res {
            MraResolution::SingleBit => '.',
            MraResolution::Nybble => 'o',
            MraResolution::Byte => '+',
            MraResolution::Segment16 => '#',
        };
        for &(p, r) in curve {
            put(p, r, glyph);
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} — {} addrs (common prefix /{})",
        fig.title, fig.total, fig.common_prefix
    );
    for (i, row) in grid.iter().enumerate() {
        let label = 1u64 << (HEIGHT - 1 - i);
        let _ = writeln!(out, "{label:>6} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "       +{}", "-".repeat(WIDTH + 1));
    let _ = writeln!(
        out,
        "        0       16      32      48      64      80      96      112     128"
    );
    let _ = writeln!(
        out,
        "        [# 16-bit segments, o 4-bit segments, . single bits]"
    );
    out
}

/// Emits an MRA figure as TSV: `p  gamma16  gamma4  gamma1` per row
/// (empty cells where a resolution has no point at p).
pub fn tsv_mra(fig: &MraFigure) -> String {
    let mut out = String::from("# prefix_len\tgamma16\tgamma4\tgamma1\n");
    let col = |res: MraResolution, p: u8| -> String {
        fig.curve(res)
            .and_then(|c| c.iter().find(|&&(q, _)| q == p))
            .map(|&(_, r)| format!("{r:.6}"))
            .unwrap_or_default()
    };
    for p in 0..128u8 {
        let g16 = col(MraResolution::Segment16, p);
        let g4 = col(MraResolution::Nybble, p);
        let g1 = col(MraResolution::SingleBit, p);
        if !(g16.is_empty() && g4.is_empty() && g1.is_empty()) {
            let _ = writeln!(out, "{p}\t{g16}\t{g4}\t{g1}");
        }
    }
    out
}

/// Renders a CCDF family as an ASCII log-log plot.
pub fn ascii_ccdf(fig: &PopulationFigure) -> String {
    const WIDTH: usize = 60;
    const HEIGHT: usize = 13; // decades 10^0 .. 10^-6 at half steps
    let max_x: f64 = fig
        .series
        .iter()
        .map(|(_, c)| c.max() as f64)
        .fold(1.0, f64::max);
    let mut grid = vec![vec![' '; WIDTH + 1]; HEIGHT];
    for (i, (_, ccdf)) in fig.series.iter().enumerate() {
        let glyph = char::from(b'a' + (i as u8 % 26));
        for (x, prop) in ccdf.steps() {
            if prop <= 0.0 {
                continue;
            }
            let fx = (x as f64).max(1.0).log10() / max_x.log10().max(1e-9);
            let gx = ((fx * WIDTH as f64).round() as usize).min(WIDTH);
            let fy = (-prop.log10()).clamp(0.0, 6.0) / 6.0;
            let gy = ((fy * (HEIGHT - 1) as f64).round() as usize).min(HEIGHT - 1);
            if grid[gy][gx] == ' ' {
                grid[gy][gx] = glyph;
            }
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let exp = -(i as f64) * 6.0 / (HEIGHT - 1) as f64;
        let _ = writeln!(out, "1e{exp:>5.1} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "        +{}", "-".repeat(WIDTH + 1));
    let _ = writeln!(out, "         1 .. {max_x:.0} (log scale)");
    for (i, (label, _)) in fig.series.iter().enumerate() {
        let glyph = char::from(b'a' + (i as u8 % 26));
        let _ = writeln!(out, "         {glyph} = {label}");
    }
    out
}

/// Emits a CCDF family as TSV: `series  x  proportion`.
pub fn tsv_ccdf(fig: &PopulationFigure) -> String {
    let mut out = String::from("# series\tx\tproportion\n");
    for (label, ccdf) in &fig.series {
        for (x, p) in ccdf.steps() {
            let _ = writeln!(out, "{label}\t{x}\t{p:.9}");
        }
    }
    out
}

/// Emits a stability figure (Figure 4) as TSV:
/// `day  active  overlap_refA  overlap_refB`.
pub fn tsv_stability(fig: &StabilityFigure) -> String {
    let mut out = format!(
        "# day\tactive\toverlap_{}\toverlap_{}\n",
        fig.references.0, fig.references.1
    );
    for i in 0..fig.days.len() {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}",
            fig.days[i].md_label(),
            fig.active[i],
            fig.ref_a[i],
            fig.ref_b[i]
        );
    }
    out
}

/// Renders a stability figure as an ASCII bar series.
pub fn ascii_stability(fig: &StabilityFigure) -> String {
    const WIDTH: usize = 50;
    let max = fig.active.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "active per day (█), ∩ {} (▒), ∩ {} (░)",
        fig.references.0.md_label(),
        fig.references.1.md_label()
    );
    for i in 0..fig.days.len() {
        let bars = |v: usize| (v * WIDTH) / max;
        let _ = writeln!(
            out,
            "{} |{:<width$}| {}",
            fig.days[i].md_label(),
            format!("{}{}", "█".repeat(bars(fig.active[i])), ""),
            fig.active[i],
            width = WIDTH
        );
        let _ = writeln!(
            out,
            "       |{:<width$}| a:{} b:{}",
            format!(
                "{}{}",
                "▒".repeat(bars(fig.ref_a[i])),
                "░".repeat(bars(fig.ref_b[i]).saturating_sub(bars(fig.ref_a[i])))
            ),
            fig.ref_a[i],
            fig.ref_b[i],
            width = WIDTH
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{MraFigure, PopulationFigure};
    use v6census_addr::Addr;
    use v6census_core::spatial::Ccdf;
    use v6census_core::temporal::{DailyObservations, Day};
    use v6census_trie::AddrSet;

    fn sample_set() -> AddrSet {
        AddrSet::from_iter((0..64u128).map(|i| Addr((0x2001_0db8u128 << 96) | (i << 64) | (i * 7))))
    }

    #[test]
    fn ascii_mra_contains_axes_and_glyphs() {
        let fig = MraFigure::of("test", &sample_set());
        let s = ascii_mra(&fig);
        assert!(s.contains("test — 64 addrs"));
        assert!(s.contains('#'));
        assert!(s.contains('.'));
        assert!(s.contains("128"));
    }

    #[test]
    fn tsv_mra_rows_parse_back() {
        let fig = MraFigure::of("test", &sample_set());
        let tsv = tsv_mra(&fig);
        let mut rows = 0;
        for line in tsv.lines().skip(1) {
            let cols: Vec<&str> = line.split('\t').collect();
            assert_eq!(cols.len(), 4);
            let p: u8 = cols[0].parse().unwrap();
            assert!(p < 128);
            rows += 1;
        }
        assert_eq!(rows, 128, "every bit position has a gamma1 value");
    }

    #[test]
    fn ccdf_renders() {
        let fig = PopulationFigure {
            series: vec![
                ("a-series".into(), Ccdf::new(vec![1, 2, 3, 100])),
                ("b-series".into(), Ccdf::new(vec![5, 5, 5])),
            ],
        };
        let s = ascii_ccdf(&fig);
        assert!(s.contains("a = a-series"));
        let tsv = tsv_ccdf(&fig);
        assert!(tsv.lines().count() > 4);
    }

    #[test]
    fn stability_renders() {
        let mut obs = DailyObservations::new();
        let d = Day::from_ymd(2015, 3, 17);
        let set = AddrSet::from_iter([Addr(1), Addr(2)]);
        obs.record(d, set.clone());
        obs.record(d + 1, set);
        let fig = crate::figures::StabilityFigure::of(&obs, d, d + 1);
        let tsv = tsv_stability(&fig);
        assert!(tsv.contains("Mar-17"));
        let ascii = ascii_stability(&fig);
        assert!(ascii.contains("Mar-18"));
    }
}
