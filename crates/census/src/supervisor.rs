//! Supervised parallel execution of the analysis pipeline.
//!
//! The paper's measurement ran for years over a planetary CDN; at that
//! scale the question is not *whether* an analysis shard will misbehave
//! but *what the run does when it does*. This module runs the census
//! pipeline as a sequence of stages, each a set of independent work
//! units executed on a scoped pool of worker threads, under four
//! guarantees:
//!
//! * **Panic isolation** — every unit runs under `catch_unwind`. A
//!   poisoned shard is retried once on a fresh worker; if it dies again
//!   it is *excluded and recorded*, never allowed to abort the run.
//! * **Deadlines** — each stage has an optional wall-clock deadline. On
//!   expiry the collector flips the shared cancellation token, abandons
//!   hung workers (they are detached threads; a stuck unit cannot hold
//!   the run hostage), and records which units timed out vs. never ran.
//! * **Resource budgets** — units receive a [`UnitCtx`] carrying the
//!   trie node budget; a densify unit that hits the cap degrades to a
//!   coarser aggregation level ([`v6census_trie::RadixTree::densify_budgeted`])
//!   and reports that it did.
//! * **Degraded-mode results** — every stage yields a [`StageReport`],
//!   rolled into a [`RunManifest`]; every analysis product is an
//!   [`Annotated`] value on the `Exact ≥ Degraded ≥ Partial` lattice, so
//!   a reader can always tell what a number cost to produce.
//!
//! Determinism: work decomposition is fixed (per day file for ingest,
//! per 16-bit address segment for densify) regardless of `--jobs`;
//! results are collected by unit index and committed serially in day
//! order. A clean run at `--jobs=8` is byte-identical to `--jobs=1`.

use crate::ingest::Census;
use crate::stream::{
    FileOutcome, FileReport, IngestConfig, IngestError, IngestReport, ParsedFile, StreamIngestor,
};
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};
use std::time::{Duration, Instant};
use v6census_addr::Addr;
use v6census_core::quality::{Annotated, Quality};
use v6census_core::temporal::{Day, GapPolicy, StabilityParams, StabilityVerdict};
use v6census_synth::AnalysisFaultPlan;
use v6census_trie::{DensePrefix, RadixTree};

/// Worker threads are named with this prefix so the process-wide panic
/// hook can tell a *contained* (supervised) panic from a real one and
/// keep the former off stderr.
const WORKER_PREFIX: &str = "v6c-sup-";

/// How the supervised engine runs stages.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Worker threads per stage (at least 1; clamped to the unit count).
    pub jobs: usize,
    /// Wall-clock deadline applied to each stage, `None` for no limit.
    pub stage_deadline: Option<Duration>,
    /// Trie node budget per work unit (0 = unlimited); densify units
    /// degrade to coarser aggregation rather than exceed it.
    pub max_trie_nodes: usize,
    /// Injected analysis faults (empty outside tests and drills).
    pub faults: AnalysisFaultPlan,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            jobs: 1,
            stage_deadline: None,
            max_trie_nodes: 0,
            faults: AnalysisFaultPlan::none(),
        }
    }
}

/// Per-attempt context handed to a work unit: the cancellation token and
/// the accounting the unit reports back through.
pub struct UnitCtx {
    cancel: Arc<AtomicBool>,
    degraded: Mutex<Vec<String>>,
    trie_nodes: AtomicUsize,
}

impl UnitCtx {
    fn new(cancel: Arc<AtomicBool>) -> UnitCtx {
        UnitCtx {
            cancel,
            degraded: Mutex::new(Vec::new()),
            trie_nodes: AtomicUsize::new(0),
        }
    }

    /// True once the stage deadline expired; cooperative units check
    /// this at loop boundaries and return early.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Records that this unit produced a degraded (coarser, but still
    /// correct) result, and why.
    pub fn degrade(&self, note: impl Into<String>) {
        lock(&self.degraded).push(note.into());
    }

    /// Records a trie-size observation; the per-unit peak is kept.
    pub fn record_trie_nodes(&self, nodes: usize) {
        self.trie_nodes.fetch_max(nodes, Ordering::Relaxed);
    }
}

/// One independent piece of a stage's work.
pub struct Unit<T> {
    /// Stable label, e.g. `ingest/2015-03-17` or `densify/2001` — the
    /// name fault injection patterns and manifests match against.
    pub label: String,
    work: Box<dyn Fn(&UnitCtx) -> T + Send + Sync>,
}

impl<T> Unit<T> {
    /// Creates a unit. `work` may run more than once (panic retry), so
    /// it must be a `Fn`, not a `FnOnce`.
    pub fn new(
        label: impl Into<String>,
        work: impl Fn(&UnitCtx) -> T + Send + Sync + 'static,
    ) -> Unit<T> {
        Unit {
            label: label.into(),
            work: Box::new(work),
        }
    }
}

/// What finally happened to one work unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnitStatus {
    /// Completed; `attempts` is the total tries used (1 = clean).
    Ok {
        /// Attempts used, including the successful one.
        attempts: u32,
    },
    /// Panicked on every allowed attempt; excluded from the results.
    Excluded {
        /// The panic message of the final attempt.
        reason: String,
    },
    /// Was still running when the stage deadline expired.
    TimedOut,
    /// Never started (deadline expired while it was queued, possibly
    /// awaiting a retry).
    Cancelled,
}

impl UnitStatus {
    /// A stable short label, used in manifests and tests.
    pub fn label(&self) -> &'static str {
        match self {
            UnitStatus::Ok { .. } => "ok",
            UnitStatus::Excluded { .. } => "excluded",
            UnitStatus::TimedOut => "timed-out",
            UnitStatus::Cancelled => "cancelled",
        }
    }
}

/// The manifest entry for one unit.
#[derive(Clone, Debug)]
pub struct UnitReport {
    /// The unit's label.
    pub label: String,
    /// What happened to it.
    pub status: UnitStatus,
    /// Degradation notes the unit recorded.
    pub degraded: Vec<String>,
    /// Peak trie node count the unit observed.
    pub trie_nodes: usize,
}

/// What one stage did: the per-unit outcomes plus stage-level accounting.
#[derive(Clone, Debug)]
pub struct StageReport {
    /// The stage name.
    pub stage: String,
    /// One report per unit, in unit order.
    pub units: Vec<UnitReport>,
    /// Stage wall time in milliseconds (not deterministic; excluded from
    /// [`StageReport::equivalence_key`]).
    pub wall_millis: u64,
    /// True when the stage deadline expired.
    pub deadline_expired: bool,
}

impl StageReport {
    /// Units that completed.
    pub fn ok(&self) -> usize {
        self.units
            .iter()
            .filter(|u| matches!(u.status, UnitStatus::Ok { .. }))
            .count()
    }

    /// Units that needed more than one attempt (recovered or excluded).
    pub fn retried(&self) -> usize {
        self.units
            .iter()
            .filter(|u| {
                matches!(u.status, UnitStatus::Ok { attempts } if attempts > 1)
                    || matches!(u.status, UnitStatus::Excluded { .. })
            })
            .count()
    }

    /// Labels of units excluded after exhausting retries.
    pub fn excluded(&self) -> Vec<&UnitReport> {
        self.units
            .iter()
            .filter(|u| matches!(u.status, UnitStatus::Excluded { .. }))
            .collect()
    }

    /// Labels of units lost to the deadline (timed out or cancelled).
    pub fn lost_to_deadline(&self) -> Vec<&UnitReport> {
        self.units
            .iter()
            .filter(|u| matches!(u.status, UnitStatus::TimedOut | UnitStatus::Cancelled))
            .collect()
    }

    /// Units that recorded a degraded (budget-capped) result.
    pub fn degraded(&self) -> usize {
        self.units.iter().filter(|u| !u.degraded.is_empty()).count()
    }

    /// Peak trie node count across units.
    pub fn peak_trie_nodes(&self) -> usize {
        self.units.iter().map(|u| u.trie_nodes).max().unwrap_or(0)
    }

    /// The stage's position on the quality lattice: `Partial` when any
    /// unit's output is missing, `Degraded` when all completed but some
    /// under a budget, `Exact` otherwise.
    pub fn quality(&self) -> Quality {
        let mut q = Quality::Exact;
        for u in &self.units {
            q = q.meet(match u.status {
                UnitStatus::Ok { .. } if u.degraded.is_empty() => Quality::Exact,
                UnitStatus::Ok { .. } => Quality::Degraded,
                _ => Quality::Partial,
            });
        }
        q
    }

    /// Everything deterministic about the stage — the unit labels and
    /// outcomes, but not wall time — for asserting that runs at
    /// different `--jobs` settings are equivalent.
    pub fn equivalence_key(&self) -> String {
        let mut out = format!("{}:", self.stage);
        for u in &self.units {
            out.push_str(&format!(" {}={}", u.label, u.status.label()));
            if !u.degraded.is_empty() {
                out.push_str("(degraded)");
            }
        }
        out
    }
}

/// The run-level roll-up of every stage, extending the ingest pipeline's
/// `VerdictQuality` idea to the whole analysis: outputs are `Exact`,
/// `Degraded`, or `Partial`, with the evidence attached.
#[derive(Clone, Debug, Default)]
pub struct RunManifest {
    /// Worker threads used.
    pub jobs: usize,
    /// Per-stage reports, in execution order.
    pub stages: Vec<StageReport>,
}

impl RunManifest {
    /// The worst stage quality (Exact when there are no stages).
    pub fn quality(&self) -> Quality {
        Quality::meet_all(self.stages.iter().map(|s| s.quality()))
    }

    /// The deterministic projection of the whole manifest; equal across
    /// `--jobs` settings for a given input.
    pub fn equivalence_key(&self) -> String {
        let keys: Vec<String> = self.stages.iter().map(|s| s.equivalence_key()).collect();
        keys.join("\n")
    }

    /// Renders the `==== run manifest ====` report section. Wall times
    /// make this section legitimately nondeterministic; it is emitted
    /// *before* the analysis section, which stays a pure function of the
    /// ingested data.
    pub fn render(&self) -> String {
        self.render_opts(true)
    }

    /// Renders the manifest without its execution details — the
    /// wall-time column becomes `-` and the `jobs:` line is omitted —
    /// leaving only what was computed, not how. This makes the section
    /// (and therefore the whole census report) a pure function of the
    /// ingested data: `v6census census --no-timings` output is
    /// byte-identical across reruns and `--jobs` settings, which CI
    /// asserts with a plain `diff`.
    pub fn render_stable(&self) -> String {
        self.render_opts(false)
    }

    fn render_opts(&self, timings: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("==== run manifest ====\n");
        if timings {
            let _ = writeln!(out, "jobs: {}", self.jobs);
        }
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>5} {:>7} {:>8} {:>9} {:>8} {:>9} {:>8}",
            "stage",
            "units",
            "ok",
            "retried",
            "excluded",
            "timed-out",
            "degraded",
            "peak-trie",
            "wall"
        );
        for s in &self.stages {
            let lost = s.lost_to_deadline();
            let timed_out = lost
                .iter()
                .filter(|u| u.status == UnitStatus::TimedOut)
                .count();
            let wall = if timings {
                format!("{}ms", s.wall_millis)
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "{:<12} {:>5} {:>5} {:>7} {:>8} {:>9} {:>8} {:>9} {:>8}",
                s.stage,
                s.units.len(),
                s.ok(),
                s.retried(),
                s.excluded().len(),
                timed_out,
                s.degraded(),
                s.peak_trie_nodes(),
                wall,
            );
        }
        // Unit labels are stage-prefixed by convention (`stability/2015-03-17`),
        // so casualty lines print the label alone.
        for s in &self.stages {
            for u in s.excluded() {
                let UnitStatus::Excluded { reason } = &u.status else {
                    continue;
                };
                let _ = writeln!(out, "  excluded {}: {}", u.label, reason);
            }
            for u in s.lost_to_deadline() {
                let _ = writeln!(out, "  {} {} at stage deadline", u.status.label(), u.label);
            }
            for u in &s.units {
                for note in &u.degraded {
                    let _ = writeln!(out, "  degraded {}: {}", u.label, note);
                }
            }
        }
        let _ = writeln!(out, "quality: {}", self.quality());
        out
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Locks a mutex, surviving poisoning: supervised panics happen inside
/// `catch_unwind`, never while holding these locks, but the engine must
/// not amplify a contained panic into an abort either way.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A closable work queue: workers block on `pop` until a job arrives or
/// the collector closes the queue. Closable (rather than
/// drop-the-sender) because a retry can re-enqueue work after the queue
/// momentarily ran dry, and workers must not exit in that window.
struct JobQueue {
    state: Mutex<(std::collections::VecDeque<(usize, u32)>, bool)>,
    cv: Condvar,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new((std::collections::VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, job: (usize, u32)) {
        lock(&self.state).0.push_back(job);
        self.cv.notify_one();
    }

    fn close(&self) {
        lock(&self.state).1 = true;
        self.cv.notify_all();
    }

    fn pop(&self) -> Option<(usize, u32)> {
        let mut g = lock(&self.state);
        loop {
            if let Some(job) = g.0.pop_front() {
                return Some(job);
            }
            if g.1 {
                return None;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Turns a panic payload into a human-readable reason.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Installs (once per process) a panic hook that suppresses the default
/// stderr backtrace for panics on supervisor worker threads — those are
/// *contained* and reported through the manifest — while delegating
/// every other panic to the previously installed hook.
fn silence_supervised_panics() {
    static SILENCE: Once = Once::new();
    SILENCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let supervised = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_PREFIX));
            if !supervised {
                prev(info);
            }
        }));
    });
}

const STATE_PENDING: u8 = 0;
const STATE_RUNNING: u8 = 1;
const STATE_DONE: u8 = 2;

struct Done<T> {
    idx: usize,
    attempt: u32,
    result: Result<T, String>,
    degraded: Vec<String>,
    trie_nodes: usize,
}

/// Runs one stage: executes `units` on up to `cfg.jobs` workers with
/// panic isolation, one retry per panicked unit, and the stage deadline.
/// Returns the per-unit results (by unit index; `None` for units whose
/// output is missing) and the stage report.
pub fn run_stage<T: Send + 'static>(
    stage: impl Into<String>,
    units: Vec<Unit<T>>,
    cfg: &SupervisorConfig,
) -> (Vec<Option<T>>, StageReport) {
    let stage = stage.into();
    // lint: allow(L002, reason = "wall-clock stage duration feeds operator-facing StageReport timing only; equivalence_key and product tables never read it")
    let start = Instant::now();
    let n = units.len();
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut reports: Vec<UnitReport> = units
        .iter()
        .map(|u| UnitReport {
            label: u.label.clone(),
            status: UnitStatus::Cancelled,
            degraded: Vec::new(),
            trie_nodes: 0,
        })
        .collect();
    if n == 0 {
        return (
            results,
            StageReport {
                stage,
                units: reports,
                wall_millis: 0,
                deadline_expired: false,
            },
        );
    }

    silence_supervised_panics();

    let jobs = cfg.jobs.max(1).min(n);
    let queue = Arc::new(JobQueue::new());
    for i in 0..n {
        queue.push((i, 0));
    }
    let cancel = Arc::new(AtomicBool::new(false));
    let states: Arc<Vec<AtomicU8>> =
        Arc::new((0..n).map(|_| AtomicU8::new(STATE_PENDING)).collect());
    let units = Arc::new(units);
    // Bounded: workers block once `2 × jobs` results await collection,
    // so a fast stage cannot buffer its whole output ahead of the
    // (serial) collector — backpressure, not an unbounded queue.
    let (tx, rx) = mpsc::sync_channel::<Done<T>>(jobs * 2);

    let mut handles = Vec::with_capacity(jobs);
    for w in 0..jobs {
        let queue = Arc::clone(&queue);
        let cancel = Arc::clone(&cancel);
        let states = Arc::clone(&states);
        let units = Arc::clone(&units);
        let tx = tx.clone();
        let faults = cfg.faults.clone();
        // Detached on purpose: a hung unit must be abandonable. A scoped
        // pool would make the whole stage block on its slowest thread.
        let spawned = std::thread::Builder::new()
            .name(format!("{WORKER_PREFIX}{w}"))
            .spawn(move || {
                while let Some((idx, attempt)) = queue.pop() {
                    states[idx].store(STATE_RUNNING, Ordering::SeqCst);
                    let ctx = UnitCtx::new(Arc::clone(&cancel));
                    let label = units[idx].label.clone();
                    let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                        faults.trip(&label, attempt);
                        (units[idx].work)(&ctx)
                    }));
                    states[idx].store(STATE_DONE, Ordering::SeqCst);
                    let done = Done {
                        idx,
                        attempt,
                        result: caught.map_err(panic_message),
                        degraded: std::mem::take(&mut *lock(&ctx.degraded)),
                        trie_nodes: ctx.trie_nodes.load(Ordering::Relaxed),
                    };
                    // A send error means the collector gave up (deadline);
                    // nothing left to do but exit.
                    if tx.send(done).is_err() {
                        break;
                    }
                }
            });
        match spawned {
            Ok(h) => handles.push(h),
            // Could not spawn a worker (resource exhaustion). The units
            // already queued will be drained by the workers that did
            // start; with zero workers the deadline path reports below.
            Err(_) => break,
        }
    }
    drop(tx);

    let mut settled = vec![false; n];
    let mut n_settled = 0usize;
    let mut deadline_expired = false;
    while n_settled < n {
        let wait = match cfg.stage_deadline {
            Some(d) => match d.checked_sub(start.elapsed()) {
                Some(remaining) => remaining,
                None => {
                    deadline_expired = true;
                    break;
                }
            },
            // No deadline: wake periodically so a zero-worker stage (all
            // spawns failed) cannot hang the collector forever.
            None => Duration::from_millis(500),
        };
        match rx.recv_timeout(wait) {
            Ok(done) => {
                if settled[done.idx] {
                    continue; // late duplicate (cannot happen, but harmless)
                }
                match done.result {
                    Ok(value) => {
                        results[done.idx] = Some(value);
                        reports[done.idx].status = UnitStatus::Ok {
                            attempts: done.attempt + 1,
                        };
                        reports[done.idx].degraded = done.degraded;
                        reports[done.idx].trie_nodes = done.trie_nodes;
                        settled[done.idx] = true;
                        n_settled += 1;
                    }
                    Err(reason) => {
                        if done.attempt == 0 {
                            // One retry on a fresh attempt.
                            states[done.idx].store(STATE_PENDING, Ordering::SeqCst);
                            queue.push((done.idx, 1));
                        } else {
                            reports[done.idx].status = UnitStatus::Excluded { reason };
                            settled[done.idx] = true;
                            n_settled += 1;
                        }
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if cfg.stage_deadline.is_some_and(|d| start.elapsed() >= d) {
                    deadline_expired = true;
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    if deadline_expired {
        // Cooperative cancellation for units that poll, abandonment for
        // those that don't.
        cancel.store(true, Ordering::SeqCst);
    }
    queue.close();
    if !deadline_expired {
        // Clean path: every unit settled, so every send was consumed and
        // each worker is at (or heading for) its queue-closed exit. Join
        // so no worker still holds references (e.g. to a shared census)
        // after the stage returns. Never joined on the deadline path —
        // that is exactly when a worker may be hung.
        for h in handles {
            let _ = h.join();
        }
    }

    // Classify what the deadline left behind: a unit observed RUNNING
    // was abandoned mid-flight (timed out); one still PENDING never ran.
    for i in 0..n {
        if settled[i] {
            continue;
        }
        reports[i].status = match states[i].load(Ordering::SeqCst) {
            STATE_RUNNING => UnitStatus::TimedOut,
            STATE_DONE => UnitStatus::TimedOut, // result in flight; drained below
            _ => UnitStatus::Cancelled,
        };
    }
    // Grace drain: results that finished in the race window between the
    // deadline firing and the queue closing still count.
    while let Ok(done) = rx.try_recv() {
        if settled[done.idx] {
            continue;
        }
        if let Ok(value) = done.result {
            results[done.idx] = Some(value);
            reports[done.idx].status = UnitStatus::Ok {
                attempts: done.attempt + 1,
            };
            reports[done.idx].degraded = done.degraded;
            reports[done.idx].trie_nodes = done.trie_nodes;
            settled[done.idx] = true;
        }
    }

    let report = StageReport {
        stage,
        units: reports,
        wall_millis: start.elapsed().as_millis() as u64,
        deadline_expired,
    };
    (results, report)
}

// ---------------------------------------------------------------------------
// The supervised census pipeline
// ---------------------------------------------------------------------------

/// Full configuration of a supervised census run.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Streaming-ingestion configuration (error budget, checkpoints…).
    pub ingest: IngestConfig,
    /// Supervision configuration (jobs, deadlines, budgets, faults).
    pub supervisor: SupervisorConfig,
    /// nd-stability parameters for the stability stage.
    pub params: StabilityParams,
    /// Reference day; `None` picks the middle ingested day.
    pub reference: Option<Day>,
    /// Gap policy for the stability stage.
    pub gap_policy: GapPolicy,
    /// Density class numerator *n* for the densify stage.
    pub dense_n: u64,
    /// Density class prefix length *p* for the densify stage.
    pub dense_p: u8,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            ingest: IngestConfig::default(),
            supervisor: SupervisorConfig::default(),
            params: StabilityParams::nd(3),
            reference: None,
            gap_policy: GapPolicy::Widen { max_extra: 7 },
            dense_n: 8,
            dense_p: 64,
        }
    }
}

/// Everything a supervised census run produced: the ingest report, the
/// quality-annotated analysis products, and the run manifest.
pub struct SupervisedRun {
    /// Per-file ingest health plus the census itself.
    pub report: IngestReport,
    /// The reference day analysis ran against (`None`: nothing ingested).
    pub reference: Option<Day>,
    /// Rendered Table 1 for the reference day; `None` when the reference
    /// day is absent from the census; quality `Partial` when the stage
    /// lost the unit.
    pub table1: Option<Annotated<Option<String>>>,
    /// The gap-aware stability verdict; the annotation folds in both the
    /// verdict's own quality (widened/unknown windows) and supervision.
    pub stability: Option<Annotated<Option<StabilityVerdict>>>,
    /// Dense prefixes of the reference day's Other addresses, merged
    /// across per-segment shards.
    pub dense: Option<Annotated<Vec<DensePrefix>>>,
    /// The run manifest.
    pub manifest: RunManifest,
}

impl SupervisedRun {
    /// The run's overall quality: the manifest meet with every product
    /// annotation (so a widened stability window degrades the run even
    /// though no supervision machinery fired).
    pub fn overall_quality(&self) -> Quality {
        let mut q = self.manifest.quality();
        if let Some(t) = &self.table1 {
            q = q.meet(t.quality);
        }
        if let Some(s) = &self.stability {
            q = q.meet(s.quality);
        }
        if let Some(d) = &self.dense {
            q = q.meet(d.quality);
        }
        q
    }
}

/// Lists the day files under `dir` exactly as sequential
/// [`StreamIngestor::ingest_dir`] would: day-named files, sorted by day.
fn day_files(
    fs: &dyn v6census_core::vfs::Vfs,
    dir: &Path,
) -> Result<Vec<(Day, PathBuf)>, IngestError> {
    let entries = fs.read_dir(dir).map_err(|e| IngestError::Io {
        path: dir.to_path_buf(),
        kind: e.kind(),
        retries: 0,
        detail: e.to_string(),
    })?;
    let mut paths: Vec<(Day, PathBuf)> = Vec::new();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if let Some(day) = crate::stream::day_from_filename(&name) {
            paths.push((day, path));
        }
    }
    paths.sort();
    Ok(paths)
}

/// Runs the supervised census pipeline over a directory of day logs:
/// parallel per-file parse, serial in-order commit, then the analysis
/// stages (Table 1, stability, sharded densify) under supervision.
///
/// The `Err` arm fires only for strict-mode aborts and an unreadable
/// directory; every contained failure is reported through the manifest.
pub fn run_census(dir: &Path, cfg: &PipelineConfig) -> Result<SupervisedRun, IngestError> {
    let ingestor = StreamIngestor::new(cfg.ingest.clone());
    // A checkpoint directory may hold `.tmp` leftovers from a previous
    // aborted atomic write; delete them before resume can see them. A
    // failed sweep is not fatal — stale files survive to the next run.
    let stale_tmp_removed = match &cfg.ingest.checkpoint_dir {
        Some(ckpt_dir) => {
            crate::stream::sweep_stale_tmp(cfg.ingest.vfs.as_ref(), ckpt_dir).unwrap_or(0)
        }
        None => 0,
    };
    let paths = day_files(cfg.ingest.vfs.as_ref(), dir)?;

    // Stage 1: ingest. One unit per day file; the parse half runs in
    // parallel, the census commit is serial in day order below.
    let units: Vec<Unit<Result<ParsedFile, IngestError>>> = paths
        .iter()
        .map(|(day, path)| {
            let ingestor = ingestor.clone();
            let path = path.clone();
            Unit::new(format!("ingest/{day}"), move |_ctx: &UnitCtx| {
                ingestor.parse_file(&path)
            })
        })
        .collect();
    let (parsed, ingest_stage) = run_stage("ingest", units, &cfg.supervisor);

    let mut census = Census::new_empty();
    let mut files: Vec<FileReport> = Vec::new();
    let mut ingested_days: Vec<Day> = Vec::new();
    for (i, slot) in parsed.into_iter().enumerate() {
        let (day, path) = &paths[i];
        if cfg
            .ingest
            .max_days
            .is_some_and(|limit| ingested_days.len() >= limit)
        {
            files.push(FileReport {
                path: path.clone(),
                day: *day,
                data_lines: 0,
                bad_lines: 0,
                outcome: FileOutcome::Skipped,
                errors: Vec::new(),
            });
            continue;
        }
        match slot {
            Some(Ok(parsed_file)) => {
                files.push(ingestor.commit_parsed(parsed_file, &mut census, &mut ingested_days)?);
            }
            Some(Err(e)) => return Err(e), // strict-mode abort, in file order
            None => {
                // The supervisor lost this unit (panic twice / deadline);
                // surface it in the health report, not as an abort.
                let reason = ingest_stage.units[i].status.label().to_string();
                files.push(FileReport {
                    path: path.clone(),
                    day: *day,
                    data_lines: 0,
                    bad_lines: 0,
                    outcome: FileOutcome::Failed,
                    errors: vec![IngestError::UnitFailed {
                        path: path.clone(),
                        reason: format!("supervised ingest unit {}", reason),
                    }],
                });
            }
        }
    }
    let gaps = match (ingested_days.iter().min(), ingested_days.iter().max()) {
        (Some(&first), Some(&last)) => first
            .range_inclusive(last)
            .filter(|d| !census.has_day(*d))
            .collect(),
        _ => Vec::new(),
    };
    let report = IngestReport {
        census,
        files,
        gaps,
        stale_tmp_removed,
    };
    let ingest_quality = ingest_stage.quality();

    let mut manifest = RunManifest {
        jobs: cfg.supervisor.jobs.max(1),
        stages: vec![ingest_stage],
    };

    let reference = cfg.reference.or_else(|| {
        let all: Vec<Day> = report.census.days().collect();
        (!all.is_empty()).then(|| all[all.len() / 2])
    });
    let Some(reference) = reference else {
        return Ok(SupervisedRun {
            report,
            reference: None,
            table1: None,
            stability: None,
            dense: None,
            manifest,
        });
    };

    // The analysis stages share the census read-only.
    let census = Arc::new(report.census);

    // Stage 2: Table 1 (one unit; the table renderer is a whole-census
    // computation, but still deserves panic/deadline containment).
    let table1 = if census.summary(reference).is_some() {
        let c = Arc::clone(&census);
        let unit = Unit::new("table1/reference", move |_ctx: &UnitCtx| {
            let spec = [crate::tables::EpochSpec {
                label: "reference",
                reference,
            }];
            let (daily, _weekly) = crate::tables::table1(&c, &spec);
            daily.render()
        });
        let (mut values, stage) = run_stage("table1", vec![unit], &cfg.supervisor);
        let annotated = annotate_product(values.remove(0), &stage, ingest_quality);
        manifest.stages.push(stage);
        Some(annotated)
    } else {
        None
    };

    // Stage 3: gap-aware nd-stability on the reference day.
    let stability = {
        let c = Arc::clone(&census);
        let params = cfg.params;
        let policy = cfg.gap_policy;
        let unit = Unit::new(format!("stability/{reference}"), move |_ctx: &UnitCtx| {
            c.other_daily().stable_on_gapped(reference, &params, policy)
        });
        let (mut values, stage) = run_stage("stability", vec![unit], &cfg.supervisor);
        let mut annotated = annotate_product(values.remove(0), &stage, ingest_quality);
        if let Some(v) = &annotated.value {
            // Fold the verdict's own quality (widened/unknown window)
            // into the product annotation.
            let vq = v.quality.quality();
            if !vq.is_exact() {
                annotated.note(vq, String::new());
            }
        }
        manifest.stages.push(stage);
        Some(annotated)
    };

    // Stage 4: densify, sharded by top 16-bit segment. The decomposition
    // is a pure function of the data (never of the job count), so the
    // merged result is deterministic across --jobs settings.
    let dense = {
        let active = census.other_daily().on(reference);
        let mut shards: BTreeMap<u16, Vec<Addr>> = BTreeMap::new();
        for a in active.iter() {
            shards.entry((a.0 >> 112) as u16).or_default().push(a);
        }
        let (n, p, cap) = (cfg.dense_n, cfg.dense_p, cfg.supervisor.max_trie_nodes);
        let units: Vec<Unit<Vec<DensePrefix>>> = shards
            .into_iter()
            .map(|(seg, addrs)| {
                Unit::new(format!("densify/{seg:04x}"), move |ctx: &UnitCtx| {
                    let mut tree = RadixTree::new();
                    for chunk in addrs.chunks(256) {
                        if ctx.cancelled() {
                            break;
                        }
                        for &a in chunk {
                            tree.insert_addr(a, 1);
                        }
                    }
                    ctx.record_trie_nodes(tree.node_count());
                    let b = tree.densify_budgeted(n, p, cap);
                    if b.degraded {
                        ctx.degrade(format!(
                            "trie budget {cap}: {} nodes folded to {}",
                            b.nodes_before, b.nodes_after
                        ));
                    }
                    b.dense
                })
            })
            .collect();
        let (values, stage) = run_stage("densify", units, &cfg.supervisor);
        let mut merged: Vec<DensePrefix> = values.into_iter().flatten().flatten().collect();
        merged.sort();
        let mut annotated =
            annotate_product(Some(merged), &stage, ingest_quality).map(|v| v.unwrap_or_default());
        for u in &stage.units {
            for note in &u.degraded {
                annotated.note(Quality::Degraded, format!("shard {}: {note}", u.label));
            }
        }
        manifest.stages.push(stage);
        Some(annotated)
    };

    // Put the census back into the report for the caller. Workers are
    // detached, so one abandoned at a deadline (or simply not yet torn
    // down) may still hold a reference; clone rather than wait on it.
    let census = Arc::try_unwrap(census).unwrap_or_else(|arc| (*arc).clone());
    let report = IngestReport {
        census,
        files: report.files,
        gaps: report.gaps,
        stale_tmp_removed: report.stale_tmp_removed,
    };

    Ok(SupervisedRun {
        report,
        reference: Some(reference),
        table1,
        stability,
        dense,
        manifest,
    })
}

/// Annotates a stage's (single- or merged-unit) product: missing output
/// is `Partial` with the casualty list, degraded units are noted by the
/// caller, and the ingest stage's quality is inherited — analysis over
/// an incomplete census cannot claim to be exact.
fn annotate_product<T>(
    value: Option<T>,
    stage: &StageReport,
    ingest_quality: Quality,
) -> Annotated<Option<T>> {
    let mut a = Annotated::exact(value);
    for u in stage.excluded() {
        if let UnitStatus::Excluded { reason } = &u.status {
            a.note(
                Quality::Partial,
                format!("{}/{} excluded: {reason}", stage.stage, u.label),
            );
        }
    }
    for u in stage.lost_to_deadline() {
        a.note(
            Quality::Partial,
            format!("{}/{} {}", stage.stage, u.label, u.status.label()),
        );
    }
    if !ingest_quality.is_exact() {
        a.note(ingest_quality, "ingest stage incomplete");
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn cfg(jobs: usize) -> SupervisorConfig {
        SupervisorConfig {
            jobs,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn empty_stage_is_exact() {
        let (results, report) = run_stage("noop", Vec::<Unit<u32>>::new(), &cfg(4));
        assert!(results.is_empty());
        assert_eq!(report.quality(), Quality::Exact);
        assert!(!report.deadline_expired);
    }

    #[test]
    fn first_attempt_panic_is_retried_persistent_panic_is_excluded() {
        let flaky_tries = Arc::new(AtomicU32::new(0));
        let tries = Arc::clone(&flaky_tries);
        let units = vec![
            Unit::new("flaky", move |_ctx: &UnitCtx| {
                if tries.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("first attempt dies");
                }
                7u32
            }),
            Unit::new("doomed", |_ctx: &UnitCtx| -> u32 {
                panic!("dies every time")
            }),
            Unit::new("fine", |_ctx: &UnitCtx| 40u32),
        ];
        let (results, report) = run_stage("mixed", units, &cfg(2));
        assert_eq!(results[0], Some(7));
        assert_eq!(results[1], None);
        assert_eq!(results[2], Some(40));
        assert!(matches!(
            report.units[0].status,
            UnitStatus::Ok { attempts: 2 }
        ));
        assert!(matches!(
            &report.units[1].status,
            UnitStatus::Excluded { reason } if reason.contains("dies every time")
        ));
        assert!(matches!(
            report.units[2].status,
            UnitStatus::Ok { attempts: 1 }
        ));
        assert_eq!(report.quality(), Quality::Partial);
        assert_eq!(report.retried(), 2);
        assert_eq!(flaky_tries.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn deadline_classifies_timed_out_vs_cancelled() {
        let units = vec![
            Unit::new("hog", |_ctx: &UnitCtx| {
                std::thread::sleep(Duration::from_secs(30));
                0u32
            }),
            Unit::new("queued-1", |_ctx: &UnitCtx| 1u32),
            Unit::new("queued-2", |_ctx: &UnitCtx| 2u32),
        ];
        let deadline = SupervisorConfig {
            jobs: 1,
            stage_deadline: Some(Duration::from_millis(150)),
            ..SupervisorConfig::default()
        };
        let start = Instant::now();
        let (results, report) = run_stage("stuck", units, &deadline);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "the hog must be abandoned, not awaited"
        );
        assert!(report.deadline_expired);
        assert_eq!(report.units[0].status, UnitStatus::TimedOut);
        assert_eq!(report.units[1].status, UnitStatus::Cancelled);
        assert_eq!(report.units[2].status, UnitStatus::Cancelled);
        assert!(results.iter().all(Option::is_none));
        assert_eq!(report.quality(), Quality::Partial);
        assert_eq!(report.lost_to_deadline().len(), 3);
    }

    #[test]
    fn unit_ctx_notes_reach_the_report() {
        let units = vec![Unit::new("budgeted", |ctx: &UnitCtx| {
            ctx.record_trie_nodes(1234);
            ctx.record_trie_nodes(99); // peak is kept
            ctx.degrade("budget hit");
            assert!(!ctx.cancelled());
            0u32
        })];
        let (_, report) = run_stage("ctx", units, &cfg(1));
        assert_eq!(report.units[0].trie_nodes, 1234);
        assert_eq!(report.units[0].degraded, vec!["budget hit".to_string()]);
        assert_eq!(report.quality(), Quality::Degraded);
        assert_eq!(report.degraded(), 1);
        assert_eq!(report.peak_trie_nodes(), 1234);
    }

    #[test]
    fn equivalence_key_ignores_wall_time() {
        let mk = |wall| StageReport {
            stage: "s".into(),
            units: vec![UnitReport {
                label: "u/1".into(),
                status: UnitStatus::Ok { attempts: 1 },
                degraded: vec!["capped".into()],
                trie_nodes: 10,
            }],
            wall_millis: wall,
            deadline_expired: false,
        };
        assert_eq!(mk(5).equivalence_key(), mk(5000).equivalence_key());
        assert!(mk(5).equivalence_key().contains("u/1=ok(degraded)"));
        let manifest = RunManifest {
            jobs: 2,
            stages: vec![mk(1)],
        };
        assert_eq!(manifest.quality(), Quality::Degraded);
        let rendered = manifest.render();
        assert!(rendered.contains("==== run manifest ===="));
        assert!(rendered.contains("degraded u/1: capped"));
        assert!(rendered.contains("quality: degraded"));
    }
}
