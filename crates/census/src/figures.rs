//! The paper's figure series, computed from census data.

use crate::ingest::Census;
use crate::routing::RoutingTable;
use std::collections::BTreeMap;
use v6census_core::spatial::{BoxStats, Ccdf, MraCurve, MraResolution};
use v6census_core::temporal::Day;
use v6census_trie::AddrSet;

/// An MRA plot's data (Figures 2 and 5c–5h): one curve per resolution,
/// plus the length of the population's common prefix (the "known BGP
/// prefix" marker).
#[derive(Clone, Debug)]
pub struct MraFigure {
    /// Plot title.
    pub title: String,
    /// Number of addresses characterized.
    pub total: u64,
    /// `(resolution, curve points)` — single bits, nybbles, 16-bit
    /// segments, in the paper's plotting order.
    pub curves: Vec<(MraResolution, Vec<(u8, f64)>)>,
    /// Longest common prefix of the population.
    pub common_prefix: u8,
}

impl MraFigure {
    /// Computes the figure for an address population.
    pub fn of(title: &str, set: &AddrSet) -> MraFigure {
        let mra = MraCurve::of(set);
        let resolutions = [
            MraResolution::Segment16,
            MraResolution::Nybble,
            MraResolution::SingleBit,
        ];
        MraFigure {
            title: title.to_string(),
            total: mra.total(),
            curves: resolutions.iter().map(|&r| (r, mra.curve(r))).collect(),
            common_prefix: mra.common_prefix_len(),
        }
    }

    /// The curve for one resolution, if present.
    pub fn curve(&self, res: MraResolution) -> Option<&[(u8, f64)]> {
        self.curves
            .iter()
            .find(|(r, _)| *r == res)
            .map(|(_, c)| c.as_slice())
    }
}

/// Figure 3: aggregate population CCDFs.
#[derive(Clone, Debug)]
pub struct PopulationFigure {
    /// `(legend label, ccdf)` series.
    pub series: Vec<(String, Ccdf)>,
}

impl PopulationFigure {
    /// The paper's five series: 32/48/112-aggregates of addresses and
    /// 32/48-aggregates of /64s, over a week's population.
    pub fn figure3(week_addrs: &AddrSet) -> PopulationFigure {
        let week_64s = week_addrs.map_prefix(64);
        PopulationFigure {
            series: vec![
                (
                    "32-agg. of IPv6 addrs".into(),
                    Ccdf::of_aggregate_populations(week_addrs, 32),
                ),
                (
                    "32-agg. of /64s".into(),
                    Ccdf::of_aggregate_populations(&week_64s, 32),
                ),
                (
                    "48-agg. of IPv6 addrs".into(),
                    Ccdf::of_aggregate_populations(week_addrs, 48),
                ),
                (
                    "48-agg. of /64s".into(),
                    Ccdf::of_aggregate_populations(&week_64s, 48),
                ),
                (
                    "112-agg of IPv6 addrs".into(),
                    Ccdf::of_aggregate_populations(week_addrs, 112),
                ),
            ],
        }
    }
}

/// Figure 4: the stability time series — per-day active counts and the
/// overlap with two reference days.
#[derive(Clone, Debug)]
pub struct StabilityFigure {
    /// Observed days in order.
    pub days: Vec<Day>,
    /// Active count per day.
    pub active: Vec<usize>,
    /// Overlap with the first reference day (e.g. Mar 17).
    pub ref_a: Vec<usize>,
    /// Overlap with the second reference day (e.g. Mar 23).
    pub ref_b: Vec<usize>,
    /// The reference days.
    pub references: (Day, Day),
}

impl StabilityFigure {
    /// Computes the figure from daily observations (use the address store
    /// for Figure 4a, the /64 store for Figure 4b).
    pub fn of(
        obs: &v6census_core::temporal::DailyObservations,
        ref_a: Day,
        ref_b: Day,
    ) -> StabilityFigure {
        let series_a = obs.reference_overlap_series(ref_a);
        let series_b = obs.reference_overlap_series(ref_b);
        StabilityFigure {
            days: series_a.iter().map(|&(d, _, _)| d).collect(),
            active: series_a.iter().map(|&(_, n, _)| n).collect(),
            ref_a: series_a.iter().map(|&(_, _, o)| o).collect(),
            ref_b: series_b.iter().map(|&(_, _, o)| o).collect(),
            references: (ref_a, ref_b),
        }
    }
}

/// Figure 5a: per-ASN count distributions.
#[derive(Clone, Debug)]
pub struct AsnDistributionFigure {
    /// `(legend label, ccdf over per-ASN counts)`.
    pub series: Vec<(String, Ccdf)>,
    /// Number of ASNs with any active address.
    pub active_asns: usize,
}

impl AsnDistributionFigure {
    /// The paper's four series: active addrs, active /64s, EUI-64 addrs,
    /// and 6-month-stable /64s, per ASN.
    pub fn figure5a(
        rt: &RoutingTable,
        week_addrs: &AddrSet,
        week_eui64: &AddrSet,
        six_month_stable_64s: &AddrSet,
    ) -> AsnDistributionFigure {
        let per_asn =
            |set: &AddrSet| -> Vec<u64> { rt.count_by_asn(set).values().copied().collect() };
        let addrs = per_asn(week_addrs);
        let active_asns = addrs.len();
        AsnDistributionFigure {
            series: vec![
                ("active addresses per ASN".into(), Ccdf::new(addrs)),
                (
                    "active /64s per ASN".into(),
                    Ccdf::new(per_asn(&week_addrs.map_prefix(64))),
                ),
                (
                    "active EUI-64 addresses per ASN".into(),
                    Ccdf::new(per_asn(week_eui64)),
                ),
                (
                    "active 6-month-stable /64s per ASN".into(),
                    Ccdf::new(per_asn(six_month_stable_64s)),
                ),
            ],
            active_asns,
        }
    }
}

/// Figure 5b: distributions of 16-bit-segment aggregation ratios across
/// BGP prefixes.
#[derive(Clone, Debug)]
pub struct SegmentRatioFigure {
    /// One box per 16-bit segment: `(segment start bit, stats)`.
    pub boxes: Vec<(u8, BoxStats)>,
    /// Number of BGP prefixes that contributed.
    pub prefixes: usize,
}

impl SegmentRatioFigure {
    /// Computes the figure: per BGP prefix with at least `min_addrs`
    /// active addresses, the γ¹⁶ ratio at each 16-bit segment; then the
    /// distribution of each segment's ratios across prefixes.
    pub fn figure5b(
        rt: &RoutingTable,
        week_addrs: &AddrSet,
        min_addrs: usize,
    ) -> SegmentRatioFigure {
        let groups = rt.group_by_prefix(week_addrs);
        let mut per_segment: BTreeMap<u8, Vec<f64>> = BTreeMap::new();
        let mut prefixes = 0usize;
        for set in groups.values() {
            if set.len() < min_addrs {
                continue;
            }
            prefixes += 1;
            let mra = MraCurve::of(set);
            for (p, r) in mra.curve(MraResolution::Segment16) {
                per_segment.entry(p).or_default().push(r);
            }
        }
        SegmentRatioFigure {
            boxes: per_segment
                .into_iter()
                .filter_map(|(p, v)| BoxStats::of(&v).map(|b| (p, b)))
                .collect(),
            prefixes,
        }
    }
}

/// §1 highlights: ASN concentration numbers.
#[derive(Clone, Debug)]
pub struct AsnHighlights {
    /// Share of active /64s in the top five ASNs.
    pub top5_share_64s: f64,
    /// Share of active addresses in the top five ASNs.
    pub top5_share_addrs: f64,
    /// The top five ASNs by client address count.
    pub top5_asns: Vec<u32>,
    /// Share of 6-month-common /64s that sit in a single ASN.
    pub six_month_single_asn_share: f64,
}

/// Computes the §1 highlight numbers.
pub fn asn_highlights(
    rt: &RoutingTable,
    week_addrs: &AddrSet,
    six_month_common_64s: &AddrSet,
) -> AsnHighlights {
    let addr_counts = rt.count_by_asn(week_addrs);
    let p64_counts = rt.count_by_asn(&week_addrs.map_prefix(64));
    let mut ranked: Vec<(u32, u64)> = addr_counts.iter().map(|(&a, &c)| (a, c)).collect();
    ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let top5: Vec<u32> = ranked.iter().take(5).map(|&(a, _)| a).collect();
    let share = |counts: &BTreeMap<u32, u64>| -> f64 {
        let total: u64 = counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        let top: u64 = top5.iter().filter_map(|a| counts.get(a)).sum();
        top as f64 / total as f64
    };
    let six_counts = rt.count_by_asn(six_month_common_64s);
    let six_total: u64 = six_counts.values().sum();
    let six_max = six_counts.values().copied().max().unwrap_or(0);
    AsnHighlights {
        top5_share_64s: share(&p64_counts),
        top5_share_addrs: share(&addr_counts),
        top5_asns: top5,
        six_month_single_asn_share: if six_total == 0 {
            0.0
        } else {
            six_max as f64 / six_total as f64
        },
    }
}

/// Convenience: the week union of "Other" addresses starting at `first`.
pub fn week_other(census: &Census, first: Day) -> AddrSet {
    census.other_over(first.range_inclusive(first + 6))
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_synth::{world::asns, world::epochs, World, WorldConfig};

    fn setup() -> (World, Census, RoutingTable) {
        let w = World::standard(WorldConfig::tiny(23));
        let d = epochs::mar2015();
        let c = Census::run(&w, d, d + 6);
        let rt = RoutingTable::of(&w, d);
        (w, c, rt)
    }

    #[test]
    fn mra_figure_has_three_curves() {
        let (_, c, _) = setup();
        let week = week_other(&c, epochs::mar2015());
        let f = MraFigure::of("all", &week);
        assert_eq!(f.curves.len(), 3);
        assert_eq!(f.total as usize, week.len());
        let bits = f.curve(MraResolution::SingleBit).unwrap();
        assert_eq!(bits.len(), 128);
        let segs = f.curve(MraResolution::Segment16).unwrap();
        assert_eq!(segs.len(), 8);
    }

    #[test]
    fn figure3_series_shapes() {
        let (_, c, _) = setup();
        let week = week_other(&c, epochs::mar2015());
        let f = PopulationFigure::figure3(&week);
        assert_eq!(f.series.len(), 5);
        // The /112 aggregate curve has the lowest mass at high counts
        // (the paper's "lowest curve").
        let find = |label: &str| {
            f.series
                .iter()
                .find(|(l, _)| l.contains(label))
                .map(|(_, c)| c)
                .unwrap()
        };
        let agg112 = find("112-agg");
        let agg32 = find("32-agg. of IPv6");
        assert!(agg32.proportion_ge(10) >= agg112.proportion_ge(10));
    }

    #[test]
    fn figure4_series() {
        let w = World::standard(WorldConfig::tiny(23));
        let d = epochs::mar2015();
        let c = Census::run(&w, d - 3, d + 3);
        let f = StabilityFigure::of(c.other_daily(), d, d + 1);
        assert_eq!(f.days.len(), 7);
        // Overlap with a reference never exceeds the day's active count,
        // and the reference day overlaps itself fully.
        for i in 0..f.days.len() {
            assert!(f.ref_a[i] <= f.active[i]);
        }
        let ref_idx = f.days.iter().position(|&x| x == d).unwrap();
        assert_eq!(f.ref_a[ref_idx], f.active[ref_idx]);
    }

    #[test]
    fn figure5a_and_highlights() {
        let (_, c, rt) = setup();
        let d = epochs::mar2015();
        let week = week_other(&c, d);
        let eui = c.eui64_over(d.range_inclusive(d + 6));
        let stable64 = week.map_prefix(64); // stand-in for the test
        let f = AsnDistributionFigure::figure5a(&rt, &week, &eui, &stable64);
        assert_eq!(f.series.len(), 4);
        assert!(f.active_asns > 10);

        let h = asn_highlights(&rt, &week, &stable64);
        assert!(h.top5_asns.contains(&asns::MOBILE_A));
        assert!(h.top5_share_64s > 0.5, "top5 {:.3}", h.top5_share_64s);
        assert!(h.top5_share_addrs > 0.3);
        assert!(h.top5_share_64s <= 1.0 && h.top5_share_addrs <= 1.0);
    }

    #[test]
    fn figure5b_box_ordering() {
        let (_, c, rt) = setup();
        let week = week_other(&c, epochs::mar2015());
        let f = SegmentRatioFigure::figure5b(&rt, &week, 20);
        assert!(f.prefixes > 3, "{} prefixes", f.prefixes);
        assert_eq!(f.boxes.len(), 8);
        for (p, b) in &f.boxes {
            assert!(b.min >= 1.0 && b.max <= 65536.0, "segment {p}: {b:?}");
        }
    }
}
