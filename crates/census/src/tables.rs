//! The paper's numeric tables, computed from a census.

use crate::humane::{count_pct, si};
use crate::ingest::{Census, DaySummary};
use v6census_core::spatial::DensityClass;
use v6census_core::temporal::{Day, StabilityParams};
use v6census_trie::AddrSet;

// ---------------------------------------------------------------------------
// Table 1: address characteristics per day / per week
// ---------------------------------------------------------------------------

/// One column of Table 1 (one epoch, daily or weekly granularity).
#[derive(Clone, Debug)]
pub struct Table1Column {
    /// Column header (e.g. "Mar 17, 2015").
    pub label: String,
    /// Teredo addresses.
    pub teredo: u64,
    /// ISATAP addresses.
    pub isatap: u64,
    /// 6to4 addresses.
    pub sixtofour: u64,
    /// "Other" (native-transport) addresses.
    pub other: u64,
    /// Active /64s among Other.
    pub other_64s: u64,
    /// EUI-64 addresses among Other.
    pub eui64: u64,
    /// Unique MACs behind them.
    pub eui64_macs: u64,
}

impl Table1Column {
    /// Builds a column from a (daily or weekly) summary.
    pub fn from_summary(label: String, s: &DaySummary) -> Table1Column {
        Table1Column {
            label,
            teredo: s.teredo.len() as u64,
            isatap: s.isatap.len() as u64,
            sixtofour: s.sixtofour.len() as u64,
            other: s.other.len() as u64,
            other_64s: s.other_64s().len() as u64,
            eui64: s.eui64.len() as u64,
            eui64_macs: s.eui64_macs.len() as u64,
        }
    }

    /// Total active addresses (percentage base).
    pub fn total(&self) -> u64 {
        self.teredo + self.isatap + self.sixtofour + self.other
    }

    /// Average addresses per active /64.
    pub fn addrs_per_64(&self) -> f64 {
        if self.other_64s == 0 {
            0.0
        } else {
            self.other as f64 / self.other_64s as f64
        }
    }
}

/// A full Table 1 (several epoch columns at one granularity).
#[derive(Clone, Debug)]
pub struct Table1 {
    /// "per day" or "per week".
    pub granularity: &'static str,
    /// The epoch columns.
    pub columns: Vec<Table1Column>,
}

impl Table1 {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let w = 22usize;
        out.push_str(&format!(
            "{:<22}{}\n",
            "Characteristic",
            self.columns
                .iter()
                .map(|c| format!("{:>24}", c.label))
                .collect::<String>()
        ));
        let mut row = |name: &str, f: &dyn Fn(&Table1Column) -> String| {
            out.push_str(&format!(
                "{:<w$}{}\n",
                name,
                self.columns
                    .iter()
                    .map(|c| format!("{:>24}", f(c)))
                    .collect::<String>()
            ));
        };
        row("Teredo addresses", &|c| {
            count_pct(c.teredo as u128, c.total() as u128)
        });
        row("ISATAP addresses", &|c| {
            count_pct(c.isatap as u128, c.total() as u128)
        });
        row("6to4 addresses", &|c| {
            count_pct(c.sixtofour as u128, c.total() as u128)
        });
        row("Other addresses", &|c| {
            count_pct(c.other as u128, c.total() as u128)
        });
        row("Other /64 prefixes", &|c| si(c.other_64s as u128));
        row("ave. addrs per /64", &|c| {
            format!("{:.2}", c.addrs_per_64())
        });
        row("EUI-64 addr (!6to4)", &|c| {
            count_pct(c.eui64 as u128, c.total() as u128)
        });
        row("EUI-64 IIDs (MACs)", &|c| si(c.eui64_macs as u128));
        out
    }
}

// ---------------------------------------------------------------------------
// Table 2: stability
// ---------------------------------------------------------------------------

/// One column of Table 2 (one epoch), for addresses or /64s, daily or
/// weekly.
#[derive(Clone, Debug)]
pub struct Table2Column {
    /// Column header.
    pub label: String,
    /// nd-stable count (n from the params used).
    pub stable: u64,
    /// Complement within the observed actives.
    pub not_stable: u64,
    /// 6m-stable (-6m) count, when an earlier epoch is available.
    pub six_month: Option<u64>,
    /// 1y-stable (-1y) count, when a year-earlier epoch is available.
    pub one_year: Option<u64>,
}

impl Table2Column {
    /// Percentage base: active count for this column.
    pub fn total(&self) -> u64 {
        self.stable + self.not_stable
    }
}

/// A full Table 2 pane (2a, 2b, 2c or 2d).
#[derive(Clone, Debug)]
pub struct Table2 {
    /// Pane caption, e.g. "Stability of IPv6 addresses per day".
    pub caption: String,
    /// The stability parameters used for the nd-stable row.
    pub params: StabilityParams,
    /// Epoch columns.
    pub columns: Vec<Table2Column>,
}

/// Inputs describing one epoch for Table 2: the reference day (daily
/// panes) or the first day of the reference week (weekly panes).
#[derive(Clone, Copy, Debug)]
pub struct EpochSpec {
    /// Column header.
    pub label: &'static str,
    /// Reference day (or first day of the reference week).
    pub reference: Day,
}

impl Table2 {
    /// Computes a *daily* stability pane (Table 2a with `obs` = address
    /// observations; Table 2b with /64 observations) over the given
    /// epochs, using `params` for the nd-stable row.
    ///
    /// `obs` must contain the ±window days around every epoch reference.
    pub fn daily(
        caption: &str,
        obs: &v6census_core::temporal::DailyObservations,
        epochs: &[EpochSpec],
        params: StabilityParams,
    ) -> Table2 {
        let mut columns = Vec::new();
        for (i, e) in epochs.iter().enumerate() {
            let stable = obs.stable_on(e.reference, &params);
            let active = obs.on(e.reference);
            let six_month = i.checked_sub(1).map(|j| {
                obs.epoch_stable([e.reference], [epochs[j].reference])
                    .stable
                    .len() as u64
            });
            let one_year = i.checked_sub(2).map(|j| {
                obs.epoch_stable([e.reference], [epochs[j].reference])
                    .stable
                    .len() as u64
            });
            columns.push(Table2Column {
                label: e.label.to_string(),
                stable: stable.len() as u64,
                not_stable: (active.len() - stable.len()) as u64,
                six_month,
                one_year,
            });
        }
        Table2 {
            caption: caption.to_string(),
            params,
            columns,
        }
    }

    /// Computes a *weekly* stability pane (Table 2c/2d): per-reference-day
    /// nd-stable sets unioned over each epoch's week, and cross-epoch
    /// week-vs-week stability.
    pub fn weekly(
        caption: &str,
        obs: &v6census_core::temporal::DailyObservations,
        epochs: &[EpochSpec],
        params: StabilityParams,
    ) -> Table2 {
        let week = |d: Day| d.range_inclusive(d + 6);
        let mut columns = Vec::new();
        for (i, e) in epochs.iter().enumerate() {
            let w = obs.stable_over_week(e.reference, &params);
            let six_month = i.checked_sub(1).map(|j| {
                obs.epoch_stable(week(e.reference), week(epochs[j].reference))
                    .stable
                    .len() as u64
            });
            let one_year = i.checked_sub(2).map(|j| {
                obs.epoch_stable(week(e.reference), week(epochs[j].reference))
                    .stable
                    .len() as u64
            });
            columns.push(Table2Column {
                label: e.label.to_string(),
                stable: w.stable.len() as u64,
                not_stable: w.not_stable.len() as u64,
                six_month,
                one_year,
            });
        }
        Table2 {
            caption: caption.to_string(),
            params,
            columns,
        }
    }

    /// Renders the pane in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.caption);
        let hdr: String = self
            .columns
            .iter()
            .map(|c| format!("{:>24}", c.label))
            .collect();
        out.push_str(&format!("{:<22}{}\n", "class", hdr));
        let n = self.params.n;
        let mut row = |name: String, f: &dyn Fn(&Table2Column) -> String| {
            out.push_str(&format!(
                "{:<22}{}\n",
                name,
                self.columns
                    .iter()
                    .map(|c| format!("{:>24}", f(c)))
                    .collect::<String>()
            ));
        };
        row(format!("{n}d-stable"), &|c| {
            count_pct(c.stable as u128, c.total() as u128)
        });
        row(format!("not {n}d-stable"), &|c| {
            count_pct(c.not_stable as u128, c.total() as u128)
        });
        row("6m-stable (-6m)".to_string(), &|c| match c.six_month {
            Some(v) => count_pct(v as u128, c.total() as u128),
            None => String::new(),
        });
        row("1y-stable (-1y)".to_string(), &|c| match c.one_year {
            Some(v) => count_pct(v as u128, c.total() as u128),
            None => String::new(),
        });
        out
    }
}

// ---------------------------------------------------------------------------
// Table 3: dense prefixes
// ---------------------------------------------------------------------------

/// Table 3: density classes applied to a router-address dataset.
#[derive(Clone, Debug)]
pub struct Table3 {
    /// One row per density class, in the paper's order.
    pub rows: Vec<v6census_core::spatial::DensityReport>,
}

/// The twelve density classes of the paper's Table 3, in row order.
pub fn table3_classes() -> Vec<DensityClass> {
    vec![
        DensityClass::new(2, 124),
        DensityClass::new(3, 120),
        DensityClass::new(2, 120),
        DensityClass::new(2, 116),
        DensityClass::new(64, 112),
        DensityClass::new(32, 112),
        DensityClass::new(16, 112),
        DensityClass::new(8, 112),
        DensityClass::new(4, 112),
        DensityClass::new(2, 112),
        DensityClass::new(2, 108),
        DensityClass::new(2, 104),
    ]
}

impl Table3 {
    /// Computes all twelve rows over a router-address set.
    pub fn compute(routers: &AddrSet) -> Table3 {
        Table3 {
            rows: table3_classes()
                .into_iter()
                .map(|c| c.report(routers))
                .collect(),
        }
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14}{:>10}{:>12}{:>14}{:>16}\n",
            "Density", "Dense", "Router", "Possible", "Address"
        ));
        out.push_str(&format!(
            "{:<14}{:>10}{:>12}{:>14}{:>16}\n",
            "Class", "Prefixes", "Addresses", "Addresses", "Density"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<14}{:>10}{:>12}{:>14}{:>16.10}\n",
                format!("{} @ /{}", r.class.n, r.class.p),
                si(r.dense_prefixes as u128),
                si(r.covered_addresses as u128),
                si(r.possible_addresses),
                r.density(),
            ));
        }
        out
    }
}

/// Convenience: build both Table 1 granularities from a census. Epochs
/// whose reference day was never ingested are skipped in the daily
/// table (the weekly table tolerates gaps via `week_summary`).
pub fn table1(census: &Census, epochs: &[EpochSpec]) -> (Table1, Table1) {
    let daily = Table1 {
        granularity: "per day",
        columns: epochs
            .iter()
            .filter_map(|e| {
                let s = census.summary(e.reference)?;
                Some(Table1Column::from_summary(e.label.to_string(), s))
            })
            .collect(),
    };
    let weekly = Table1 {
        granularity: "per week",
        columns: epochs
            .iter()
            .map(|e| {
                let s = census.week_summary(e.reference);
                Table1Column::from_summary(format!("{} (wk)", e.label), &s)
            })
            .collect(),
    };
    (daily, weekly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_core::temporal::DailyObservations;
    use v6census_synth::{world::epochs, World, WorldConfig};

    #[test]
    fn table1_columns_add_up() {
        let w = World::standard(WorldConfig::tiny(19));
        let d = epochs::mar2015();
        let c = Census::run(&w, d, d + 6);
        let spec = [EpochSpec {
            label: "Mar 17, 2015",
            reference: d,
        }];
        let (daily, weekly) = table1(&c, &spec);
        let dc = &daily.columns[0];
        let wc = &weekly.columns[0];
        assert!(wc.other > dc.other, "weekly must exceed daily");
        assert!(dc.addrs_per_64() >= 1.0);
        assert!(wc.addrs_per_64() > dc.addrs_per_64());
        let rendered = daily.render();
        assert!(rendered.contains("Other addresses"));
        assert!(rendered.contains('%'));
    }

    #[test]
    fn table2_daily_columns() {
        let mut obs = DailyObservations::new();
        let d = Day::from_ymd(2015, 3, 17);
        let e = Day::from_ymd(2014, 9, 17);
        let mk = |names: &[&str]| {
            v6census_trie::AddrSet::from_iter(
                names
                    .iter()
                    .map(|s| s.parse::<v6census_addr::Addr>().unwrap()),
            )
        };
        obs.record(e, mk(&["2001:db8::1", "2001:db8::5"]));
        obs.record(d, mk(&["2001:db8::1", "2001:db8::2"]));
        obs.record(d + 3, mk(&["2001:db8::1"]));
        let t = Table2::daily(
            "Stability of IPv6 addresses per day",
            &obs,
            &[
                EpochSpec {
                    label: "Sep 17, 2014",
                    reference: e,
                },
                EpochSpec {
                    label: "Mar 17, 2015",
                    reference: d,
                },
            ],
            StabilityParams::three_day(),
        );
        assert_eq!(t.columns.len(), 2);
        let c = &t.columns[1];
        assert_eq!(c.stable, 1); // ::1 seen on d and d+3
        assert_eq!(c.not_stable, 1);
        assert_eq!(c.six_month, Some(1)); // ::1 in common with e
        assert_eq!(c.one_year, None);
        let r = t.render();
        assert!(r.contains("3d-stable"));
        assert!(r.contains("6m-stable (-6m)"));
    }

    #[test]
    fn table3_rows_are_ordered_like_paper() {
        let classes = table3_classes();
        assert_eq!(classes.len(), 12);
        assert_eq!(classes[0].to_string(), "2@/124-dense");
        assert_eq!(classes[9].to_string(), "2@/112-dense");
        assert_eq!(classes[11].to_string(), "2@/104-dense");
    }

    #[test]
    fn table3_computes_and_renders() {
        let addrs: Vec<v6census_addr::Addr> = (0..64u128)
            .map(|i| v6census_addr::Addr((0x2604_0001u128 << 96) | i))
            .collect();
        let set = AddrSet::from_iter(addrs);
        let t = Table3::compute(&set);
        assert_eq!(t.rows.len(), 12);
        // 64 sequential addrs form dense prefixes at every class.
        let row_2_112 = &t.rows[9];
        assert_eq!(row_2_112.dense_prefixes, 1);
        assert_eq!(row_2_112.covered_addresses, 64);
        let rendered = t.render();
        assert!(rendered.contains("2 @ /124"));
        assert!(rendered.contains("Density"));
    }
}
