//! The serve chaos matrix: one drill per hostility kind, selectable
//! with the `V6CENSUS_CHAOS_KIND` environment variable so CI can run
//! each kind as its own job under a hard timeout. With the variable
//! unset, every kind runs in sequence.
//!
//! Every drill asserts the same contract: the daemon never panics,
//! never serves a torn snapshot (`generation == days` on every control
//! read), keeps per-connection memory bounded, and is still answering
//! well-formed queries after the abuse stops.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use v6census_census::serve::{spawn, ServeConfig, ServeHandle};
use v6census_synth::chaos::{http_get, ChaosClient, ChaosKind};
use v6census_synth::faults::day_file_name;
use v6census_synth::world::epochs;
use v6census_synth::{Fault, FaultInjector, World, WorldConfig};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("v6census-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn world() -> World {
    World::standard(WorldConfig {
        seed: 43,
        scale: 0.002,
    })
}

fn write_day(dir: &Path, w: &World, offset: i32) {
    let day = epochs::mar2015() + offset;
    std::fs::write(dir.join(day_file_name(day)), w.day_log(day).to_text()).unwrap();
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http_get(addr, path, Duration::from_secs(5)).expect("daemon must answer")
}

fn field_u64(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {body}"))
}

/// The control probe every drill interleaves with its abuse: a
/// well-formed query that must come back 200 and internally consistent.
fn assert_healthy(addr: SocketAddr) -> u64 {
    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200, "control query failed: {body}");
    let gen = field_u64(&body, "generation");
    assert_eq!(gen, field_u64(&body, "days"), "torn snapshot: {body}");
    gen
}

fn wait_for_generation(addr: SocketAddr, want: u64) {
    for _ in 0..600 {
        let (_, body) = get(addr, "/healthz");
        if field_u64(&body, "generation") >= want {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never reached generation {want}");
}

fn launch(tag: &str, cfg_tune: impl FnOnce(&mut ServeConfig)) -> (ServeHandle, PathBuf) {
    let source = tempdir(tag);
    let w = world();
    write_day(&source, &w, 0);
    write_day(&source, &w, 1);
    let mut cfg = ServeConfig {
        source_dir: source.clone(),
        poll_interval: Duration::from_millis(20),
        ..ServeConfig::default()
    };
    cfg_tune(&mut cfg);
    let handle = spawn(cfg).unwrap();
    wait_for_generation(handle.addr(), 2);
    (handle, source)
}

/// One drill. Every arm must leave the daemon serving and drain clean.
fn drill(kind: &str) {
    match kind {
        // Garbage requests and heads cut off mid-line: controlled 4xx
        // per offender, zero effect on the control client.
        "malformed" => {
            let (handle, source) = launch("malformed", |_| {});
            let addr = handle.addr();
            let chaos = ChaosClient::new(0xc4a0);
            for salt in 0..8 {
                let hit = chaos.strike(addr, ChaosKind::Malformed, salt);
                assert!(hit.connected);
                assert!(
                    hit.status.is_none() || hit.status == Some(400),
                    "garbage must draw 400 or a close, got {:?}",
                    hit.status
                );
                let cut = chaos.strike(addr, ChaosKind::Truncated, salt);
                assert!(
                    cut.connected && cut.finished,
                    "server left a half-request hanging"
                );
                assert_healthy(addr);
            }
            let report = handle.shutdown();
            assert!(report.clean);
            assert!(
                report.metrics.malformed + report.metrics.early_disconnects >= 8,
                "abuse went uncounted: {:?}",
                report.metrics
            );
            let _ = std::fs::remove_dir_all(&source);
        }
        // Slow-dripped headers hit the header deadline (408/close);
        // unbounded headers hit the byte cap (431). Memory stays capped.
        "slowclient" => {
            let (handle, source) = launch("slowclient", |cfg| {
                cfg.header_deadline = Duration::from_millis(300);
                cfg.read_timeout = Duration::from_millis(100);
                cfg.max_request_bytes = 2 * 1024;
            });
            let addr = handle.addr();
            let chaos = ChaosClient::new(0x510e);
            let slow = chaos.strike(
                addr,
                ChaosKind::Slowloris {
                    pause: Duration::from_millis(25),
                    bytes: 200,
                },
                0,
            );
            assert!(slow.connected);
            // The 300ms deadline cuts the drip long before its 200 bytes
            // land; whether the client still catches the 408 depends on
            // RST timing, so the server-side `timeouts` metric below is
            // the authoritative check.
            assert!(
                slow.sent < 200,
                "server serviced the whole drip: slowloris not cut off"
            );
            if let Some(code) = slow.status {
                assert_eq!(code, 408, "slowloris must draw 408 if anything");
            }
            let big = chaos.strike(addr, ChaosKind::Oversized { limit: 1024 * 1024 }, 0);
            assert!(big.connected && big.finished);
            assert_eq!(big.status, Some(431), "oversized head must draw 431");
            assert_healthy(addr);
            let report = handle.shutdown();
            assert!(report.clean);
            assert!(report.metrics.timeouts >= 1, "{:?}", report.metrics);
            assert!(report.metrics.oversized >= 1, "{:?}", report.metrics);
            let _ = std::fs::remove_dir_all(&source);
        }
        // Past the connection cap the daemon sheds with 503+Retry-After
        // instead of queueing without bound — and recovers the moment
        // the holders go away.
        "storm" => {
            let (handle, source) = launch("storm", |cfg| {
                cfg.max_connections = 4;
                cfg.read_timeout = Duration::from_millis(400);
                cfg.header_deadline = Duration::from_millis(2_000);
            });
            let addr = handle.addr();
            // Occupy every slot with half-open requests…
            let holders: Vec<TcpStream> = (0..4)
                .map(|_| {
                    let mut s = TcpStream::connect(addr).unwrap();
                    s.write_all(b"GET /stats HTTP/1.1\r\n").unwrap();
                    s
                })
                .collect();
            std::thread::sleep(Duration::from_millis(100));
            // …then a burst of well-formed clients: every one must get a
            // *prompt* answer, and sheds must be explicit 503s.
            let mut shed = 0;
            for _ in 0..8 {
                let (status, body) = get(addr, "/healthz");
                match status {
                    200 => {
                        assert_eq!(field_u64(&body, "generation"), field_u64(&body, "days"));
                    }
                    503 => shed += 1,
                    other => panic!("storm drew {other}: {body}"),
                }
            }
            assert!(shed >= 1, "cap of 4 with 4 held slots must shed");
            drop(holders);
            // Recovery: holders gone (their reads time out), service resumes.
            for _ in 0..100 {
                if http_get(addr, "/stats", Duration::from_secs(2))
                    .map(|(s, _)| s == 200)
                    .unwrap_or(false)
                {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            assert_healthy(addr);
            let report = handle.shutdown();
            assert!(report.metrics.shed >= 1, "{:?}", report.metrics);
            let _ = std::fs::remove_dir_all(&source);
        }
        // Clients that vanish mid-exchange: before the response, during
        // the response. Logged-and-dropped per connection, never fatal.
        "disconnect" => {
            let (handle, source) = launch("disconnect", |cfg| {
                cfg.read_timeout = Duration::from_millis(100);
            });
            let addr = handle.addr();
            let chaos = ChaosClient::new(0xd15c);
            for salt in 0..8 {
                let hit = chaos.strike(addr, ChaosKind::Disconnect, salt);
                assert!(hit.connected && hit.finished);
                assert_healthy(addr);
            }
            let report = handle.shutdown();
            assert!(report.clean);
            let _ = std::fs::remove_dir_all(&source);
        }
        // Faulted day files arriving during live queries: corrupt and
        // truncated days are quarantined (error budget / integrity
        // trailer), clean days keep publishing, and the control client
        // never sees a torn generation.
        "ingestfaults" => {
            let (handle, source) = launch("ingestfaults", |cfg| {
                // Fast retry exhaustion so quarantine happens in-test.
                cfg.ingest.max_retries = 1;
                cfg.ingest.retry_backoff = Duration::from_millis(5);
            });
            let addr = handle.addr();
            let base = assert_healthy(addr);
            assert_eq!(base, 2);
            // Drop faulted files for days 2 and 3 into the live source.
            let w = world();
            let d0 = epochs::mar2015();
            let inj = FaultInjector::new(0xfa57);
            for (offset, fault) in [
                (2, Fault::CorruptLines { count: 100_000 }),
                (3, Fault::Truncate { keep_pct: 40 }),
            ] {
                let day = d0 + offset;
                let text = inj
                    .apply(day, &w.day_log(day).to_text(), &fault)
                    .expect("fault produces a file");
                std::fs::write(source.join(day_file_name(day)), text).unwrap();
            }
            // While the daemon chews on the poison, hammer the controls.
            for _ in 0..20 {
                assert_healthy(addr);
                std::thread::sleep(Duration::from_millis(10));
            }
            // A clean later day must still get through.
            write_day(&source, &w, 4);
            wait_for_generation(addr, 3);
            let gen = assert_healthy(addr);
            assert_eq!(gen, 3, "two clean days + the late one, poison excluded");
            let report = handle.shutdown();
            assert!(report.clean);
            assert!(
                report.metrics.quarantined_files >= 2,
                "poisoned files must be quarantined: {:?}",
                report.metrics
            );
            assert_eq!(report.metrics.ingested_days, 3);
            let _ = std::fs::remove_dir_all(&source);
        }
        other => panic!("unknown V6CENSUS_CHAOS_KIND {other:?}"),
    }
}

const ALL: &[&str] = &[
    "malformed",
    "slowclient",
    "storm",
    "disconnect",
    "ingestfaults",
];

#[test]
fn chaos_matrix() {
    match std::env::var("V6CENSUS_CHAOS_KIND") {
        Ok(kind) => drill(&kind),
        Err(_) => {
            for kind in ALL {
                drill(kind);
            }
        }
    }
}
