//! Durability proofs for the checkpoint/journal/snapshot pipeline.
//!
//! Three layers, all in-memory and fully deterministic:
//!
//! 1. `crash_point_exploration_proves_recovery` — the exhaustive
//!    explorer: every durability-relevant mutation of a full
//!    ingest→checkpoint→journal→publish run becomes a simulated crash
//!    point, and recovery from each must converge byte-identically to
//!    the uninterrupted run.
//! 2. `journal_torn_at_every_byte_offset_never_mixes` — the journal
//!    property test: truncate `journal.v1` at every byte offset; the
//!    restore sees either the complete day list or a typed torn-journal
//!    error, never a garbled mix, and re-ingest always converges.
//! 3. `crash_fault_matrix` — one drill per [`FaultKind`], selectable
//!    with `V6CENSUS_CRASH_KIND` so CI can run each as its own job:
//!    every injected fault either recovers or fails with a typed
//!    error — never a panic — and a clean restart always rebuilds the
//!    full census.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use v6census_census::crashtest::{self, CrashTestConfig};
use v6census_census::serve::{journal_path, load_journal, write_journal};
use v6census_census::snapshot::Snapshot;
use v6census_census::stream::{IngestConfig, IngestReport, StreamIngestor};
use v6census_core::spatial::DensityClass;
use v6census_core::temporal::{Day, StabilityParams};
use v6census_core::vfs::{FaultFs, FaultPlan, MemFs, Vfs};
use v6census_synth::world::epochs;
use v6census_synth::{World, WorldConfig};

const DAYS: u32 = 4;

fn source_dir() -> PathBuf {
    PathBuf::from("/mem/source")
}

fn state_dir() -> PathBuf {
    PathBuf::from("/mem/state")
}

/// Emits a small synthetic world into a fresh in-memory filesystem and
/// returns it with the list of days it covers.
fn stage_world(seed: u64) -> (Arc<MemFs>, Vec<Day>) {
    let fs = Arc::new(MemFs::new());
    let world = World::standard(WorldConfig { seed, scale: 0.001 });
    world
        .emit_day_logs(fs.as_ref(), &source_dir(), epochs::mar2015(), DAYS)
        .expect("world emission");
    let days = (0..DAYS as i32).map(|i| epochs::mar2015() + i).collect();
    (fs, days)
}

/// Runs a resumable checkpointed ingest of the staged source through
/// the given filesystem (possibly fault-injecting).
fn ingest_over(
    fs: Arc<dyn Vfs>,
    state: &Path,
) -> Result<IngestReport, v6census_census::stream::IngestError> {
    let cfg = IngestConfig {
        checkpoint_dir: Some(state.to_path_buf()),
        resume: true,
        vfs: fs,
        ..IngestConfig::default()
    };
    StreamIngestor::new(cfg).ingest_dir(&source_dir())
}

/// What a host reboot sees: only the durable side of the filesystem.
fn restart(fs: &MemFs) -> Arc<MemFs> {
    Arc::new(MemFs::from_durable(fs.durable_files(), fs.durable_dirs()))
}

fn generation_of(report: &IngestReport) -> u64 {
    Snapshot::build(
        report.census.clone(),
        StabilityParams::nd(3),
        DensityClass::new(8, 64),
    )
    .generation
}

// ---------------------------------------------------------------------------
// 1. Exhaustive crash-point exploration
// ---------------------------------------------------------------------------

#[test]
fn crash_point_exploration_proves_recovery() {
    let report = crashtest::explore(&CrashTestConfig::default());
    assert!(
        report.violations.is_empty(),
        "{} invariant violations across {} crash points:\n{}\nop log:\n{}",
        report.violations.len(),
        report.crash_points,
        report.violations.join("\n"),
        report.op_log.join("\n"),
    );
    assert!(
        report.crash_points >= 30,
        "only {} crash points enumerated (expected >= 30):\n{}",
        report.crash_points,
        report.op_log.join("\n"),
    );
    assert_eq!(report.baseline_days, 6, "baseline should commit 6 days");
    assert_eq!(
        report.baseline_generation, 6,
        "generation == days invariant"
    );
}

// ---------------------------------------------------------------------------
// 2. Journal torn at every byte offset
// ---------------------------------------------------------------------------

#[test]
fn journal_torn_at_every_byte_offset_never_mixes() {
    let (fs, days) = stage_world(77);
    let state = state_dir();
    let baseline = ingest_over(fs.clone(), &state).expect("baseline ingest");
    assert_eq!(generation_of(&baseline), u64::from(DAYS));
    write_journal(fs.as_ref(), &state, &days).expect("journal write");

    let jpath = journal_path(&state);
    let durable = fs.durable_files();
    let dirs = fs.durable_dirs();
    let journal_bytes = durable.get(&jpath).cloned().expect("journal is durable");
    assert!(journal_bytes.len() > 40, "journal should be non-trivial");

    for offset in 0..=journal_bytes.len() {
        let mut files = durable.clone();
        files.insert(jpath.clone(), journal_bytes[..offset].to_vec());
        let torn = Arc::new(MemFs::from_durable(files, dirs.clone()));

        // The journal itself: complete, or a typed error. Never a
        // partial day list — the end marker makes truncation visible.
        match load_journal(torn.as_ref(), &jpath) {
            Ok(listed) => assert_eq!(
                listed, days,
                "offset {offset}: a parseable journal must be the complete one"
            ),
            Err(e) => assert!(
                !e.label().is_empty(),
                "offset {offset}: torn journal must fail with a typed error"
            ),
        }

        // The restore built on it: all of generation g, or a cold start
        // that re-ingests. Never a mix of old and new days.
        let restored = crashtest::census_of_durable(torn.as_ref(), &state);
        let have: Vec<bool> = days.iter().map(|d| restored.has_day(*d)).collect();
        assert!(
            have.iter().all(|&b| b) || have.iter().all(|&b| !b),
            "offset {offset}: restore mixed generations: {have:?}"
        );

        // Recovery: checkpoints survive the torn journal, so re-ingest
        // converges back to generation g from any truncation point.
        let recovered = ingest_over(torn.clone(), &state).expect("recovery ingest");
        for day in &days {
            assert!(
                recovered.census.has_day(*day),
                "offset {offset}: day {day} lost after recovery"
            );
        }
        assert_eq!(
            generation_of(&recovered),
            u64::from(DAYS),
            "offset {offset}: recovery must reach generation g"
        );
    }
}

// ---------------------------------------------------------------------------
// 3. Fault-plan matrix: one drill per FaultKind
// ---------------------------------------------------------------------------

/// Runs one fault drill: stage a world, ingest through a fault-injecting
/// filesystem, then prove a clean restart rebuilds everything. The run
/// under fault may succeed or fail — but only with a typed error, and
/// the fault must actually have fired.
fn drill(kind: &str) {
    let (fs, days) = stage_world(91);
    let state = state_dir();

    // `readcorrupt` needs durable checkpoints to corrupt on read-back,
    // so that drill runs a clean pass first and injects on the resume.
    let (plan, preingest) = match kind {
        "enospc" => ("enospc@64:ckpt", false),
        "shortwrite" => ("shortwrite@16:ckpt", false),
        "eintr" => ("eintr@3:ckpt", false),
        "fsynclie" => ("fsynclie:ckpt", false),
        "renamedrop" => ("renamedrop:ckpt", false),
        "readcorrupt" => ("readcorrupt@33:ckpt", true),
        other => panic!("unknown V6CENSUS_CRASH_KIND {other:?}"),
    };
    if preingest {
        ingest_over(fs.clone(), &state).expect("pre-ingest for read-back drill");
    }
    let plan = FaultPlan::parse(plan).expect("plan parses");
    let faulty = Arc::new(FaultFs::new(fs.clone() as Arc<dyn Vfs>, plan));

    // The drill itself: reaching this far without a panic is half the
    // contract; the other half is that any failure is a typed error.
    match ingest_over(faulty.clone(), &state) {
        Ok(report) => {
            // Lying faults (shortwrite, fsynclie, renamedrop) report
            // success; the damage only shows after a restart.
            assert!(
                report
                    .files
                    .iter()
                    .all(|f| f.errors.iter().all(|e| !e.label().is_empty())),
                "{kind}: recorded errors must all be typed"
            );
        }
        Err(e) => {
            assert!(!e.label().is_empty(), "{kind}: abort must be typed");
            assert!(!e.to_string().is_empty(), "{kind}: abort must render");
        }
    }
    assert!(faulty.injected() >= 1, "{kind}: the fault plan never fired");
    let journal_result = write_journal(faulty.as_ref(), &state, &days);
    if let Err(e) = &journal_result {
        assert!(
            !e.to_string().is_empty(),
            "{kind}: journal abort must render"
        );
    }

    // Recovery: restart from the durable image with no faults. Torn
    // checkpoints are detected (typed), stale tmp files are swept, and
    // every day is rebuilt from checkpoint or source.
    let clean = restart(fs.as_ref());
    let recovered = ingest_over(clean.clone(), &state).expect("clean restart must recover");
    for day in &days {
        assert!(
            recovered.census.has_day(*day),
            "{kind}: day {day} lost after recovery"
        );
    }
    assert_eq!(
        generation_of(&recovered),
        u64::from(DAYS),
        "{kind}: recovery must reach the full generation"
    );
    if kind == "renamedrop" {
        // The dropped rename strands a durable `.tmp` sibling; the
        // startup sweep must count it, not orphan it.
        assert!(
            recovered.stale_tmp_removed >= 1,
            "{kind}: stranded tmp file was not swept"
        );
    }

    // And the recovered state journals + restores cleanly.
    write_journal(clean.as_ref(), &state, &days).expect("journal after recovery");
    let reread = restart(clean.as_ref());
    let restored = crashtest::census_of_durable(reread.as_ref(), &state);
    for day in &days {
        assert!(
            restored.has_day(*day),
            "{kind}: day {day} missing from restored census"
        );
    }
}

#[test]
fn crash_fault_matrix() {
    const ALL: [&str; 6] = [
        "enospc",
        "shortwrite",
        "eintr",
        "fsynclie",
        "renamedrop",
        "readcorrupt",
    ];
    match std::env::var("V6CENSUS_CRASH_KIND") {
        Ok(kind) if !kind.is_empty() && kind != "all" => drill(&kind),
        _ => {
            for kind in ALL {
                drill(kind);
            }
        }
    }
}
