//! End-to-end tests of the supervised analysis engine: panics are
//! contained and reported, hangs trip the stage deadline without hanging
//! the run, trie budgets degrade densify instead of killing it, and a
//! parallel run is equivalent to a serial one.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use v6census_census::supervisor::{run_census, PipelineConfig, UnitStatus};
use v6census_core::quality::Quality;
use v6census_synth::world::epochs;
use v6census_synth::{
    AnalysisFault, AnalysisFaultPlan, FaultInjector, FaultSpec, World, WorldConfig,
};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "v6census-sup-{tag}-{}-{}",
        std::process::id(),
        line!()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a clean 15-day log directory and returns it with a mid-window
/// reference day.
fn clean_logs(tag: &str, seed: u64) -> (PathBuf, v6census_core::temporal::Day) {
    let logs = tempdir(tag);
    let world = World::standard(WorldConfig { seed, scale: 0.002 });
    let first = epochs::mar2015();
    FaultInjector::new(0xabc)
        .write_day_files(
            &world,
            first,
            first + 14,
            &logs,
            &FaultSpec { faults: vec![] },
        )
        .unwrap();
    (logs, first + 7)
}

fn base_config(reference: v6census_core::temporal::Day) -> PipelineConfig {
    PipelineConfig {
        reference: Some(reference),
        ..PipelineConfig::default()
    }
}

#[test]
fn injected_panic_is_contained_and_reported() {
    let (logs, reference) = clean_logs("panic", 41);
    let mut cfg = base_config(reference);
    cfg.supervisor.jobs = 4;
    // Panic on both attempts: the unit must be excluded, never abort.
    let mut faults = AnalysisFaultPlan::none();
    faults.add("stability/", AnalysisFault::PanicShard { attempts: 2 });
    cfg.supervisor.faults = faults;

    let run = run_census(&logs, &cfg).expect("a panicking shard must not abort the run");
    let stage = run
        .manifest
        .stages
        .iter()
        .find(|s| s.stage == "stability")
        .expect("stability stage ran");
    assert_eq!(stage.excluded().len(), 1, "{}", run.manifest.render());
    let excluded = &stage.excluded()[0];
    assert!(matches!(
        &excluded.status,
        UnitStatus::Excluded { reason } if reason.contains("injected panic")
    ));
    // The product is missing, the annotation says why, the run is Partial.
    assert_eq!(run.overall_quality(), Quality::Partial);
    let stability = run.stability.expect("annotation present");
    assert!(stability.value.is_none());
    assert_eq!(stability.quality, Quality::Partial);
    assert!(stability.notes.iter().any(|n| n.contains("excluded")));
    // Other products are untouched.
    assert!(run.table1.unwrap().value.is_some());
    assert!(run.manifest.render().contains("excluded stability/"));
    std::fs::remove_dir_all(&logs).unwrap();
}

#[test]
fn single_panic_is_retried_to_success() {
    let (logs, reference) = clean_logs("retry", 43);
    let mut cfg = base_config(reference);
    cfg.supervisor.jobs = 2;
    // Panic on the first attempt only: the retry must recover exactly.
    let mut faults = AnalysisFaultPlan::none();
    faults.add("table1/", AnalysisFault::PanicShard { attempts: 1 });
    cfg.supervisor.faults = faults;

    let run = run_census(&logs, &cfg).unwrap();
    let stage = run
        .manifest
        .stages
        .iter()
        .find(|s| s.stage == "table1")
        .unwrap();
    assert!(matches!(
        stage.units[0].status,
        UnitStatus::Ok { attempts: 2 }
    ));
    assert_eq!(run.overall_quality(), Quality::Exact);
    let table1 = run.table1.expect("table present");
    assert!(table1.value.is_some());
    assert_eq!(table1.quality, Quality::Exact, "a recovered retry is exact");
    std::fs::remove_dir_all(&logs).unwrap();
}

#[test]
fn hung_unit_trips_the_deadline_not_the_run() {
    let (logs, reference) = clean_logs("hang", 47);
    let mut cfg = base_config(reference);
    cfg.supervisor.jobs = 2;
    cfg.supervisor.stage_deadline = Some(Duration::from_millis(300));
    // Hang far beyond the deadline: the watchdog must abandon the worker.
    let mut faults = AnalysisFaultPlan::none();
    faults.add("stability/", AnalysisFault::HangShard { millis: 120_000 });
    cfg.supervisor.faults = faults;

    let start = Instant::now();
    let run = run_census(&logs, &cfg).expect("a hung shard must not hang the run");
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "run returned promptly, not after the 120s hang"
    );
    let stage = run
        .manifest
        .stages
        .iter()
        .find(|s| s.stage == "stability")
        .unwrap();
    assert!(stage.deadline_expired);
    assert_eq!(stage.units[0].status, UnitStatus::TimedOut);
    assert_eq!(run.overall_quality(), Quality::Partial);
    let stability = run.stability.expect("annotation present");
    assert!(stability.value.is_none());
    assert_eq!(stability.quality, Quality::Partial);
    assert!(run.manifest.render().contains("timed-out stability/"));
    std::fs::remove_dir_all(&logs).unwrap();
}

#[test]
fn trie_budget_degrades_densify_with_sound_counts() {
    let (logs, reference) = clean_logs("budget", 53);

    // Unbudgeted run, for ground truth.
    let cfg = base_config(reference);
    let full = run_census(&logs, &cfg).unwrap();
    let exact = full.dense.expect("dense present");
    assert_eq!(exact.quality, Quality::Exact);

    // Tightly budgeted run: must degrade, not fail.
    let mut cfg = base_config(reference);
    cfg.supervisor.max_trie_nodes = 32;
    let run = run_census(&logs, &cfg).unwrap();
    assert_eq!(run.overall_quality(), Quality::Degraded);
    let dense = run.dense.expect("dense present");
    assert_eq!(dense.quality, Quality::Degraded, "{:?}", dense.notes);
    assert!(dense.notes.iter().any(|n| n.contains("trie budget 32")));
    let stage = run
        .manifest
        .stages
        .iter()
        .find(|s| s.stage == "densify")
        .unwrap();
    assert!(stage.degraded() > 0);
    assert_eq!(stage.quality(), Quality::Degraded);

    // Soundness: degradation may only coarsen or drop blocks, never
    // fabricate them. Every reported block still meets the n@/p density
    // bar at its own length — count ≥ n · 2^(p − len) — with counts that
    // are real observed addresses (folding conserves subtree sums).
    let (n, p) = (cfg.dense_n, cfg.dense_p);
    for dp in exact.value.iter().chain(dense.value.iter()) {
        let len = dp.prefix.len();
        assert!(len <= p, "block {} finer than the class", dp.prefix);
        let bar = (n as u128) << (p - len);
        assert!(
            (dp.count as u128) >= bar,
            "block {} with {} addrs under the {}@/{} bar ({bar})",
            dp.prefix,
            dp.count,
            n,
            p
        );
    }
    std::fs::remove_dir_all(&logs).unwrap();
}

#[test]
fn parallel_run_is_equivalent_to_serial() {
    let (logs, reference) = clean_logs("jobs", 59);

    let mut serial_cfg = base_config(reference);
    serial_cfg.supervisor.jobs = 1;
    let serial = run_census(&logs, &serial_cfg).unwrap();

    let mut parallel_cfg = base_config(reference);
    parallel_cfg.supervisor.jobs = 8;
    let parallel = run_census(&logs, &parallel_cfg).unwrap();

    // The deterministic projection of the manifests is identical; only
    // wall times may differ.
    assert_eq!(
        serial.manifest.equivalence_key(),
        parallel.manifest.equivalence_key()
    );
    // Every analysis product is byte-identical.
    assert_eq!(
        serial.table1.as_ref().unwrap().value,
        parallel.table1.as_ref().unwrap().value
    );
    let (s, p) = (
        serial.stability.as_ref().unwrap().value.as_ref().unwrap(),
        parallel.stability.as_ref().unwrap().value.as_ref().unwrap(),
    );
    assert_eq!(s.quality, p.quality);
    assert_eq!(
        s.stable.iter().collect::<Vec<_>>(),
        p.stable.iter().collect::<Vec<_>>()
    );
    assert_eq!(
        serial.dense.as_ref().unwrap().value,
        parallel.dense.as_ref().unwrap().value
    );
    assert_eq!(serial.overall_quality(), Quality::Exact);
    assert_eq!(parallel.overall_quality(), Quality::Exact);
    // And the per-file ingest health agrees too (clean logs: all ingested).
    assert_eq!(serial.report.files.len(), parallel.report.files.len());
    for (a, b) in serial.report.files.iter().zip(&parallel.report.files) {
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.day, b.day);
    }
    std::fs::remove_dir_all(&logs).unwrap();
}

#[test]
fn slow_shards_finish_within_deadline() {
    let (logs, reference) = clean_logs("slow", 61);
    let mut cfg = base_config(reference);
    cfg.supervisor.jobs = 4;
    cfg.supervisor.stage_deadline = Some(Duration::from_secs(30));
    // Slow (but not hung) ingest units: supervision must not misfire.
    let mut faults = AnalysisFaultPlan::none();
    faults.add("ingest/", AnalysisFault::SlowShard { millis: 20 });
    cfg.supervisor.faults = faults;

    let run = run_census(&logs, &cfg).unwrap();
    assert_eq!(run.overall_quality(), Quality::Exact);
    let stage = &run.manifest.stages[0];
    assert_eq!(stage.stage, "ingest");
    assert!(!stage.deadline_expired);
    assert_eq!(stage.ok(), stage.units.len());
    std::fs::remove_dir_all(&logs).unwrap();
}
