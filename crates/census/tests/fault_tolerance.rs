//! Acceptance tests for fault-tolerant streaming ingestion: a synthetic
//! multi-day census with injected corruption, truncation, duplication,
//! mislabeling, and missing days must complete without panicking, report
//! every fault with the right [`IngestError`] variant, respect the error
//! budget, and — via checkpoints — resume after a simulated mid-run kill
//! to the exact same census an uninterrupted run produces.

use std::path::{Path, PathBuf};
use v6census_census::stream::{
    checkpoint_path, load_checkpoint, DuplicatePolicy, ErrorMode, FileOutcome, IngestConfig,
    IngestError, StreamIngestor,
};
use v6census_census::tables::{table1, EpochSpec};
use v6census_core::temporal::{Day, GapPolicy, StabilityParams, VerdictQuality};
use v6census_synth::faults::day_file_name;
use v6census_synth::world::epochs;
use v6census_synth::{Fault, FaultInjector, FaultSpec, World, WorldConfig};

const SEED: u64 = 0x7e57_fa17; // deterministic fixture seed

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "v6census-ft-{tag}-{}-{}",
        std::process::id(),
        line!()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes the shared 32-day faulty fixture: one corrupt, one truncated,
/// one duplicated, one mislabeled, one missing day.
fn write_fixture(dir: &Path) -> (World, Day, Day) {
    let world = World::standard(WorldConfig {
        seed: 19,
        scale: 0.002,
    });
    let first = epochs::mar2015();
    let last = first + 31;
    let spec = FaultSpec {
        faults: vec![
            (first + 3, Fault::CorruptLines { count: 4 }),
            (first + 8, Fault::Truncate { keep_pct: 50 }),
            (first + 12, Fault::DuplicateDay),
            (first + 17, Fault::ShiftHeaderDay { offset: 2 }),
            (first + 22, Fault::DropDay),
        ],
    };
    let injector = FaultInjector::new(SEED);
    let manifest = injector
        .write_day_files(&world, first, last, dir, &spec)
        .unwrap();
    assert_eq!(manifest.applied.len(), 5);
    (world, first, last)
}

#[test]
fn faulty_census_completes_and_reports_every_fault() {
    let logs = tempdir("logs");
    let (_, first, last) = write_fixture(&logs);
    let ingestor = StreamIngestor::new(IngestConfig {
        max_bad_ratio: 0.05,
        ..IngestConfig::default()
    });
    let report = ingestor.ingest_dir(&logs).unwrap();

    // 32 planned days, one never written, one duplicated => 32 files.
    assert_eq!(report.files.len(), 32);

    // Corrupt day: ingested, with one BadLine per damaged line.
    let corrupt = report
        .files
        .iter()
        .find(|f| f.day == first + 3)
        .expect("corrupt day file present");
    assert_eq!(corrupt.outcome, FileOutcome::Ingested);
    assert_eq!(corrupt.bad_lines, 4);
    let bad: Vec<&IngestError> = corrupt
        .errors
        .iter()
        .filter(|e| e.label() == "bad-line")
        .collect();
    assert_eq!(bad.len(), 4);
    for e in &bad {
        let IngestError::BadLine { line, reason, .. } = e else {
            panic!("expected BadLine, got {e:?}");
        };
        assert!(*line > 2, "data lines start after the two header lines");
        assert!(
            reason.contains("address") || reason.contains("hits"),
            "{reason}"
        );
    }
    assert!(report.census.has_day(first + 3), "under-budget day is kept");

    // Truncated day: failed with the Truncated variant; day is a gap.
    let truncated = report.files.iter().find(|f| f.day == first + 8).unwrap();
    assert_eq!(truncated.outcome, FileOutcome::Failed);
    assert!(matches!(
        truncated.errors.last(),
        Some(IngestError::Truncated { expected, got, .. }) if got < expected
    ));
    assert!(!report.census.has_day(first + 8));

    // Duplicated day: exactly one delivery ingested, the other rejected
    // with DuplicateDay.
    let dups: Vec<_> = report
        .files
        .iter()
        .filter(|f| f.day == first + 12)
        .collect();
    assert_eq!(dups.len(), 2);
    assert_eq!(
        dups.iter()
            .filter(|f| f.outcome == FileOutcome::Ingested)
            .count(),
        1
    );
    let rejected = dups
        .iter()
        .find(|f| f.outcome == FileOutcome::Failed)
        .unwrap();
    assert!(matches!(
        rejected.errors.last(),
        Some(IngestError::DuplicateDay { day, .. }) if *day == first + 12
    ));

    // Mislabeled header: DayMismatch, not ingested.
    let shifted = report.files.iter().find(|f| f.day == first + 17).unwrap();
    assert_eq!(shifted.outcome, FileOutcome::Failed);
    assert!(matches!(
        shifted.errors.last(),
        Some(IngestError::DayMismatch { file_day, header_day, .. })
            if *file_day == first + 17 && *header_day == first + 19
    ));

    // Gaps: the dropped day plus the two failed days.
    assert_eq!(report.gaps, vec![first + 8, first + 17, first + 22]);
    let errors = report.errors();
    assert!(errors
        .iter()
        .any(|e| matches!(e, IngestError::MissingDay { day } if *day == first + 22)));

    // 32 planned days minus 3 gaps are in the census.
    assert_eq!(report.census.days().count(), 29);
    assert_eq!(report.census.days().next(), Some(first));
    assert_eq!(report.census.days().last(), Some(last));

    // The gap-aware classifier sees the holes: a reference day whose
    // window spans the gaps gets a widened window, not silent inactivity.
    let params = StabilityParams::nd(3);
    let verdict = report.census.other_daily().stable_on_gapped(
        first + 15,
        &params,
        GapPolicy::Widen { max_extra: 7 },
    );
    assert!(matches!(
        verdict.quality,
        VerdictQuality::Widened {
            back_extra: 1,
            fwd_extra: 2
        }
    ));

    std::fs::remove_dir_all(&logs).unwrap();
}

#[test]
fn error_budget_zero_rejects_the_corrupt_day() {
    let logs = tempdir("budget");
    let (_, first, _) = write_fixture(&logs);
    let ingestor = StreamIngestor::new(IngestConfig {
        max_bad_ratio: 0.0,
        ..IngestConfig::default()
    });
    let report = ingestor.ingest_dir(&logs).unwrap();
    let corrupt = report.files.iter().find(|f| f.day == first + 3).unwrap();
    assert_eq!(corrupt.outcome, FileOutcome::Failed);
    assert!(matches!(
        corrupt.errors.last(),
        Some(IngestError::ErrorBudgetExceeded { bad: 4, .. })
    ));
    assert!(
        !report.census.has_day(first + 3),
        "over-budget day is dropped"
    );
    assert!(report.gaps.contains(&(first + 3)));
    std::fs::remove_dir_all(&logs).unwrap();
}

#[test]
fn strict_mode_aborts_on_first_fault() {
    let logs = tempdir("strict");
    write_fixture(&logs);
    let ingestor = StreamIngestor::new(IngestConfig {
        mode: ErrorMode::Strict,
        ..IngestConfig::default()
    });
    let err = match ingestor.ingest_dir(&logs) {
        Err(e) => e,
        Ok(_) => panic!("strict mode must abort on the corrupt day"),
    };
    assert_eq!(err.label(), "bad-line", "the corrupt day aborts the run");
    std::fs::remove_dir_all(&logs).unwrap();
}

#[test]
fn merge_policy_accumulates_duplicate_deliveries() {
    let logs = tempdir("merge");
    let (_, first, _) = write_fixture(&logs);
    let ingestor = StreamIngestor::new(IngestConfig {
        max_bad_ratio: 0.05,
        on_duplicate: DuplicatePolicy::Merge,
        ..IngestConfig::default()
    });
    let report = ingestor.ingest_dir(&logs).unwrap();
    let dups: Vec<_> = report
        .files
        .iter()
        .filter(|f| f.day == first + 12)
        .collect();
    assert_eq!(
        dups.iter()
            .filter(|f| f.outcome == FileOutcome::Ingested)
            .count(),
        2,
        "merge policy ingests both deliveries"
    );
    // Identical deliveries: merged hits double, address set unchanged.
    let merged = report.census.summary(first + 12).unwrap();
    let reject = StreamIngestor::new(IngestConfig {
        max_bad_ratio: 0.05,
        ..IngestConfig::default()
    })
    .ingest_dir(&logs)
    .unwrap();
    let single = reject.census.summary(first + 12).unwrap();
    assert_eq!(merged.total(), single.total());
    assert_eq!(merged.hits, 2 * single.hits);
    std::fs::remove_dir_all(&logs).unwrap();
}

#[test]
fn kill_and_resume_reproduces_the_uninterrupted_census_exactly() {
    let logs = tempdir("resume-logs");
    let (_, first, _) = write_fixture(&logs);
    let ckpts = tempdir("resume-ckpts");

    let base = IngestConfig {
        max_bad_ratio: 0.05,
        checkpoint_dir: Some(ckpts.clone()),
        ..IngestConfig::default()
    };

    // Reference run: uninterrupted, no checkpoints involved.
    let uninterrupted = StreamIngestor::new(IngestConfig {
        checkpoint_dir: None,
        ..base.clone()
    })
    .ingest_dir(&logs)
    .unwrap();

    // Interrupted run: killed after 10 ingested days...
    let killed = StreamIngestor::new(IngestConfig {
        max_days: Some(10),
        ..base.clone()
    })
    .ingest_dir(&logs)
    .unwrap();
    assert_eq!(killed.census.days().count(), 10);
    assert!(
        killed
            .files
            .iter()
            .any(|f| f.outcome == FileOutcome::Skipped),
        "the kill leaves unprocessed files behind"
    );
    for day in killed.census.days() {
        assert!(checkpoint_path(&ckpts, day).exists(), "{day} checkpointed");
    }

    // ...then resumed from the checkpoints.
    let resumed = StreamIngestor::new(IngestConfig {
        resume: true,
        ..base.clone()
    })
    .ingest_dir(&logs)
    .unwrap();
    let from_ckpt = resumed
        .files
        .iter()
        .filter(|f| f.outcome == FileOutcome::FromCheckpoint)
        .count();
    assert!(
        from_ckpt >= 10,
        "resume reuses the checkpoints, got {from_ckpt}"
    );

    // The resumed census is *identical*: same days, and byte-identical
    // Table 1 / stability output.
    let udays: Vec<Day> = uninterrupted.census.days().collect();
    let rdays: Vec<Day> = resumed.census.days().collect();
    assert_eq!(udays, rdays);

    let spec = [EpochSpec {
        label: "reference",
        reference: first + 15,
    }];
    let (ud, uw) = table1(&uninterrupted.census, &spec);
    let (rd, rw) = table1(&resumed.census, &spec);
    assert_eq!(
        ud.render(),
        rd.render(),
        "daily Table 1 must be byte-identical"
    );
    assert_eq!(
        uw.render(),
        rw.render(),
        "weekly Table 1 must be byte-identical"
    );

    let params = StabilityParams::nd(3);
    let policy = GapPolicy::Widen { max_extra: 7 };
    let uv = uninterrupted
        .census
        .other_daily()
        .stable_on_gapped(first + 15, &params, policy);
    let rv = resumed
        .census
        .other_daily()
        .stable_on_gapped(first + 15, &params, policy);
    assert_eq!(uv.quality, rv.quality);
    assert_eq!(uv.stable.len(), rv.stable.len());
    assert!(
        uv.stable.iter().eq(rv.stable.iter()),
        "stable sets must match"
    );

    // A checkpoint round-trips to the exact per-day summary.
    let (day, entries) =
        load_checkpoint(&v6census_core::vfs::RealFs, &checkpoint_path(&ckpts, first)).unwrap();
    assert_eq!(day, first);
    let direct = uninterrupted.census.summary(first).unwrap();
    let rebuilt = v6census_census::DaySummary::from_entries(day, entries);
    assert_eq!(rebuilt.total(), direct.total());
    assert_eq!(rebuilt.hits, direct.hits);

    std::fs::remove_dir_all(&logs).unwrap();
    std::fs::remove_dir_all(&ckpts).unwrap();
}

#[test]
fn clean_fixture_has_no_errors() {
    let logs = tempdir("clean");
    let world = World::standard(WorldConfig {
        seed: 23,
        scale: 0.002,
    });
    let first = epochs::mar2015();
    FaultInjector::new(SEED)
        .write_day_files(&world, first, first + 4, &logs, &FaultSpec::default())
        .unwrap();
    assert!(logs.join(day_file_name(first)).exists());
    let report = StreamIngestor::new(IngestConfig::default())
        .ingest_dir(&logs)
        .unwrap();
    assert!(report.errors().is_empty(), "{:?}", report.errors());
    assert!(report.gaps.is_empty());
    assert_eq!(report.census.days().count(), 5);
    std::fs::remove_dir_all(&logs).unwrap();
}
