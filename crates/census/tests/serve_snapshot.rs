//! Snapshot-semantics tests for the serving daemon: reader threads
//! hammer the query surface while ingest publishes new days, and every
//! response must be internally consistent with exactly one snapshot
//! generation — `generation == days`, `stable <= active`, generations
//! monotone per reader. Plus journal restore/recovery tests: a restart
//! serves the pre-shutdown snapshot from the journal alone, and a torn
//! journal recovers by re-ingesting from source.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use v6census_census::serve::{journal_path, spawn, ServeConfig};
use v6census_synth::chaos::http_get;
use v6census_synth::faults::day_file_name;
use v6census_synth::world::epochs;
use v6census_synth::{World, WorldConfig};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("v6census-snap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn world() -> World {
    World::standard(WorldConfig {
        seed: 41,
        scale: 0.002,
    })
}

fn write_day(dir: &Path, w: &World, offset: i32) {
    let day = epochs::mar2015() + offset;
    std::fs::write(dir.join(day_file_name(day)), w.day_log(day).to_text()).unwrap();
}

fn fast_config(source: PathBuf, state: Option<PathBuf>) -> ServeConfig {
    ServeConfig {
        source_dir: source,
        state_dir: state,
        poll_interval: Duration::from_millis(20),
        ..ServeConfig::default()
    }
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http_get(addr, path, Duration::from_secs(5)).expect("daemon must answer")
}

/// Crude JSON number extraction — the daemon emits flat, known-shape
/// JSON, so scanning for `"key":<digits>` is enough for assertions.
fn field_u64(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {body}"))
}

fn wait_for_generation(addr: SocketAddr, want: u64) {
    for _ in 0..600 {
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        if field_u64(&body, "generation") >= want {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never reached generation {want}");
}

#[test]
fn readers_never_see_a_torn_snapshot_during_publishes() {
    let source = tempdir("atomic");
    let w = world();
    write_day(&source, &w, 0);
    let handle = spawn(fast_config(source.clone(), None)).unwrap();
    let addr = handle.addr();
    wait_for_generation(addr, 1);

    // Readers hammer every endpoint; each response must satisfy the
    // invariants on its own, and generations must be monotone per reader.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|i| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_gen = 0u64;
                let mut checks = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let path = match checks % 4 {
                        0 => "/stats",
                        1 => "/stable/2001:db8::1",
                        2 => "/classify/2001:db8::/32",
                        _ => "/healthz",
                    };
                    let (status, body) = get(addr, path);
                    assert_eq!(status, 200, "reader {i} got {status} on {path}: {body}");
                    let gen = field_u64(&body, "generation");
                    let days = field_u64(&body, "days");
                    assert_eq!(gen, days, "torn snapshot on {path}: {body}");
                    assert!(
                        gen >= last_gen,
                        "generation went backwards ({last_gen} -> {gen})"
                    );
                    if path == "/stats" {
                        assert!(
                            field_u64(&body, "stable") <= field_u64(&body, "active"),
                            "stable > active: {body}"
                        );
                    }
                    last_gen = gen;
                    checks += 1;
                }
                checks
            })
        })
        .collect();

    // Publish five more days while the readers run.
    for offset in 1..=5 {
        write_day(&source, &w, offset);
        std::thread::sleep(Duration::from_millis(60));
    }
    wait_for_generation(addr, 6);
    stop.store(true, Ordering::Release);
    let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 20, "readers barely ran ({total} checks)");

    let report = handle.shutdown();
    assert!(report.clean);
    assert_eq!(report.generation, 6);
    assert_eq!(report.metrics.ingested_days, 6);
    let _ = std::fs::remove_dir_all(&source);
}

#[test]
fn restart_serves_the_journaled_snapshot_without_source() {
    let source = tempdir("resume-src");
    let state = tempdir("resume-state");
    let w = world();
    for offset in 0..3 {
        write_day(&source, &w, offset);
    }
    let handle = spawn(fast_config(source.clone(), Some(state.clone()))).unwrap();
    wait_for_generation(handle.addr(), 3);
    let (_, before) = get(handle.addr(), "/stats");
    assert!(handle.shutdown().clean);

    // Restart against an EMPTY source: everything must come back from
    // the journal + checkpoints alone, and be served immediately.
    let empty = tempdir("resume-empty");
    let handle = spawn(fast_config(empty.clone(), Some(state.clone()))).unwrap();
    assert!(handle.is_ready(), "journaled state must be ready at spawn");
    assert_eq!(handle.snapshot().generation, 3);
    let (status, after) = get(handle.addr(), "/stats");
    assert_eq!(status, 200);
    assert_eq!(field_u64(&after, "generation"), 3);
    assert_eq!(
        field_u64(&after, "active"),
        field_u64(&before, "active"),
        "restored census must match the pre-shutdown one"
    );
    let report = handle.shutdown();
    assert_eq!(report.metrics.resumed_days, 3);
    assert_eq!(report.metrics.recovered_errors, 0);
    for d in [&source, &state, &empty] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn torn_journal_recovers_by_reingesting_from_source() {
    let source = tempdir("torn-src");
    let state = tempdir("torn-state");
    let w = world();
    for offset in 0..3 {
        write_day(&source, &w, offset);
    }
    let handle = spawn(fast_config(source.clone(), Some(state.clone()))).unwrap();
    wait_for_generation(handle.addr(), 3);
    assert!(handle.shutdown().clean);

    // Corrupt the journal the way a dying disk would (the atomic rename
    // itself can't produce this): chop off the end marker.
    let text = std::fs::read_to_string(journal_path(&state)).unwrap();
    let torn: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
    std::fs::write(journal_path(&state), torn).unwrap();

    let handle = spawn(fast_config(source.clone(), Some(state.clone()))).unwrap();
    // Nothing restored — but the daemon recovers by re-ingesting.
    wait_for_generation(handle.addr(), 3);
    let report = handle.shutdown();
    assert_eq!(report.generation, 3);
    assert_eq!(report.metrics.resumed_days, 0);
    assert!(report.metrics.recovered_errors >= 1);
    assert_eq!(report.metrics.ingested_days, 3);
    for d in [&source, &state] {
        let _ = std::fs::remove_dir_all(d);
    }
}
