//! The fault matrix: one drill per fault kind, selectable with the
//! `V6CENSUS_FAULT_KIND` environment variable so CI can run each kind as
//! its own job under a hard timeout. With the variable unset, every kind
//! runs in sequence.
//!
//! Each drill asserts the same contract: the run *completes* — no abort,
//! no hang — and the manifest/quality honestly reflect what the fault
//! cost.

use std::path::PathBuf;
use std::time::Duration;
use v6census_census::supervisor::{run_census, PipelineConfig};
use v6census_core::quality::Quality;
use v6census_core::temporal::Day;
use v6census_synth::world::epochs;
use v6census_synth::{
    AnalysisFault, AnalysisFaultPlan, Fault, FaultInjector, FaultSpec, World, WorldConfig,
};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("v6census-matrix-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_logs(tag: &str, seed: u64, spec: &FaultSpec) -> (PathBuf, Day) {
    let logs = tempdir(tag);
    let world = World::standard(WorldConfig { seed, scale: 0.002 });
    let first = epochs::mar2015();
    FaultInjector::new(0xfa17)
        .write_day_files(&world, first, first + 14, &logs, spec)
        .unwrap();
    (logs, first + 7)
}

fn config(reference: Day) -> PipelineConfig {
    PipelineConfig {
        reference: Some(reference),
        ..PipelineConfig::default()
    }
}

/// One drill. Every arm must leave the process alive and return a
/// manifest that names the damage.
fn drill(kind: &str) {
    match kind {
        "panic" => {
            let (logs, reference) = write_logs("panic", 67, &FaultSpec { faults: vec![] });
            let mut cfg = config(reference);
            cfg.supervisor.jobs = 4;
            let mut faults = AnalysisFaultPlan::none();
            faults.add("densify/", AnalysisFault::PanicShard { attempts: 2 });
            cfg.supervisor.faults = faults;
            let run = run_census(&logs, &cfg).expect("panic drill must complete");
            assert_eq!(run.overall_quality(), Quality::Partial);
            assert!(run.manifest.render().contains("excluded densify/"));
            std::fs::remove_dir_all(&logs).unwrap();
        }
        "hang" => {
            let (logs, reference) = write_logs("hang", 71, &FaultSpec { faults: vec![] });
            let mut cfg = config(reference);
            cfg.supervisor.jobs = 2;
            cfg.supervisor.stage_deadline = Some(Duration::from_millis(400));
            let mut faults = AnalysisFaultPlan::none();
            faults.add("table1/", AnalysisFault::HangShard { millis: 300_000 });
            cfg.supervisor.faults = faults;
            let run = run_census(&logs, &cfg).expect("hang drill must complete");
            assert_eq!(run.overall_quality(), Quality::Partial);
            assert!(run.manifest.render().contains("timed-out table1/"));
            std::fs::remove_dir_all(&logs).unwrap();
        }
        "slow" => {
            let (logs, reference) = write_logs("slow", 73, &FaultSpec { faults: vec![] });
            let mut cfg = config(reference);
            cfg.supervisor.jobs = 4;
            cfg.supervisor.stage_deadline = Some(Duration::from_secs(60));
            let mut faults = AnalysisFaultPlan::none();
            faults.add("ingest/", AnalysisFault::SlowShard { millis: 15 });
            cfg.supervisor.faults = faults;
            let run = run_census(&logs, &cfg).expect("slow drill must complete");
            assert_eq!(
                run.overall_quality(),
                Quality::Exact,
                "slow-but-finishing shards must not be punished"
            );
            std::fs::remove_dir_all(&logs).unwrap();
        }
        "oversized-blob" => {
            // A valid but adversarially dense day file plus a trie node
            // budget: densify must degrade to a coarser level, not die.
            let first = epochs::mar2015();
            let spec = FaultSpec {
                faults: vec![(first + 7, Fault::OversizedPrefixBlob { addrs: 3_000 })],
            };
            let (logs, reference) = write_logs("blob", 79, &spec);
            let mut cfg = config(reference);
            cfg.supervisor.max_trie_nodes = 256;
            let run = run_census(&logs, &cfg).expect("blob drill must complete");
            assert_eq!(run.overall_quality(), Quality::Degraded);
            let dense = run.dense.as_ref().expect("dense present");
            assert!(dense.notes.iter().any(|n| n.contains("trie budget")));
            std::fs::remove_dir_all(&logs).unwrap();
        }
        "stream" => {
            // PR 1's file-level faults, through the supervised pipeline.
            let first = epochs::mar2015();
            let spec = FaultSpec {
                faults: vec![
                    (first + 2, Fault::CorruptLines { count: 2 }),
                    (first + 5, Fault::Truncate { keep_pct: 40 }),
                    (first + 9, Fault::DropDay),
                ],
            };
            let (logs, reference) = write_logs("stream", 83, &spec);
            let mut cfg = config(reference);
            cfg.ingest.max_bad_ratio = 0.05;
            cfg.supervisor.jobs = 4;
            let run = run_census(&logs, &cfg).expect("stream drill must complete");
            // The truncated day fails its budget and the dropped day is a
            // gap: stability answers with a widened window, not silence.
            assert!(!run.overall_quality().is_exact());
            assert!(run
                .stability
                .as_ref()
                .and_then(|s| s.value.as_ref())
                .is_some());
            std::fs::remove_dir_all(&logs).unwrap();
        }
        other => panic!("unknown V6CENSUS_FAULT_KIND {other:?}"),
    }
}

#[test]
fn fault_matrix() {
    const ALL: [&str; 5] = ["panic", "hang", "slow", "oversized-blob", "stream"];
    match std::env::var("V6CENSUS_FAULT_KIND") {
        Ok(kind) if !kind.is_empty() && kind != "all" => drill(&kind),
        _ => {
            for kind in ALL {
                drill(kind);
            }
        }
    }
}
