//! Process-level contract of `v6census serve`: port discovery via the
//! `listening on` line, live queries against the spawned binary, the
//! exit-code contract for clean runs and bad flags — and the crash
//! drill: a daemon killed with SIGKILL mid-life restarts from its
//! journal and serves the pre-crash snapshot without its source logs.

use std::io::{BufRead as _, BufReader, Read as _};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

use v6census_cli::{EXIT_DATA_ERROR, EXIT_OK, EXIT_USAGE};
use v6census_synth::chaos::http_get;
use v6census_synth::faults::day_file_name;
use v6census_synth::world::epochs;
use v6census_synth::{World, WorldConfig};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_v6census"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("v6census-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_days(dir: &Path, count: i32) {
    let w = World::standard(WorldConfig {
        seed: 47,
        scale: 0.002,
    });
    for offset in 0..count {
        let day = epochs::mar2015() + offset;
        std::fs::write(dir.join(day_file_name(day)), w.day_log(day).to_text()).unwrap();
    }
}

/// Spawns the daemon and reads the advertised address off stdout. The
/// returned reader holds the rest of the stdout stream — the post-drain
/// summary arrives there, not via `wait_with_output` (stdout is taken).
fn spawn_daemon(args: &[&str]) -> (Child, SocketAddr, BufReader<ChildStdout>) {
    let mut child = bin()
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("bad announce line {line:?}"))
        .parse()
        .unwrap();
    (child, addr, reader)
}

/// Drains the daemon (stdin EOF), waits for exit, and returns the
/// summary it printed plus the exit status code.
fn drain_and_collect(
    mut child: Child,
    mut reader: BufReader<ChildStdout>,
) -> (Option<i32>, String) {
    drop(child.stdin.take());
    let mut summary = String::new();
    reader.read_to_string(&mut summary).unwrap();
    let status = child.wait().unwrap();
    (status.code(), summary)
}

fn field_u64(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

fn wait_for_generation(addr: SocketAddr, want: u64) {
    for _ in 0..600 {
        if let Ok((200, body)) = http_get(addr, "/healthz", Duration::from_secs(2)) {
            if field_u64(&body, "generation") >= want {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never reached generation {want}");
}

#[test]
fn serves_queries_and_exits_clean_on_stdin_eof() {
    let source = tempdir("basic-src");
    write_days(&source, 3);
    let routes = source.join("routes.txt");
    std::fs::write(&routes, "2001:db8::/32 64496\n").unwrap();
    let (child, addr, reader) = spawn_daemon(&[
        "--dir",
        &source.to_string_lossy(),
        "--routing",
        &routes.to_string_lossy(),
        "--poll-ms",
        "25",
    ]);
    wait_for_generation(addr, 3);

    let (status, body) = http_get(addr, "/stats", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(field_u64(&body, "generation"), 3);
    assert_eq!(field_u64(&body, "days"), 3);
    assert!(body.contains("\"schemes\""), "{body}");

    let (status, body) = http_get(addr, "/classify/2001:db8::/32", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    assert!(
        body.contains("\"asn\":64496"),
        "routing must attribute: {body}"
    );
    assert!(body.contains("\"signature\""), "{body}");

    let (status, body) = http_get(addr, "/stable/2001:db8::1", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"active\":"), "{body}");

    let (status, _) = http_get(addr, "/readyz", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    let (status, _) = http_get(addr, "/no/such", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_get(addr, "/stable/not-an-addr", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 400);

    // Closing stdin asks for a graceful drain; clean drain exits 0.
    let (code, summary) = drain_and_collect(child, reader);
    assert_eq!(code, Some(EXIT_OK));
    assert!(summary.contains("== serve summary =="), "{summary}");
    assert!(summary.contains("drain: clean"), "{summary}");
    let _ = std::fs::remove_dir_all(&source);
}

#[test]
fn sigkill_mid_life_restart_resumes_from_journal() {
    let source = tempdir("kill-src");
    let state = tempdir("kill-state");
    write_days(&source, 3);
    let (mut child, addr, _reader) = spawn_daemon(&[
        "--dir",
        &source.to_string_lossy(),
        "--state",
        &state.to_string_lossy(),
        "--poll-ms",
        "25",
    ]);
    wait_for_generation(addr, 3);
    let (_, before) = http_get(addr, "/stats", Duration::from_secs(5)).unwrap();

    // kill -9: no drain, no journal flush — whatever is on disk is what
    // the next life gets.
    child.kill().unwrap();
    let _ = child.wait();

    // Restart against an EMPTY source: the journal + checkpoints alone
    // must bring back the full pre-crash census, served immediately.
    let empty = tempdir("kill-empty");
    let (child, addr, reader) = spawn_daemon(&[
        "--dir",
        &empty.to_string_lossy(),
        "--state",
        &state.to_string_lossy(),
        "--poll-ms",
        "25",
    ]);
    let (status, body) = http_get(addr, "/readyz", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200, "journaled state must be ready at once: {body}");
    let (status, after) = http_get(addr, "/stats", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(field_u64(&after, "generation"), 3);
    assert_eq!(
        field_u64(&after, "active"),
        field_u64(&before, "active"),
        "pre-crash snapshot must be served"
    );
    let (code, summary) = drain_and_collect(child, reader);
    assert_eq!(code, Some(EXIT_OK));
    assert!(summary.contains("3 days resumed from journal"), "{summary}");
    for d in [&source, &state, &empty] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn run_for_ms_mode_and_flag_errors() {
    let source = tempdir("flags-src");
    write_days(&source, 1);
    // --run-for-ms: daemon exits on its own, cleanly.
    let mut child = bin()
        .arg("serve")
        .args([
            "--dir",
            &source.to_string_lossy(),
            "--run-for-ms",
            "300",
            "--poll-ms",
            "25",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    assert!(line.starts_with("listening on "), "{line:?}");
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(EXIT_OK));

    // Missing directory is a data error (1); bad flag values too; an
    // unbindable address is a startup failure (1).
    let out = bin().arg("serve").output().unwrap();
    assert_eq!(out.status.code(), Some(EXIT_DATA_ERROR));
    let out = bin()
        .arg("serve")
        .args(["--dir", &source.to_string_lossy(), "--max-connections", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(EXIT_DATA_ERROR));
    let out = bin()
        .arg("serve")
        .args(["--dir", &source.to_string_lossy(), "--bind", "256.0.0.1:1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(EXIT_DATA_ERROR));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot bind"));

    // `help` documents the serve surface.
    let out = bin().arg("help").output().unwrap();
    assert_eq!(out.status.code(), Some(EXIT_OK));
    let usage = String::from_utf8_lossy(&out.stdout);
    assert!(usage.contains("serve"), "{usage}");
    assert!(usage.contains("--run-for-ms"), "{usage}");
    let _ = std::fs::remove_dir_all(&source);
}

#[test]
fn usage_exit_code_is_reserved_for_unknown_commands() {
    let out = bin().arg("serve-wrong").output().unwrap();
    assert_eq!(out.status.code(), Some(EXIT_USAGE));
}
