//! End-to-end test of `v6census census`: a fault-injected multi-day
//! directory ingests without panicking, the health report names each
//! fault, and an interrupted-then-resumed run reproduces the analysis
//! section (Table 1 + stability) byte-for-byte.

use std::path::PathBuf;
use v6census_cli::commands::census;
use v6census_cli::Flags;
use v6census_core::temporal::Day;
use v6census_synth::world::epochs;
use v6census_synth::{Fault, FaultInjector, FaultSpec, World, WorldConfig};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "v6census-cli-{tag}-{}-{}",
        std::process::id(),
        line!()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn flags(args: &[String]) -> Flags {
    Flags::parse(args)
}

/// The part of the output that must be invariant under kill/resume.
fn analysis_section(out: &str) -> &str {
    out.split("==== analysis ====")
        .nth(1)
        .expect("output has an analysis section")
}

#[test]
fn census_command_over_faulty_logs_and_resume() {
    let logs = tempdir("logs");
    let ckpts = tempdir("ckpts");
    let world = World::standard(WorldConfig {
        seed: 29,
        scale: 0.002,
    });
    let first = epochs::mar2015();
    let spec = FaultSpec {
        faults: vec![
            (first + 4, Fault::CorruptLines { count: 2 }),
            (first + 9, Fault::Truncate { keep_pct: 40 }),
            (first + 13, Fault::DuplicateDay),
            (first + 21, Fault::DropDay),
        ],
    };
    FaultInjector::new(0xc11)
        .write_day_files(&world, first, first + 31, &logs, &spec)
        .unwrap();

    let reference: Day = first + 15;
    let common = vec![
        logs.display().to_string(),
        "--max-bad-ratio=0.05".to_string(),
        format!("--reference={reference}"),
        "--gap-policy=widen".to_string(),
    ];

    // Uninterrupted run.
    let (full, full_quality) = census(&flags(&common)).unwrap();
    assert!(full.starts_with("==== ingest health ===="), "{full}");
    for label in ["bad-line", "truncated", "duplicate-day", "missing-day"] {
        assert!(
            full.contains(&format!("[{label}]")),
            "missing {label} in:\n{full}"
        );
    }
    assert!(full.contains("FAILED"), "{full}");
    let analysis = analysis_section(&full);
    assert!(analysis.contains(&format!("reference day: {reference}")));
    assert!(
        analysis.contains("Other addresses"),
        "Table 1 present: {analysis}"
    );
    assert!(
        analysis.contains("window widened by -1d/+1d"),
        "gap-aware verdict present: {analysis}"
    );
    assert!(analysis.contains("3d-stable"), "{analysis}");
    // The widened stability window makes the run honest about itself:
    // the command reports a non-exact overall quality (exit code 3).
    assert!(
        !full_quality.is_exact(),
        "widened window must degrade: {full}"
    );

    // Interrupted run (simulated kill after 8 days), then resume.
    let mut killed_args = common.clone();
    killed_args.push(format!("--checkpoint={}", ckpts.display()));
    killed_args.push("--max-days=8".to_string());
    let (killed, _) = census(&flags(&killed_args)).unwrap();
    assert!(killed.contains("skipped"), "{killed}");

    let mut resume_args = common.clone();
    resume_args.push(format!("--checkpoint={}", ckpts.display()));
    resume_args.push("--resume".to_string());
    let (resumed, resumed_quality) = census(&flags(&resume_args)).unwrap();
    assert!(
        resumed.contains("checkpoint"),
        "resume reuses checkpoints: {resumed}"
    );

    assert_eq!(
        analysis_section(&full),
        analysis_section(&resumed),
        "analysis must be byte-identical after kill + resume"
    );
    assert_eq!(full_quality, resumed_quality);

    std::fs::remove_dir_all(&logs).unwrap();
    std::fs::remove_dir_all(&ckpts).unwrap();
}

#[test]
fn strict_mode_fails_fast_via_the_command() {
    let logs = tempdir("strict");
    let world = World::standard(WorldConfig {
        seed: 31,
        scale: 0.002,
    });
    let first = epochs::mar2015();
    let spec = FaultSpec {
        faults: vec![(first + 1, Fault::Truncate { keep_pct: 30 })],
    };
    FaultInjector::new(0xc12)
        .write_day_files(&world, first, first + 3, &logs, &spec)
        .unwrap();
    let args = vec![logs.display().to_string(), "--strict".to_string()];
    let err = census(&flags(&args)).unwrap_err();
    // The first fault in a truncated file is the mid-line cut itself, so
    // strict mode may surface it as either error; both name the file.
    let msg = err.to_string();
    assert!(
        msg.contains("truncated") || msg.contains("unparseable"),
        "{msg}"
    );
    assert!(msg.contains("2015-03-18"), "{msg}");
    std::fs::remove_dir_all(&logs).unwrap();
}
