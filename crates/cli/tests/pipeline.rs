//! End-to-end pipeline tests over the pure subcommand functions: the
//! `synth | classify | dense | targets | stability` workflows a user
//! would run through shell pipes, exercised without spawning processes.

use v6census_cli::commands::{
    aggregate, classify, dense, mra, profile, ptr, stability, stable, synth, targets, DayFile,
};
use v6census_cli::Flags;

fn flags(args: &[&str]) -> Flags {
    Flags::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
}

/// Strips the hits/kind columns from a synth log, leaving bare addresses.
fn addrs_only(log: &str) -> String {
    log.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| l.split_whitespace().next())
        .map(|a| format!("{a}\n"))
        .collect()
}

#[test]
fn synth_feeds_every_analysis_command() {
    let log = synth(&flags(&["--scale", "0.005", "--day", "2015-03-17"])).unwrap();
    let addrs = addrs_only(&log);
    assert!(addrs.lines().count() > 500);

    // classify: histogram covers the expected schemes.
    let c = classify(&addrs, &flags(&[])).unwrap();
    for label in ["pseudorandom", "6to4", "low-iid", "eui64"] {
        assert!(c.contains(label), "classify output missing {label}");
    }

    // mra: renders with all three resolutions.
    let m = mra(&addrs, &flags(&["--title", "pipeline"])).unwrap();
    assert!(m.contains("pipeline"));
    assert!(m.contains("single bits"));

    // dense: server blocks guarantee dense /112s.
    let d = dense(&addrs, &flags(&["--class", "2@/112"])).unwrap();
    assert!(d.lines().any(|l| l.contains("/112\t")), "{d}");

    // aggregate: n_0 = 1 row present.
    let a = aggregate(&addrs, &flags(&[])).unwrap();
    assert!(a.lines().any(|l| l.starts_with("0\t1\t")));

    // targets: produces probe candidates from the dense blocks.
    let t = targets(&addrs, &flags(&["--budget", "50"])).unwrap();
    assert_eq!(t.lines().filter(|l| !l.starts_with('#')).count(), 50);

    // profile: conserves total hits from the weighted log.
    let p = profile(&log, &flags(&["--threshold", "0.02"])).unwrap();
    assert!(p.contains("aguri profile"));

    // ptr: roundtrip through ip6.arpa for the first few addresses.
    let few: String = addrs.lines().take(5).map(|l| format!("{l}\n")).collect();
    let names = ptr(&few, &flags(&[])).unwrap();
    let back = ptr(&names, &flags(&["--reverse"])).unwrap();
    assert_eq!(back, few);
}

#[test]
fn cross_epoch_and_daily_stability_agree_on_direction() {
    // Two epochs of synthetic logs.
    let now = addrs_only(&synth(&flags(&["--scale", "0.005", "--day", "2015-03-17"])).unwrap());
    let before = addrs_only(&synth(&flags(&["--scale", "0.005", "--day", "2014-09-17"])).unwrap());
    let spectrum = stable(&now, &before, &flags(&[])).unwrap();
    assert!(spectrum.contains("stable boundary"), "{spectrum}");

    // Daily files across one window.
    let mut days = Vec::new();
    for d in 14..=20 {
        let date = format!("2015-03-{d}");
        let text = addrs_only(&synth(&flags(&["--scale", "0.005", "--day", &date])).unwrap());
        days.push(DayFile {
            day: v6census_cli::commands::day_from_name(&format!("{date}.txt")).unwrap(),
            text,
        });
    }
    let report = stability(days, &flags(&["--reference", "2015-03-17"])).unwrap();
    assert!(report.contains("3d-stable (-7d,+7d)"));
    // /64 stability exceeds address stability (the paper's headline
    // ordering) — parse the two percentages.
    let pcts: Vec<f64> = report
        .lines()
        .filter(|l| l.contains("  3d-stable (-7d,+7d)") && l.trim_end().ends_with("%)"))
        .filter_map(|l| {
            l.rsplit('(')
                .next()?
                .trim_end_matches(')')
                .trim_end_matches('%')
                .parse()
                .ok()
        })
        .collect();
    assert_eq!(pcts.len(), 2, "{report}");
    assert!(pcts[1] > pcts[0], "addr {} vs /64 {}", pcts[0], pcts[1]);
}
