//! Process-level contract of the `v6census` binary: the documented exit
//! codes, including 3 (completed-but-degraded) when a supervised census
//! sheds work — never a panic abort.

use std::path::PathBuf;
use std::process::Command;
use v6census_cli::{EXIT_DATA_ERROR, EXIT_DEGRADED, EXIT_OK, EXIT_USAGE};
use v6census_synth::world::epochs;
use v6census_synth::{FaultInjector, FaultSpec, World, WorldConfig};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_v6census"))
}

fn logs_dir(tag: &str) -> (PathBuf, String) {
    let dir = std::env::temp_dir().join(format!("v6census-exit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let world = World::standard(WorldConfig {
        seed: 97,
        scale: 0.002,
    });
    let first = epochs::mar2015();
    FaultInjector::new(0xec0)
        .write_day_files(
            &world,
            first,
            first + 14,
            &dir,
            &FaultSpec { faults: vec![] },
        )
        .unwrap();
    (dir.clone(), format!("{}", first + 7))
}

#[test]
fn usage_errors_exit_2() {
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(EXIT_USAGE));
    let out = bin().arg("no-such-command").output().unwrap();
    assert_eq!(out.status.code(), Some(EXIT_USAGE));
    let help = bin().arg("help").output().unwrap();
    assert_eq!(help.status.code(), Some(EXIT_OK));
    let usage = String::from_utf8(help.stdout).unwrap();
    for needle in [
        "EXIT CODES",
        "--jobs",
        "--stage-deadline",
        "--max-trie-nodes",
    ] {
        assert!(usage.contains(needle), "usage lacks {needle}:\n{usage}");
    }
}

#[test]
fn data_errors_exit_1() {
    let out = bin()
        .args(["census", "--dir", "/nonexistent/v6census-exit-test"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(EXIT_DATA_ERROR));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn clean_census_exits_0_and_injected_panic_exits_3() {
    let (dir, reference) = logs_dir("codes");

    let clean = bin()
        .args([
            "census",
            "--dir",
            dir.to_str().unwrap(),
            &format!("--reference={reference}"),
            "--jobs=4",
        ])
        .output()
        .unwrap();
    assert_eq!(
        clean.status.code(),
        Some(EXIT_OK),
        "stderr: {}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let stdout = String::from_utf8(clean.stdout).unwrap();
    assert!(stdout.contains("==== run manifest ===="), "{stdout}");
    assert!(stdout.contains("quality: exact"), "{stdout}");

    // A shard that panics on both attempts: the process must still
    // finish the run, print a manifest naming the casualty, and exit 3.
    let degraded = bin()
        .args([
            "census",
            "--dir",
            dir.to_str().unwrap(),
            &format!("--reference={reference}"),
            "--jobs=4",
            "--inject=panic:stability:2",
        ])
        .output()
        .unwrap();
    assert_eq!(
        degraded.status.code(),
        Some(EXIT_DEGRADED),
        "stderr: {}",
        String::from_utf8_lossy(&degraded.stderr)
    );
    let stdout = String::from_utf8(degraded.stdout).unwrap();
    assert!(stdout.contains("excluded stability/"), "{stdout}");
    assert!(stdout.contains("quality: partial"), "{stdout}");
    // The contained panic stays off stderr — it is reported through the
    // manifest, not as a crash trace.
    let stderr = String::from_utf8_lossy(&degraded.stderr);
    assert!(
        !stderr.contains("panicked at"),
        "contained panic leaked to stderr: {stderr}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
