//! The `v6census` command-line tool: argument splitting and I/O around
//! the pure subcommand functions in [`v6census_cli::commands`].
//!
//! Exit codes (documented in `v6census help`): 0 ok, 1 data error,
//! 2 usage error, 3 completed-but-degraded (see the run manifest).

use std::io::Read;
use v6census_cli::commands::{
    aggregate, census, classify, day_from_name, dense, mra, profile, ptr, serve, stability, stable,
    synth, targets, DayFile, USAGE,
};
use v6census_cli::{Flags, EXIT_DATA_ERROR, EXIT_DEGRADED, EXIT_USAGE};
use v6census_core::quality::Quality;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        std::process::exit(EXIT_USAGE);
    };
    let flags = Flags::parse(&args[1..]);

    // Every subcommand yields (output, quality); only `census` and
    // `serve` can come back non-exact today, and that maps to
    // EXIT_DEGRADED below.
    let exact = |s: String| (s, Quality::Exact);
    let result = match command {
        "classify" => classify(&read_stdin(), &flags).map(exact),
        "mra" => mra(&read_stdin(), &flags).map(exact),
        "dense" => dense(&read_stdin(), &flags).map(exact),
        "aggregate" => aggregate(&read_stdin(), &flags).map(exact),
        "stable" => {
            let earlier_path = flags.get("earlier").unwrap_or_default().to_string();
            if earlier_path.is_empty() {
                Err(v6census_cli::err("stable requires --earlier FILE"))
            } else {
                match std::fs::read_to_string(&earlier_path) {
                    Ok(earlier) => stable(&read_stdin(), &earlier, &flags).map(exact),
                    Err(e) => Err(v6census_cli::err(format!(
                        "cannot read --earlier {earlier_path}: {e}"
                    ))),
                }
            }
        }
        "ptr" => ptr(&read_stdin(), &flags).map(exact),
        "targets" => targets(&read_stdin(), &flags).map(exact),
        "stability" => {
            let dir = flags.get("dir").unwrap_or_default().to_string();
            if dir.is_empty() {
                Err(v6census_cli::err("stability requires --dir DIR"))
            } else {
                read_day_files(&dir)
                    .and_then(|days| stability(days, &flags))
                    .map(exact)
            }
        }
        "profile" => profile(&read_stdin(), &flags).map(exact),
        "census" => census(&flags),
        "serve" => serve(&flags),
        "synth" => synth(&flags).map(exact),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return;
        }
        other => {
            eprintln!("unknown command {other:?}\n");
            eprint!("{USAGE}");
            std::process::exit(EXIT_USAGE);
        }
    };

    match result {
        Ok((output, quality)) => {
            // Tolerate a closed pipe (`v6census synth | head`): treat
            // EPIPE as a normal early exit rather than a panic.
            use std::io::Write;
            if let Err(e) = std::io::stdout().write_all(output.as_bytes()) {
                if e.kind() != std::io::ErrorKind::BrokenPipe {
                    eprintln!("error writing output: {e}");
                    std::process::exit(EXIT_DATA_ERROR);
                }
            }
            if !quality.is_exact() {
                std::process::exit(EXIT_DEGRADED);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(EXIT_DATA_ERROR);
        }
    }
}

fn read_day_files(dir: &str) -> Result<Vec<DayFile>, v6census_cli::CliError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| v6census_cli::err(format!("cannot read --dir {dir}: {e}")))?;
    let mut days = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(day) = day_from_name(&name.to_string_lossy()) else {
            continue;
        };
        let text = std::fs::read_to_string(entry.path())
            .map_err(|e| v6census_cli::err(format!("cannot read {:?}: {e}", entry.path())))?;
        days.push(DayFile { day, text });
    }
    Ok(days)
}

fn read_stdin() -> String {
    let mut buf = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
        eprintln!("error reading stdin: {e}");
        std::process::exit(EXIT_DATA_ERROR);
    }
    buf
}
