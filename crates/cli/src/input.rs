//! Input parsing shared by the subcommands: address lists and
//! `address hits` weighted lists, read from text lines.

use crate::{err, CliError};
use v6census_addr::Addr;
use v6census_trie::AddrSet;

/// Parses one address per line; blank lines and `#` comments are
/// skipped; unparseable lines are counted, not fatal.
pub fn parse_addr_lines(text: &str) -> (Vec<Addr>, usize) {
    let mut addrs = Vec::new();
    let mut bad = 0usize;
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        // Accept an optional trailing column (e.g. hits) after whitespace.
        let first = t.split_whitespace().next().unwrap_or(t);
        match first.parse::<Addr>() {
            Ok(a) => addrs.push(a),
            Err(_) => bad += 1,
        }
    }
    (addrs, bad)
}

/// What `parse_weighted_lines` rejected or repaired, by cause.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WeightedDiagnostics {
    /// Lines dropped because the address did not parse.
    pub bad_addrs: usize,
    /// Lines whose hits column was present but unparseable; the entry
    /// was kept with weight 1 rather than silently trusted.
    pub bad_weights: usize,
}

impl WeightedDiagnostics {
    /// Total problem lines.
    pub fn total(&self) -> usize {
        self.bad_addrs + self.bad_weights
    }
}

/// Parses `address<ws>hits` per line into weighted entries; lines with
/// no hits column default to weight 1. A *present but unparseable* hits
/// column (`2001:db8::1 banana`) also defaults to 1 but is counted in
/// [`WeightedDiagnostics::bad_weights`] so callers can surface it.
pub fn parse_weighted_lines(text: &str) -> (Vec<(Addr, u64)>, WeightedDiagnostics) {
    let mut out = Vec::new();
    let mut diag = WeightedDiagnostics::default();
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut cols = t.split_whitespace();
        let Some(addr_s) = cols.next() else { continue };
        let Ok(addr) = addr_s.parse::<Addr>() else {
            diag.bad_addrs += 1;
            continue;
        };
        let hits = match cols.next() {
            None => 1,
            Some(h) => h.parse::<u64>().unwrap_or_else(|_| {
                diag.bad_weights += 1;
                1
            }),
        };
        out.push((addr, hits));
    }
    (out, diag)
}

/// Parses addresses into a set, failing when nothing parses.
pub fn addr_set(text: &str) -> Result<(AddrSet, usize), CliError> {
    let (addrs, bad) = parse_addr_lines(text);
    if addrs.is_empty() {
        return Err(err("no parseable IPv6 addresses in input"));
    }
    Ok((AddrSet::from_iter(addrs), bad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_skips() {
        let text = "# comment\n2001:db8::1\n\nnot-an-addr\n2001:db8::2 42\n";
        let (addrs, bad) = parse_addr_lines(text);
        assert_eq!(addrs.len(), 2);
        assert_eq!(bad, 1);
        let (weighted, diag) = parse_weighted_lines(text);
        assert_eq!(diag.bad_addrs, 1);
        assert_eq!(diag.bad_weights, 0);
        assert_eq!(weighted[0], ("2001:db8::1".parse().unwrap(), 1));
        assert_eq!(weighted[1], ("2001:db8::2".parse().unwrap(), 42));
    }

    #[test]
    fn malformed_hits_column_is_counted_not_silent() {
        let text = "2001:db8::1 banana\n2001:db8::2 42\n2001:db8::3\n";
        let (weighted, diag) = parse_weighted_lines(text);
        assert_eq!(diag.bad_addrs, 0);
        assert_eq!(diag.bad_weights, 1, "present-but-bad hits must be reported");
        assert_eq!(diag.total(), 1);
        // The entry is kept with the conservative default weight.
        assert_eq!(weighted[0], ("2001:db8::1".parse().unwrap(), 1));
        assert_eq!(weighted[1], ("2001:db8::2".parse().unwrap(), 42));
        assert_eq!(weighted[2], ("2001:db8::3".parse().unwrap(), 1));
    }

    #[test]
    fn addr_set_requires_input() {
        assert!(addr_set("garbage\n").is_err());
        let (set, bad) = addr_set("2001:db8::1\n2001:db8::1\n").unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(bad, 0);
    }
}
