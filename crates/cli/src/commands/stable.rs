//! `v6census stable` — the §7.2 cross-epoch stability spectrum: current
//! epoch on stdin, earlier epoch from `--earlier FILE`.

use crate::input::addr_set;
use crate::{err, CliError, Flags};
use std::fmt::Write as _;
use v6census_core::temporal::{longest_stable_prefixes, stable_fraction_spectrum};

/// Runs the subcommand. `earlier_text` is the earlier epoch's address
/// list (main.rs reads the `--earlier` file; tests pass it directly).
pub fn stable(input: &str, earlier_text: &str, flags: &Flags) -> Result<String, CliError> {
    let (current, _) = addr_set(input)?;
    let (earlier, _) = addr_set(earlier_text).map_err(|e| err(format!("earlier epoch: {e}")))?;
    let step: u8 = flags.get_parsed("step", 8u8)?;
    let threshold: f64 = flags.get_parsed("threshold", 0.5f64)?;
    if step == 0 {
        return Err(err("--step must be at least 1"));
    }

    let lengths: Vec<u8> = (0..=64).step_by(step as usize).skip(1).collect();
    let spec = stable_fraction_spectrum(&current, &earlier, lengths);
    let mut out = String::from("# length\tactive_aggregates\tstable_fraction\n");
    for (p, n, f) in &spec.points {
        let _ = writeln!(out, "/{p}\t{n}\t{f:.4}");
    }
    match spec.boundary(threshold) {
        Some(b) => {
            let _ = writeln!(out, "\nstable boundary (>= {threshold:.2}): /{b}");
            if let Some((knee, drop)) = spec.sharpest_drop() {
                let _ = writeln!(out, "sharpest drop: at /{knee} (-{drop:.2})");
            }
            if flags.has("prefixes") {
                let stable = longest_stable_prefixes(&current, &earlier, b);
                let _ = writeln!(out, "\n# {} longest stable prefixes (/{b})", stable.len());
                for p in stable.iter() {
                    let _ = writeln!(out, "{p}/{b}");
                }
            }
        }
        None => {
            let _ = writeln!(
                out,
                "\nno length meets the {threshold:.2} stability threshold"
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(tag: u64) -> String {
        // /48 stable, bits beyond rotated per epoch.
        (0..40u64)
            .map(|h| {
                let nid = (h * 131 + tag * 7919) % 0xffff;
                format!("2001:db8:{:x}:{nid:x}::{}\n", h % 8, h + 1)
            })
            .collect()
    }

    #[test]
    fn finds_the_boundary() {
        let out = stable(&epoch(2), &epoch(1), &Flags::default()).unwrap();
        assert!(out.contains("stable boundary"), "{out}");
        assert!(out.contains("/48"), "{out}");
    }

    #[test]
    fn prefix_listing() {
        let f = Flags::parse(&["--prefixes".into()]);
        let out = stable(&epoch(2), &epoch(1), &f).unwrap();
        assert!(out.contains("longest stable prefixes"), "{out}");
    }

    #[test]
    fn identical_epochs_are_stable_to_64() {
        let e = epoch(1);
        let out = stable(&e, &e, &Flags::default()).unwrap();
        assert!(out.contains("stable boundary (>= 0.50): /64"), "{out}");
    }

    #[test]
    fn bad_flags() {
        assert!(stable(
            &epoch(1),
            &epoch(2),
            &Flags::parse(&["--step".into(), "0".into()])
        )
        .is_err());
        assert!(stable("", &epoch(1), &Flags::default()).is_err());
        assert!(stable(&epoch(1), "", &Flags::default()).is_err());
    }
}
