//! `v6census profile` — an aguri-style traffic profile (Cho et al., the
//! paper's §2/§5.2 baseline): aggregate `addr hits` input until every
//! reported prefix carries at least a threshold fraction of total hits.

use crate::input::parse_weighted_lines;
use crate::{err, CliError, Flags};
use std::fmt::Write as _;
use v6census_trie::RadixTree;

/// Runs the subcommand.
pub fn profile(input: &str, flags: &Flags) -> Result<String, CliError> {
    let (entries, diag) = parse_weighted_lines(input);
    if entries.is_empty() {
        return Err(err("no parseable `address hits` lines on stdin"));
    }
    let threshold: f64 = flags.get_parsed("threshold", 0.01f64)?;
    if !(0.0..=1.0).contains(&threshold) {
        return Err(err("--threshold must be within [0, 1]"));
    }

    let mut tree = RadixTree::new();
    for &(addr, hits) in &entries {
        tree.insert_addr(addr, hits);
    }
    let total = tree.total();
    let aggregates = tree.aguri_aggregate(threshold);

    let mut out = format!(
        "# aguri profile: {} addrs, {} hits, threshold {:.2}% ({} bad addrs, {} bad weights)\n",
        entries.len(),
        total,
        threshold * 100.0,
        diag.bad_addrs,
        diag.bad_weights
    );
    let _ = writeln!(out, "{:<46} {:>12} {:>8}", "# prefix", "hits", "share");
    for (prefix, hits) in &aggregates {
        let _ = writeln!(
            out,
            "{:<46} {:>12} {:>7.2}%",
            prefix.to_string(),
            hits,
            100.0 * *hits as f64 / total as f64
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_hitter_survives() {
        let mut input = String::new();
        for i in 0..50 {
            input.push_str(&format!("2001:db8::{i:x} 10\n"));
        }
        input.push_str("2400::1 5\n");
        let f = Flags::parse(&["--threshold".into(), "0.05".into()]);
        let out = profile(&input, &f).unwrap();
        // The heavy /121-ish block is reported inside 2001:db8::/64.
        assert!(out.contains("2001:db8::/"), "{out}");
        // Counts conserve.
        assert!(out.contains("505 hits"), "{out}");
    }

    #[test]
    fn threshold_validation() {
        assert!(profile(
            "2001:db8::1 1\n",
            &Flags::parse(&["--threshold".into(), "2".into()])
        )
        .is_err());
        assert!(profile("", &Flags::default()).is_err());
    }
}
