//! `v6census dense` — the §5.2.2 density classes over an input
//! population: one class, the Table 3 parameter sweep, or the general
//! least-specific densify.

use crate::input::addr_set;
use crate::{err, CliError, Flags};
use std::fmt::Write as _;
use v6census_core::spatial::DensityClass;
use v6census_trie::RadixTree;

/// Runs the subcommand.
pub fn dense(input: &str, flags: &Flags) -> Result<String, CliError> {
    let (set, _) = addr_set(input)?;
    let class: DensityClass = flags
        .get("class")
        .unwrap_or("2@/112")
        .parse()
        .map_err(|e| err(format!("{e}")))?;

    let mut out = String::new();
    if flags.has("table3") {
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>12} {:>16} {:>16}",
            "class", "prefixes", "covered", "possible", "density"
        );
        for c in v6census_census::tables::table3_classes() {
            let r = c.report(&set);
            let _ = writeln!(
                out,
                "{:<14} {:>10} {:>12} {:>16} {:>16.10}",
                c.to_string(),
                r.dense_prefixes,
                r.covered_addresses,
                r.possible_addresses,
                r.density()
            );
        }
        return Ok(out);
    }

    if flags.has("general") {
        // Least-specific non-overlapping dense prefixes (trie densify).
        let mut tree = RadixTree::new();
        for a in set.iter() {
            tree.insert_addr(a, 1);
        }
        let dense = tree.densify(class.n, class.p);
        let _ = writeln!(out, "# least-specific {class} prefixes");
        for d in &dense {
            let _ = writeln!(out, "{}\t{}", d.prefix, d.count);
        }
        let _ = writeln!(out, "# {} prefixes", dense.len());
        return Ok(out);
    }

    let report = class.report(&set);
    let _ = writeln!(out, "# {class} prefixes (fixed length)");
    for d in class.dense_prefixes(&set) {
        let _ = writeln!(out, "{}\t{}", d.prefix, d.count);
    }
    let _ = writeln!(
        out,
        "# {} prefixes, {} covered addrs, {} possible targets, density {:.10}",
        report.dense_prefixes,
        report.covered_addresses,
        report.possible_addresses,
        report.density()
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const INPUT: &str = "2001:db8::1\n2001:db8::4\n2400::1\n";

    #[test]
    fn paper_example_via_cli() {
        let out = dense(INPUT, &Flags::default()).unwrap();
        assert!(out.contains("2001:db8::/112\t2"));
        assert!(out.contains("# 1 prefixes, 2 covered addrs, 65536 possible"));
    }

    #[test]
    fn general_mode_finds_least_specific() {
        let f = Flags::parse(&["--general".into(), "--class".into(), "2@/112".into()]);
        let out = dense(INPUT, &f).unwrap();
        assert!(out.contains("2001:db8::/112\t2"), "{out}");
    }

    #[test]
    fn table3_sweep() {
        let f = Flags::parse(&["--table3".into()]);
        let out = dense(INPUT, &f).unwrap();
        assert!(out.contains("2@/124-dense"));
        assert!(out.lines().count() >= 13);
    }

    #[test]
    fn bad_class_is_an_error() {
        let f = Flags::parse(&["--class".into(), "nope".into()]);
        assert!(dense(INPUT, &f).is_err());
    }
}
