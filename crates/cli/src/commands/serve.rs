//! The `serve` subcommand: run the crash-safe census daemon.
//!
//! Unlike the batch subcommands, `serve` is a long-running process: it
//! prints the bound address on its first output line (so callers can
//! discover an OS-assigned port), answers queries until told to stop
//! (`--run-for-ms`, or stdin closing), then drains gracefully. The
//! returned report is the post-drain summary; a drain that had to
//! abandon in-flight connections maps to [`Quality::Degraded`] and thus
//! the documented exit code 3.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use v6census_addr::Prefix;
use v6census_census::serve::{spawn, DrainReport, ServeConfig};
use v6census_core::quality::Quality;
use v6census_core::spatial::DensityClass;
use v6census_core::temporal::StabilityParams;

use crate::{err, CliError, Flags};

/// Builds the daemon configuration from flags (shared with tests).
pub fn serve_config_from_flags(flags: &Flags) -> Result<ServeConfig, CliError> {
    let dir = flags
        .get("dir")
        .map(str::to_string)
        .or_else(|| flags.positional.first().cloned())
        .ok_or_else(|| err("serve requires a log directory (--dir DIR or positional)"))?;
    let n: u32 = flags.get_parsed("n", 3u32)?;
    if n == 0 {
        return Err(err("--n must be at least 1"));
    }
    let class: DensityClass = flags
        .get("class")
        .unwrap_or("8@/64")
        .parse()
        .map_err(|e| err(format!("{e}")))?;
    let defaults = ServeConfig::default();
    let max_connections: usize = flags.get_parsed("max-connections", defaults.max_connections)?;
    if max_connections == 0 {
        return Err(err("--max-connections must be at least 1"));
    }
    let routing = match flags.get("routing") {
        None => Vec::new(),
        Some(path) => parse_routing_file(path)?,
    };
    Ok(ServeConfig {
        source_dir: PathBuf::from(dir),
        state_dir: flags.get("state").map(PathBuf::from),
        bind: flags.get("bind").unwrap_or("127.0.0.1:0").to_string(),
        max_connections,
        read_timeout: ms_flag(flags, "read-timeout-ms", defaults.read_timeout)?,
        write_timeout: ms_flag(flags, "write-timeout-ms", defaults.write_timeout)?,
        header_deadline: ms_flag(flags, "header-deadline-ms", defaults.header_deadline)?,
        max_request_bytes: flags.get_parsed("max-request-bytes", defaults.max_request_bytes)?,
        drain_deadline: ms_flag(flags, "drain-ms", defaults.drain_deadline)?,
        poll_interval: ms_flag(flags, "poll-ms", defaults.poll_interval)?,
        ingest: super::census::config_from_flags(flags)?,
        params: StabilityParams::nd(n),
        dense_class: class,
        routing,
    })
}

fn ms_flag(flags: &Flags, name: &str, default: Duration) -> Result<Duration, CliError> {
    let ms: u64 = flags.get_parsed(name, default.as_millis() as u64)?;
    if ms == 0 {
        return Err(err(format!(
            "--{name} must be a positive millisecond count"
        )));
    }
    Ok(Duration::from_millis(ms))
}

/// Parses a routing file: one `prefix asn` pair per line, `#` comments.
fn parse_routing_file(path: &str) -> Result<Vec<(Prefix, u32)>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| err(format!("cannot read --routing {path}: {e}")))?;
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split_whitespace();
        let bad = |what: &str| err(format!("--routing {path}:{}: {what}", i + 1));
        let prefix: Prefix = cols
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| bad("bad prefix"))?;
        let asn: u32 = cols
            .next()
            .and_then(|a| a.parse().ok())
            .ok_or_else(|| bad("bad ASN"))?;
        entries.push((prefix, asn));
    }
    Ok(entries)
}

/// Runs the daemon until `--run-for-ms` elapses or stdin closes, then
/// drains and reports.
pub fn serve(flags: &Flags) -> Result<(String, Quality), CliError> {
    let mut cfg = serve_config_from_flags(flags)?;
    let fault = super::census::install_fault_fs(flags, &mut cfg.ingest)?;
    let handle = spawn(cfg).map_err(|e| err(format!("serve failed to start: {e}")))?;

    // Announce the bound address immediately — callers discover the
    // OS-assigned port from this line. EPIPE-tolerant, like main's
    // output path: a vanished parent must not panic the daemon.
    {
        let mut stdout = std::io::stdout();
        let _ = writeln!(stdout, "listening on {}", handle.addr());
        let _ = stdout.flush();
    }

    match flags.get("run-for-ms") {
        Some(_) => {
            let ms: u64 = flags.get_parsed("run-for-ms", 0u64)?;
            std::thread::sleep(Duration::from_millis(ms));
        }
        None => {
            // Foreground mode: serve until the operator closes stdin.
            let mut sink = String::new();
            let _ = std::io::stdin().read_line(&mut sink);
            while !sink.is_empty() {
                sink.clear();
                if std::io::stdin().read_line(&mut sink).is_err() {
                    break;
                }
            }
        }
    }

    let report = handle.shutdown();
    let quality = if report.clean {
        Quality::Exact
    } else {
        Quality::Degraded
    };
    let mut out = render(&report);
    if let Some(fault) = fault {
        out.push_str(&format!("fault injections: {}\n", fault.injected()));
    }
    Ok((out, quality))
}

/// The post-drain summary report.
fn render(report: &DrainReport) -> String {
    let m = &report.metrics;
    let mut out = String::new();
    out.push_str("== serve summary ==\n");
    out.push_str(&format!(
        "generation: {} ({} days resumed from journal, {} recoveries)\n",
        report.generation, m.resumed_days, m.recovered_errors
    ));
    out.push_str(&format!(
        "requests: {} accepted, {} served, {} shed, {} malformed, {} oversized, {} timed out\n",
        m.accepted, m.served, m.shed, m.malformed, m.oversized, m.timeouts
    ));
    out.push_str(&format!(
        "clients: {} early disconnects, {} responses dropped on broken pipes\n",
        m.early_disconnects, m.dropped_responses
    ));
    out.push_str(&format!(
        "ingest: {} days published, {} failures, {} files quarantined\n",
        m.ingested_days, m.ingest_failures, m.quarantined_files
    ));
    out.push_str(&format!(
        "drain: {}\n",
        if report.clean {
            "clean".to_string()
        } else {
            format!(
                "abandoned {} connection(s) at the deadline",
                report.abandoned
            )
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Flags {
        Flags::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn config_requires_a_directory_and_validates_flags() {
        assert!(serve_config_from_flags(&flags(&[])).is_err());
        let cfg = serve_config_from_flags(&flags(&["--dir", "logs"])).unwrap();
        assert_eq!(cfg.source_dir, PathBuf::from("logs"));
        assert!(cfg.state_dir.is_none());
        assert_eq!(cfg.bind, "127.0.0.1:0");
        // Positional form works too.
        let cfg = serve_config_from_flags(&flags(&["logs"])).unwrap();
        assert_eq!(cfg.source_dir, PathBuf::from("logs"));
        // Knobs flow through.
        let cfg = serve_config_from_flags(&flags(&[
            "--dir",
            "logs",
            "--state",
            "st",
            "--bind",
            "127.0.0.1:8080",
            "--max-connections",
            "7",
            "--header-deadline-ms",
            "250",
            "--n",
            "5",
            "--class",
            "2@/112",
        ]))
        .unwrap();
        assert_eq!(cfg.state_dir, Some(PathBuf::from("st")));
        assert_eq!(cfg.bind, "127.0.0.1:8080");
        assert_eq!(cfg.max_connections, 7);
        assert_eq!(cfg.header_deadline, Duration::from_millis(250));
        assert_eq!(cfg.params.label(), "5d-stable (-7d,+7d)");
        assert_eq!(cfg.dense_class.to_string(), "2@/112-dense");
        // Bad values are typed errors, not panics.
        assert!(serve_config_from_flags(&flags(&["--dir", "l", "--n", "0"])).is_err());
        assert!(
            serve_config_from_flags(&flags(&["--dir", "l", "--max-connections", "0"])).is_err()
        );
        assert!(serve_config_from_flags(&flags(&["--dir", "l", "--poll-ms", "0"])).is_err());
        assert!(serve_config_from_flags(&flags(&["--dir", "l", "--class", "zap"])).is_err());
    }

    #[test]
    fn routing_file_parses_or_rejects() {
        let dir = std::env::temp_dir().join(format!("v6census-serve-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("routes.txt");
        std::fs::write(
            &good,
            "# comment\n2001:db8::/32 64496\n\n2001:db9::/32 64497\n",
        )
        .unwrap();
        let entries = parse_routing_file(&good.to_string_lossy()).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].1, 64496);
        let bad = dir.join("bad.txt");
        std::fs::write(&bad, "2001:db8::/32 not-an-asn\n").unwrap();
        assert!(parse_routing_file(&bad.to_string_lossy()).is_err());
        assert!(parse_routing_file("/no/such/file").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
