//! `v6census targets` — the §6.2.2 application: turn observed addresses
//! into an active-probing target list by enumerating the possible
//! addresses of their dense prefixes ("These blocks are natural targets
//! if future, active scanning or probing is intended").

use crate::input::addr_set;
use crate::{err, CliError, Flags};
use std::fmt::Write as _;
use v6census_addr::Addr;
use v6census_core::spatial::DensityClass;

/// Runs the subcommand: emits up to `--budget` target addresses drawn
/// round-robin from the dense prefixes (so the list covers all blocks
/// even when truncated), skipping the already-observed addresses unless
/// `--include-observed`.
pub fn targets(input: &str, flags: &Flags) -> Result<String, CliError> {
    let (set, _) = addr_set(input)?;
    let class: DensityClass = flags
        .get("class")
        .unwrap_or("2@/112")
        .parse()
        .map_err(|e| err(format!("{e}")))?;
    let budget: usize = flags.get_parsed("budget", 10_000usize)?;
    if budget == 0 {
        return Err(err("--budget must be at least 1"));
    }
    let include_observed = flags.has("include-observed");

    let dense = class.dense_prefixes(&set);
    if dense.is_empty() {
        return Err(err(format!("no {class} prefixes in the input")));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        // The literal "probe targets" keeps the header grep-able.
        "# probe targets from {} {class} prefixes (budget {budget})",
        dense.len()
    );
    // Round-robin across blocks: offset 0 of every block, then offset 1…
    let mut emitted = 0usize;
    let max_span = dense
        .iter()
        .map(|d| d.possible().unwrap_or(0))
        .max()
        .unwrap_or(0);
    'outer: for offset in 0..max_span {
        for d in &dense {
            if offset >= d.possible().unwrap_or(0) {
                continue;
            }
            let candidate = Addr(d.prefix.addr().0 | offset);
            if !include_observed && set.contains(candidate) {
                continue;
            }
            let _ = writeln!(out, "{candidate}");
            emitted += 1;
            if emitted >= budget {
                break 'outer;
            }
        }
    }
    let _ = writeln!(out, "# {emitted} targets");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const INPUT: &str = "2001:db8::1\n2001:db8::4\n2400::1\n";

    #[test]
    fn emits_unobserved_neighbours_round_robin() {
        let f = Flags::parse(&["--budget".into(), "6".into()]);
        let out = targets(INPUT, &f).unwrap();
        let addrs: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(addrs.len(), 6);
        // ::0 is unobserved and comes first; ::1 and ::4 are skipped.
        assert_eq!(addrs[0], "2001:db8::");
        assert!(!addrs.contains(&"2001:db8::1"));
        assert!(!addrs.contains(&"2001:db8::4"));
        // All targets lie inside the dense /112.
        for a in addrs {
            assert!(a.starts_with("2001:db8::"), "{a}");
        }
    }

    #[test]
    fn include_observed_keeps_members() {
        let f = Flags::parse(&["--budget".into(), "5".into(), "--include-observed".into()]);
        let out = targets(INPUT, &f).unwrap();
        assert!(out.contains("2001:db8::1\n"), "{out}");
    }

    #[test]
    fn errors_without_dense_blocks() {
        let f = Flags::parse(&["--class".into(), "64@/112".into()]);
        assert!(targets(INPUT, &f).is_err());
        assert!(targets(INPUT, &Flags::parse(&["--budget".into(), "0".into()])).is_err());
    }
}
