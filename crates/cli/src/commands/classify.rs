//! `v6census classify` — per-address content classification (§3) plus a
//! population histogram, optionally with the Malone content-only verdict.

use crate::input::parse_addr_lines;
use crate::{err, CliError, Flags};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use v6census_addr::malone::classify_content_only;
use v6census_addr::scheme::classify as classify_scheme;

/// Runs the subcommand.
pub fn classify(input: &str, flags: &Flags) -> Result<String, CliError> {
    let (addrs, bad) = parse_addr_lines(input);
    if addrs.is_empty() {
        return Err(err("no parseable IPv6 addresses on stdin"));
    }
    let tsv = flags.has("tsv");
    let with_malone = flags.has("malone");

    let mut out = String::new();
    let mut histogram: BTreeMap<&'static str, usize> = BTreeMap::new();
    if tsv {
        let _ = writeln!(
            out,
            "# addr\tscheme{}",
            if with_malone { "\tmalone" } else { "" }
        );
    }
    for &a in &addrs {
        let scheme = classify_scheme(a);
        *histogram.entry(scheme.label()).or_default() += 1;
        let malone_col = if with_malone {
            format!(
                "{}{:?}",
                if tsv { "\t" } else { "  " },
                classify_content_only(a)
            )
        } else {
            String::new()
        };
        if tsv {
            let _ = writeln!(out, "{a}\t{}{malone_col}", scheme.label());
        } else {
            let _ = writeln!(out, "{a:<46} {:<13}{malone_col}", scheme.label());
        }
    }
    if !tsv {
        let _ = writeln!(
            out,
            "\nsummary ({} addresses, {} unparseable lines):",
            addrs.len(),
            bad
        );
        for (label, count) in &histogram {
            let _ = writeln!(
                out,
                "  {label:<14} {count:>8}  ({:.1}%)",
                100.0 * *count as f64 / addrs.len() as f64
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_figure1_samples() {
        let input = "2001:db8:10:1::103\n2001:db8:0:1cdf:21e:c2ff:fec0:11db\n\
                     2001:db8:4137:9e76:3031:f3fd:bbdd:2c2a\n";
        let out = classify(input, &Flags::default()).unwrap();
        assert!(out.contains("low-iid"));
        assert!(out.contains("eui64"));
        assert!(out.contains("pseudorandom"));
        assert!(out.contains("summary (3 addresses"));
    }

    #[test]
    fn tsv_mode_and_malone() {
        let f = Flags::parse(&["--tsv".into(), "--malone".into()]);
        let out = classify("2001:db8::1\n", &f).unwrap();
        assert!(out.starts_with("# addr\tscheme\tmalone"));
        assert!(out.contains("2001:db8::1\tlow-iid\tNotPrivacy"));
    }

    #[test]
    fn rejects_empty() {
        assert!(classify("", &Flags::default()).is_err());
    }
}
