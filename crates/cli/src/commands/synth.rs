//! `v6census synth` — emit one synthetic day of aggregated CDN logs as
//! TSV, for piping into the analysis subcommands.

use crate::{err, CliError, Flags};
use v6census_core::temporal::Day;
use v6census_synth::{World, WorldConfig};

/// Parses `YYYY-MM-DD`.
pub(crate) fn parse_day(s: &str) -> Result<Day, CliError> {
    let mut parts = s.split('-');
    let (Some(ys), Some(ms), Some(ds), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(err(format!("bad --day {s:?}; expected YYYY-MM-DD")));
    };
    let y: i32 = ys.parse().map_err(|_| err("bad year"))?;
    let m: u8 = ms.parse().map_err(|_| err("bad month"))?;
    let d: u8 = ds.parse().map_err(|_| err("bad day"))?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(err(format!("bad --day {s:?}")));
    }
    Ok(Day::from_ymd(y, m, d))
}

/// Runs the subcommand.
pub fn synth(flags: &Flags) -> Result<String, CliError> {
    let day = parse_day(flags.get("day").unwrap_or("2015-03-17"))?;
    let scale: f64 = flags.get_parsed("scale", 0.02f64)?;
    let seed: u64 = flags.get_parsed("seed", 0x76c3_15c3_0001u64)?;
    if scale <= 0.0 {
        return Err(err("--scale must be positive"));
    }
    let world = World::standard(WorldConfig { seed, scale });
    let log = world.day_log(day);
    // The canonical serialization includes the `# end` integrity trailer
    // that lets `v6census census` prove a file was not truncated.
    Ok(log.to_text())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_parseable_log() {
        let f = Flags::parse(&[
            "--scale".into(),
            "0.005".into(),
            "--day".into(),
            "2015-03-17".into(),
        ]);
        let out = synth(&f).unwrap();
        assert!(out.starts_with("# synthetic day 2015-03-17"));
        let data_lines: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
        assert!(data_lines.len() > 100);
        // Every line round-trips through the weighted parser.
        let (parsed, diag) = crate::input::parse_weighted_lines(&out);
        assert_eq!(diag.total(), 0);
        assert_eq!(parsed.len(), data_lines.len());
        // The integrity trailer is present and consistent.
        let trailer = out.lines().last().unwrap();
        assert!(
            trailer.starts_with("# end "),
            "synth output must end with the integrity trailer, got {trailer:?}"
        );
        assert!(
            trailer.contains(&format!(" {} ", data_lines.len())),
            "{trailer}"
        );
    }

    #[test]
    fn flag_validation() {
        assert!(synth(&Flags::parse(&["--day".into(), "17-03".into()])).is_err());
        assert!(synth(&Flags::parse(&["--scale".into(), "-1".into()])).is_err());
        assert!(synth(&Flags::parse(&["--day".into(), "2015-13-01".into()])).is_err());
    }
}
