//! `v6census synth` — emit one synthetic day of aggregated CDN logs as
//! TSV, for piping into the analysis subcommands. With `--out DIR
//! [--days N]` it instead writes N consecutive day files atomically and
//! durably (temp file + fsync + rename) through the [`Vfs`] layer, so
//! `--fault-fs PLAN` can rehearse emission under injected I/O faults.

use crate::{err, CliError, Flags};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use v6census_core::temporal::Day;
use v6census_core::vfs::{FaultFs, FaultPlan, RealFs, Vfs};
use v6census_synth::{World, WorldConfig};

/// Parses `YYYY-MM-DD`.
pub(crate) fn parse_day(s: &str) -> Result<Day, CliError> {
    let mut parts = s.split('-');
    let (Some(ys), Some(ms), Some(ds), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(err(format!("bad --day {s:?}; expected YYYY-MM-DD")));
    };
    let y: i32 = ys.parse().map_err(|_| err("bad year"))?;
    let m: u8 = ms.parse().map_err(|_| err("bad month"))?;
    let d: u8 = ds.parse().map_err(|_| err("bad day"))?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(err(format!("bad --day {s:?}")));
    }
    Ok(Day::from_ymd(y, m, d))
}

/// Runs the subcommand.
pub fn synth(flags: &Flags) -> Result<String, CliError> {
    let day = parse_day(flags.get("day").unwrap_or("2015-03-17"))?;
    let scale: f64 = flags.get_parsed("scale", 0.02f64)?;
    let seed: u64 = flags.get_parsed("seed", 0x76c3_15c3_0001u64)?;
    if scale <= 0.0 {
        return Err(err("--scale must be positive"));
    }
    let world = World::standard(WorldConfig { seed, scale });
    if let Some(dir) = flags.get("out") {
        return emit_files(&world, dir, day, flags);
    }
    let log = world.day_log(day);
    // The canonical serialization includes the `# end` integrity trailer
    // that lets `v6census census` prove a file was not truncated.
    Ok(log.to_text())
}

/// The `--out DIR [--days N]` mode: write day files through the Vfs
/// layer (atomic + durable), optionally under a `--fault-fs` plan.
fn emit_files(world: &World, dir: &str, first: Day, flags: &Flags) -> Result<String, CliError> {
    let days: u32 = flags.get_parsed("days", 1u32)?;
    if days == 0 {
        return Err(err("--days must be at least 1"));
    }
    let mut fs: Arc<dyn Vfs> = Arc::new(RealFs);
    let fault = match flags.get("fault-fs") {
        None => None,
        Some(spec) => {
            let plan =
                FaultPlan::parse(spec).map_err(|e| err(format!("bad --fault-fs plan: {e}")))?;
            let fault = Arc::new(FaultFs::new(fs, plan));
            fs = fault.clone();
            Some(fault)
        }
    };
    let written = world
        .emit_day_logs(fs.as_ref(), Path::new(dir), first, days)
        .map_err(|e| err(format!("emission to {dir} failed: {e}")))?;
    let mut out = String::new();
    for path in &written {
        let _ = writeln!(out, "wrote {}", path.display());
    }
    let _ = writeln!(out, "emitted {} day file(s) to {dir}", written.len());
    if let Some(fault) = fault {
        let _ = writeln!(out, "fault injections: {}", fault.injected());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_parseable_log() {
        let f = Flags::parse(&[
            "--scale".into(),
            "0.005".into(),
            "--day".into(),
            "2015-03-17".into(),
        ]);
        let out = synth(&f).unwrap();
        assert!(out.starts_with("# synthetic day 2015-03-17"));
        let data_lines: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
        assert!(data_lines.len() > 100);
        // Every line round-trips through the weighted parser.
        let (parsed, diag) = crate::input::parse_weighted_lines(&out);
        assert_eq!(diag.total(), 0);
        assert_eq!(parsed.len(), data_lines.len());
        // The integrity trailer is present and consistent.
        let trailer = out.lines().last().unwrap();
        assert!(
            trailer.starts_with("# end "),
            "synth output must end with the integrity trailer, got {trailer:?}"
        );
        assert!(
            trailer.contains(&format!(" {} ", data_lines.len())),
            "{trailer}"
        );
    }

    #[test]
    fn flag_validation() {
        assert!(synth(&Flags::parse(&["--day".into(), "17-03".into()])).is_err());
        assert!(synth(&Flags::parse(&["--scale".into(), "-1".into()])).is_err());
        assert!(synth(&Flags::parse(&["--day".into(), "2015-13-01".into()])).is_err());
        assert!(synth(&Flags::parse(&[
            "--out".into(),
            "x".into(),
            "--days".into(),
            "0".into()
        ]))
        .is_err());
        assert!(synth(&Flags::parse(&[
            "--out".into(),
            "x".into(),
            "--fault-fs".into(),
            "zap".into()
        ]))
        .is_err());
    }

    #[test]
    fn out_mode_writes_day_files() {
        let dir = std::env::temp_dir().join(format!("v6census-synth-out-{}", std::process::id()));
        let f = Flags::parse(&[
            "--scale".into(),
            "0.002".into(),
            "--out".into(),
            dir.display().to_string(),
            "--days".into(),
            "3".into(),
        ]);
        let out = synth(&f).unwrap();
        assert!(out.contains("emitted 3 day file(s)"));
        for day in ["2015-03-17", "2015-03-18", "2015-03-19"] {
            let text = std::fs::read_to_string(dir.join(format!("{day}.log"))).unwrap();
            assert!(text.starts_with(&format!("# synthetic day {day}")));
            assert!(text.lines().last().unwrap().starts_with("# end "));
        }
        // No stale tmp siblings survive a clean emission.
        assert!(std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .all(|e| !e.file_name().to_string_lossy().ends_with(".tmp")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_mode_reports_injected_faults() {
        let dir = std::env::temp_dir().join(format!("v6census-synth-flt-{}", std::process::id()));
        let f = Flags::parse(&[
            "--scale".into(),
            "0.002".into(),
            "--out".into(),
            dir.display().to_string(),
            "--fault-fs".into(),
            "enospc@64:.log".into(),
        ]);
        // ENOSPC mid-write surfaces as a typed CLI error, never a panic,
        // and the atomic write protocol leaves no published file behind.
        assert!(synth(&f).is_err());
        assert!(!dir.join("2015-03-17.log").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
