//! `v6census census` — the full fault-tolerant pipeline over a directory
//! of day-log files: streaming ingestion with an error budget, retries,
//! checkpoints/`--resume`, then Table 1 and gap-aware nd-stability for a
//! reference day.
//!
//! The output has two sections. The *ingest health* section reports what
//! happened to every file (and legitimately differs between an
//! interrupted-then-resumed run and an uninterrupted one); the
//! *analysis* section is a pure function of the ingested days, so a
//! resumed census reproduces it byte-for-byte.

use crate::{err, CliError, Flags};
use std::fmt::Write as _;
use std::path::PathBuf;
use v6census_census::stream::{DuplicatePolicy, ErrorMode, FileOutcome};
use v6census_census::tables::{table1, EpochSpec};
use v6census_census::{IngestConfig, IngestReport, StreamIngestor};
use v6census_core::temporal::{Day, GapPolicy, StabilityParams, VerdictQuality};

/// Parses the `--gap-policy` flag.
fn gap_policy(flags: &Flags) -> Result<GapPolicy, CliError> {
    match flags.get("gap-policy").unwrap_or("widen") {
        "widen" => Ok(GapPolicy::Widen { max_extra: 7 }),
        "flag" => Ok(GapPolicy::Flag),
        "ignore" => Ok(GapPolicy::AssumeInactive),
        other => Err(err(format!(
            "bad --gap-policy {other:?}; expected widen, flag, or ignore"
        ))),
    }
}

/// Builds the [`IngestConfig`] from flags (shared with tests).
pub fn config_from_flags(flags: &Flags) -> Result<IngestConfig, CliError> {
    let mut cfg = IngestConfig {
        max_bad_ratio: flags.get_parsed("max-bad-ratio", 0.01f64)?,
        ..IngestConfig::default()
    };
    if !(0.0..=1.0).contains(&cfg.max_bad_ratio) {
        return Err(err("--max-bad-ratio must be within [0, 1]"));
    }
    if flags.has("strict") {
        cfg.mode = ErrorMode::Strict;
    }
    if flags.has("merge-duplicates") {
        cfg.on_duplicate = DuplicatePolicy::Merge;
    }
    if let Some(dir) = flags.get("checkpoint") {
        cfg.checkpoint_dir = Some(PathBuf::from(dir));
    }
    cfg.resume = flags.has("resume");
    if cfg.resume && cfg.checkpoint_dir.is_none() {
        return Err(err("--resume requires --checkpoint DIR"));
    }
    cfg.max_days = match flags.get("max-days") {
        None => None,
        Some(_) => Some(flags.get_parsed("max-days", 0usize)?),
    };
    Ok(cfg)
}

/// Runs the subcommand: ingest the directory, then render health +
/// analysis sections.
pub fn census(flags: &Flags) -> Result<String, CliError> {
    let dir = flags
        .get("dir")
        .map(str::to_string)
        .or_else(|| flags.positional.first().cloned())
        .ok_or_else(|| err("census requires a log directory (--dir DIR or positional)"))?;
    let cfg = config_from_flags(flags)?;
    let ingestor = StreamIngestor::new(cfg);
    let report = ingestor
        .ingest_dir(std::path::Path::new(&dir))
        .map_err(|e| err(format!("ingest failed: {e}")))?;
    let n: u32 = flags.get_parsed("n", 3u32)?;
    if n == 0 {
        return Err(err("--n must be at least 1"));
    }
    let params = StabilityParams::nd(n);
    let reference = match flags.get("reference") {
        Some(s) => Some(super::synth_day(s)?),
        None => {
            // Default: the middle ingested day, so the ±7d window fits.
            let all: Vec<Day> = report.census.days().collect();
            (!all.is_empty()).then(|| all[all.len() / 2])
        }
    };
    let policy = gap_policy(flags)?;
    Ok(render(&report, reference, &params, policy))
}

/// Renders the two-section report. Split from [`census`] so tests can
/// drive it with a hand-built report.
pub fn render(
    report: &IngestReport,
    reference: Option<Day>,
    params: &StabilityParams,
    policy: GapPolicy,
) -> String {
    let mut out = report.health_report();
    let ingested = report
        .files
        .iter()
        .filter(|f| {
            matches!(
                f.outcome,
                FileOutcome::Ingested | FileOutcome::FromCheckpoint
            )
        })
        .count();
    let _ = writeln!(
        out,
        "files: {} ingested, {} of {} total\n",
        ingested,
        report.files.len() - ingested,
        report.files.len()
    );

    out.push_str("==== analysis ====\n");
    let Some(reference) = reference else {
        out.push_str("no days ingested; nothing to analyze\n");
        return out;
    };
    let _ = writeln!(out, "reference day: {reference}");
    if report.census.summary(reference).is_some() {
        let spec = [EpochSpec {
            label: "reference",
            reference,
        }];
        let (daily, _weekly) = table1(&report.census, &spec);
        out.push('\n');
        out.push_str(&daily.render());
    } else {
        let _ = writeln!(
            out,
            "reference day {reference} was not ingested; Table 1 skipped"
        );
    }

    let obs = report.census.other_daily();
    let active = obs.on(reference);
    let verdict = obs.stable_on_gapped(reference, params, policy);
    let _ = writeln!(out, "\nstability of Other addresses on {reference}:");
    match &verdict.quality {
        VerdictQuality::Complete => {
            let _ = writeln!(out, "  window fully covered");
        }
        VerdictQuality::Widened {
            back_extra,
            fwd_extra,
        } => {
            let _ = writeln!(
                out,
                "  window widened by -{back_extra}d/+{fwd_extra}d to cover ingestion gaps"
            );
        }
        VerdictQuality::Unknown { missing } => {
            let days: Vec<String> = missing.iter().map(|d| d.to_string()).collect();
            let _ = writeln!(
                out,
                "  INCONCLUSIVE: window days never ingested: {}",
                days.join(", ")
            );
        }
    }
    let stable = verdict.stable.len();
    if active.is_empty() {
        let _ = writeln!(out, "  no active addresses on the reference day");
    } else {
        let _ = writeln!(
            out,
            "  {:<16} {:>10} ({:.2}%)\n  {:<16} {:>10} ({:.2}%)",
            params.label(),
            stable,
            100.0 * stable as f64 / active.len() as f64,
            format!("not {}d-stable", params.n),
            active.len() - stable,
            100.0 * (active.len() - stable) as f64 / active.len() as f64,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Flags {
        Flags::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn config_parsing() {
        let cfg = config_from_flags(&flags(&[
            "--max-bad-ratio=0.25",
            "--strict",
            "--checkpoint",
            "ckpts",
            "--resume",
            "--max-days",
            "3",
        ]))
        .unwrap();
        assert_eq!(cfg.max_bad_ratio, 0.25);
        assert_eq!(cfg.mode, ErrorMode::Strict);
        assert_eq!(cfg.checkpoint_dir, Some(PathBuf::from("ckpts")));
        assert!(cfg.resume);
        assert_eq!(cfg.max_days, Some(3));
        let cfg = config_from_flags(&flags(&[])).unwrap();
        assert_eq!(cfg.mode, ErrorMode::Lenient);
        assert_eq!(cfg.on_duplicate, DuplicatePolicy::Reject);
    }

    #[test]
    fn config_validation() {
        assert!(config_from_flags(&flags(&["--max-bad-ratio", "2"])).is_err());
        assert!(config_from_flags(&flags(&["--resume"])).is_err());
        assert!(config_from_flags(&flags(&["--max-days", "x"])).is_err());
        assert!(gap_policy(&flags(&["--gap-policy", "sometimes"])).is_err());
        assert!(matches!(
            gap_policy(&flags(&[])).unwrap(),
            GapPolicy::Widen { .. }
        ));
        assert_eq!(
            gap_policy(&flags(&["--gap-policy=flag"])).unwrap(),
            GapPolicy::Flag
        );
    }

    #[test]
    fn missing_dir_is_an_error() {
        assert!(census(&flags(&[])).is_err());
        let e = census(&flags(&["--dir", "/nonexistent/v6census-test"])).unwrap_err();
        assert!(e.to_string().contains("ingest failed"), "{e}");
    }
}
