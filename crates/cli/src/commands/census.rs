//! `v6census census` — the full fault-tolerant pipeline over a directory
//! of day-log files, run under the supervised parallel engine: streaming
//! ingestion with an error budget, retries, checkpoints/`--resume`, then
//! Table 1, gap-aware nd-stability, and dense-prefix analysis for a
//! reference day — with panic isolation, stage deadlines, and trie node
//! budgets (`--jobs`, `--stage-deadline`, `--max-trie-nodes`).
//!
//! The output has three sections. The *ingest health* section reports
//! what happened to every file (and legitimately differs between an
//! interrupted-then-resumed run and an uninterrupted one); the *run
//! manifest* section reports what supervision did (wall times make it
//! nondeterministic, unless `--no-timings` strips them); the *analysis*
//! section is a pure function of the ingested days, so a resumed census
//! — or one at a different `--jobs` setting — reproduces it
//! byte-for-byte. With `--no-timings` the *entire* report is
//! byte-stable, which the CI determinism job asserts with `diff`.
//!
//! The command returns its overall [`Quality`]; `main` maps a non-exact
//! run to [`crate::EXIT_DEGRADED`] so scripts can tell a clean census
//! from one that shed work.

use crate::{err, CliError, Flags};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use v6census_census::stream::{DuplicatePolicy, ErrorMode, FileOutcome};
use v6census_census::supervisor::{run_census, PipelineConfig, SupervisedRun, SupervisorConfig};
use v6census_census::IngestConfig;
use v6census_core::quality::Quality;
use v6census_core::spatial::DensityClass;
use v6census_core::temporal::{GapPolicy, StabilityParams, VerdictQuality};
use v6census_core::vfs::{FaultFs, FaultPlan};
use v6census_synth::AnalysisFaultPlan;

/// Parses the `--gap-policy` flag.
fn gap_policy(flags: &Flags) -> Result<GapPolicy, CliError> {
    match flags.get("gap-policy").unwrap_or("widen") {
        "widen" => Ok(GapPolicy::Widen { max_extra: 7 }),
        "flag" => Ok(GapPolicy::Flag),
        "ignore" => Ok(GapPolicy::AssumeInactive),
        other => Err(err(format!(
            "bad --gap-policy {other:?}; expected widen, flag, or ignore"
        ))),
    }
}

/// Builds the [`IngestConfig`] from flags (shared with tests).
pub fn config_from_flags(flags: &Flags) -> Result<IngestConfig, CliError> {
    let mut cfg = IngestConfig {
        max_bad_ratio: flags.get_parsed("max-bad-ratio", 0.01f64)?,
        ..IngestConfig::default()
    };
    if !(0.0..=1.0).contains(&cfg.max_bad_ratio) {
        return Err(err("--max-bad-ratio must be within [0, 1]"));
    }
    if flags.has("strict") {
        cfg.mode = ErrorMode::Strict;
    }
    if flags.has("merge-duplicates") {
        cfg.on_duplicate = DuplicatePolicy::Merge;
    }
    if let Some(dir) = flags.get("checkpoint") {
        cfg.checkpoint_dir = Some(PathBuf::from(dir));
    }
    cfg.resume = flags.has("resume");
    if cfg.resume && cfg.checkpoint_dir.is_none() {
        return Err(err("--resume requires --checkpoint DIR"));
    }
    cfg.max_days = match flags.get("max-days") {
        None => None,
        Some(_) => Some(flags.get_parsed("max-days", 0usize)?),
    };
    Ok(cfg)
}

/// Parses the `--fault-fs PLAN` debug flag and, when present, wraps the
/// ingest filesystem in the deterministic fault injector (see
/// [`FaultPlan`] for the plan syntax). Returns the injector handle so
/// the command can report how many faults actually fired. Shared by
/// `census` and `serve`.
pub fn install_fault_fs(
    flags: &Flags,
    cfg: &mut IngestConfig,
) -> Result<Option<Arc<FaultFs>>, CliError> {
    match flags.get("fault-fs") {
        None => Ok(None),
        Some(spec) => {
            let plan =
                FaultPlan::parse(spec).map_err(|e| err(format!("bad --fault-fs plan: {e}")))?;
            let fault = Arc::new(FaultFs::new(Arc::clone(&cfg.vfs), plan));
            cfg.vfs = fault.clone();
            Ok(Some(fault))
        }
    }
}

/// Builds the [`SupervisorConfig`] from flags (shared with tests).
pub fn supervisor_from_flags(flags: &Flags) -> Result<SupervisorConfig, CliError> {
    let jobs: usize = flags.get_parsed("jobs", 1usize)?;
    if jobs == 0 {
        return Err(err("--jobs must be at least 1"));
    }
    let stage_deadline = match flags.get("stage-deadline") {
        None => None,
        Some(_) => {
            let ms: u64 = flags.get_parsed("stage-deadline", 0u64)?;
            if ms == 0 {
                return Err(err("--stage-deadline must be a positive millisecond count"));
            }
            Some(Duration::from_millis(ms))
        }
    };
    let faults = match flags.get("inject") {
        None => AnalysisFaultPlan::none(),
        Some(spec) => AnalysisFaultPlan::parse(spec).map_err(err)?,
    };
    Ok(SupervisorConfig {
        jobs,
        stage_deadline,
        max_trie_nodes: flags.get_parsed("max-trie-nodes", 0usize)?,
        faults,
    })
}

/// Runs the subcommand: ingest the directory under supervision, run the
/// analysis stages, then render health + manifest + analysis sections.
/// Returns the report and the run's overall quality, which `main` maps
/// to the process exit code.
pub fn census(flags: &Flags) -> Result<(String, Quality), CliError> {
    let dir = flags
        .get("dir")
        .map(str::to_string)
        .or_else(|| flags.positional.first().cloned())
        .ok_or_else(|| err("census requires a log directory (--dir DIR or positional)"))?;
    let n: u32 = flags.get_parsed("n", 3u32)?;
    if n == 0 {
        return Err(err("--n must be at least 1"));
    }
    let class: DensityClass = flags
        .get("class")
        .unwrap_or("8@/64")
        .parse()
        .map_err(|e| err(format!("{e}")))?;
    let reference = match flags.get("reference") {
        Some(s) => Some(super::synth_day(s)?),
        // None: the supervisor defaults to the middle ingested day, so
        // the ±7d window fits.
        None => None,
    };
    let params = StabilityParams::nd(n);
    let cfg = PipelineConfig {
        ingest: config_from_flags(flags)?,
        supervisor: supervisor_from_flags(flags)?,
        params,
        reference,
        gap_policy: gap_policy(flags)?,
        dense_n: class.n,
        dense_p: class.p,
    };
    let mut cfg = cfg;
    let fault = install_fault_fs(flags, &mut cfg.ingest)?;
    let run = run_census(std::path::Path::new(&dir), &cfg)
        .map_err(|e| err(format!("ingest failed: {e}")))?;
    let quality = run.overall_quality();
    let timings = !flags.has("no-timings");
    let mut out = render(&run, &params, &class, timings);
    if let Some(fault) = fault {
        let _ = writeln!(out, "fault injections: {}", fault.injected());
    }
    Ok((out, quality))
}

/// Renders the three-section report. Split from [`census`] so tests can
/// drive it with a hand-built run. With `timings` false the manifest is
/// rendered via [`RunManifest::render_stable`], making the whole report
/// a pure function of the ingested data (what `--no-timings` and the CI
/// determinism job rely on).
///
/// [`RunManifest::render_stable`]: v6census_census::supervisor::RunManifest::render_stable
pub fn render(
    run: &SupervisedRun,
    params: &StabilityParams,
    class: &DensityClass,
    timings: bool,
) -> String {
    let report = &run.report;
    let mut out = report.health_report();
    let ingested = report
        .files
        .iter()
        .filter(|f| {
            matches!(
                f.outcome,
                FileOutcome::Ingested | FileOutcome::FromCheckpoint
            )
        })
        .count();
    let _ = writeln!(
        out,
        "files: {} ingested, {} of {} total\n",
        ingested,
        report.files.len() - ingested,
        report.files.len()
    );

    out.push_str(&if timings {
        run.manifest.render()
    } else {
        run.manifest.render_stable()
    });
    out.push('\n');

    out.push_str("==== analysis ====\n");
    let Some(reference) = run.reference else {
        out.push_str("no days ingested; nothing to analyze\n");
        return out;
    };
    let _ = writeln!(out, "reference day: {reference}");
    match &run.table1 {
        None => {
            let _ = writeln!(
                out,
                "reference day {reference} was not ingested; Table 1 skipped"
            );
        }
        Some(t) => match &t.value {
            Some(rendered) => {
                out.push('\n');
                out.push_str(rendered);
                if !t.quality.is_exact() {
                    let _ = writeln!(out, "Table 1{}", t.caveat());
                }
            }
            None => {
                let _ = writeln!(out, "Table 1 unavailable{}", t.caveat());
            }
        },
    }

    let active = report.census.other_daily().on(reference);
    let _ = writeln!(out, "\nstability of Other addresses on {reference}:");
    match run.stability.as_ref().and_then(|s| s.value.as_ref()) {
        None => {
            let caveat = run
                .stability
                .as_ref()
                .map(|s| s.caveat())
                .unwrap_or_default();
            let _ = writeln!(out, "  verdict unavailable{caveat}");
        }
        Some(verdict) => {
            match &verdict.quality {
                VerdictQuality::Complete => {
                    let _ = writeln!(out, "  window fully covered");
                }
                VerdictQuality::Widened {
                    back_extra,
                    fwd_extra,
                } => {
                    let _ = writeln!(
                        out,
                        "  window widened by -{back_extra}d/+{fwd_extra}d to cover ingestion gaps"
                    );
                }
                VerdictQuality::Unknown { missing } => {
                    let days: Vec<String> = missing.iter().map(|d| d.to_string()).collect();
                    let _ = writeln!(
                        out,
                        "  INCONCLUSIVE: window days never ingested: {}",
                        days.join(", ")
                    );
                }
            }
            let stable = verdict.stable.len();
            if active.is_empty() {
                let _ = writeln!(out, "  no active addresses on the reference day");
            } else {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>10} ({:.2}%)\n  {:<16} {:>10} ({:.2}%)",
                    params.label(),
                    stable,
                    100.0 * stable as f64 / active.len() as f64,
                    format!("not {}d-stable", params.n),
                    active.len() - stable,
                    100.0 * (active.len() - stable) as f64 / active.len() as f64,
                );
            }
        }
    }

    if let Some(d) = &run.dense {
        let _ = writeln!(
            out,
            "\n{class} prefixes among Other addresses on {reference}:{}",
            d.caveat()
        );
        if d.value.is_empty() {
            let _ = writeln!(out, "  none");
        }
        for dp in d.value.iter().take(12) {
            let _ = writeln!(out, "  {:<28} {:>10}", dp.prefix.to_string(), dp.count);
        }
        if d.value.len() > 12 {
            let _ = writeln!(out, "  … and {} more", d.value.len() - 12);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_synth::AnalysisFault;

    fn flags(args: &[&str]) -> Flags {
        Flags::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn fault_fs_flag() {
        let mut cfg = config_from_flags(&flags(&[])).unwrap();
        assert!(install_fault_fs(&flags(&[]), &mut cfg).unwrap().is_none());
        let fault = install_fault_fs(&flags(&["--fault-fs", "enospc@64:ckpt"]), &mut cfg)
            .unwrap()
            .expect("valid plan installs the injector");
        assert_eq!(fault.injected(), 0);
        assert!(format!("{:?}", cfg.vfs).contains("FaultFs"));
        assert!(install_fault_fs(&flags(&["--fault-fs", "zap"]), &mut cfg).is_err());
    }

    #[test]
    fn config_parsing() {
        let cfg = config_from_flags(&flags(&[
            "--max-bad-ratio=0.25",
            "--strict",
            "--checkpoint",
            "ckpts",
            "--resume",
            "--max-days",
            "3",
        ]))
        .unwrap();
        assert_eq!(cfg.max_bad_ratio, 0.25);
        assert_eq!(cfg.mode, ErrorMode::Strict);
        assert_eq!(cfg.checkpoint_dir, Some(PathBuf::from("ckpts")));
        assert!(cfg.resume);
        assert_eq!(cfg.max_days, Some(3));
        let cfg = config_from_flags(&flags(&[])).unwrap();
        assert_eq!(cfg.mode, ErrorMode::Lenient);
        assert_eq!(cfg.on_duplicate, DuplicatePolicy::Reject);
    }

    #[test]
    fn config_validation() {
        assert!(config_from_flags(&flags(&["--max-bad-ratio", "2"])).is_err());
        assert!(config_from_flags(&flags(&["--resume"])).is_err());
        assert!(config_from_flags(&flags(&["--max-days", "x"])).is_err());
        assert!(gap_policy(&flags(&["--gap-policy", "sometimes"])).is_err());
        assert!(matches!(
            gap_policy(&flags(&[])).unwrap(),
            GapPolicy::Widen { .. }
        ));
        assert_eq!(
            gap_policy(&flags(&["--gap-policy=flag"])).unwrap(),
            GapPolicy::Flag
        );
    }

    #[test]
    fn supervisor_config_parsing() {
        let cfg = supervisor_from_flags(&flags(&[
            "--jobs=4",
            "--stage-deadline=1500",
            "--max-trie-nodes=4096",
            "--inject=panic:densify/2001,hang:stability:60000",
        ]))
        .unwrap();
        assert_eq!(cfg.jobs, 4);
        assert_eq!(cfg.stage_deadline, Some(Duration::from_millis(1500)));
        assert_eq!(cfg.max_trie_nodes, 4096);
        assert_eq!(cfg.faults.rules().len(), 2);
        assert!(matches!(
            cfg.faults.fault_for("densify/2001"),
            Some(AnalysisFault::PanicShard { .. })
        ));

        let cfg = supervisor_from_flags(&flags(&[])).unwrap();
        assert_eq!(cfg.jobs, 1);
        assert_eq!(cfg.stage_deadline, None);
        assert_eq!(cfg.max_trie_nodes, 0);
        assert!(cfg.faults.is_empty());
    }

    #[test]
    fn supervisor_config_validation() {
        assert!(supervisor_from_flags(&flags(&["--jobs=0"])).is_err());
        assert!(supervisor_from_flags(&flags(&["--jobs=x"])).is_err());
        assert!(supervisor_from_flags(&flags(&["--stage-deadline=0"])).is_err());
        assert!(supervisor_from_flags(&flags(&["--inject=warble:x"])).is_err());
    }

    #[test]
    fn missing_dir_is_an_error() {
        assert!(census(&flags(&[])).is_err());
        let e = census(&flags(&["--dir", "/nonexistent/v6census-test"])).unwrap_err();
        assert!(e.to_string().contains("ingest failed"), "{e}");
    }
}
