//! `v6census ptr` — conversion between addresses and `ip6.arpa` pointer
//! names (the §6.2.3 harvesting direction and its inverse).

use crate::{err, CliError, Flags};
use std::fmt::Write as _;
use v6census_addr::Addr;

/// Runs the subcommand.
pub fn ptr(input: &str, flags: &Flags) -> Result<String, CliError> {
    let reverse = flags.has("reverse");
    let mut out = String::new();
    let mut converted = 0usize;
    let mut bad = 0usize;
    for line in input.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if reverse {
            match Addr::from_ip6_arpa(t) {
                Ok(a) => {
                    let _ = writeln!(out, "{a}");
                    converted += 1;
                }
                Err(_) => bad += 1,
            }
        } else {
            match t.parse::<Addr>() {
                Ok(a) => {
                    let _ = writeln!(out, "{}", a.to_ip6_arpa());
                    converted += 1;
                }
                Err(_) => bad += 1,
            }
        }
    }
    if converted == 0 {
        return Err(err(format!(
            "nothing converted ({bad} unparseable lines); use --reverse for ip6.arpa input"
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_back() {
        let fwd = ptr("2001:db8::1\n", &Flags::default()).unwrap();
        assert!(fwd.trim().ends_with("ip6.arpa"));
        let back = ptr(&fwd, &Flags::parse(&["--reverse".into()])).unwrap();
        assert_eq!(back.trim(), "2001:db8::1");
    }

    #[test]
    fn empty_is_error() {
        assert!(ptr("junk\n", &Flags::default()).is_err());
    }
}
