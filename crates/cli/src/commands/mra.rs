//! `v6census mra` — the §5.2.1 MRA plot for an arbitrary population.

use crate::input::addr_set;
use crate::{CliError, Flags};
use std::fmt::Write as _;
use v6census_census::figures::MraFigure;
use v6census_census::plot::{ascii_mra, tsv_mra};
use v6census_core::spatial::MraCurve;

/// Runs the subcommand.
pub fn mra(input: &str, flags: &Flags) -> Result<String, CliError> {
    let (set, _) = addr_set(input)?;
    let title = flags.get("title").unwrap_or("stdin population");
    let fig = MraFigure::of(title, &set);
    if flags.has("tsv") {
        return Ok(tsv_mra(&fig));
    }
    let mut out = ascii_mra(&fig);
    let curve = MraCurve::of(&set);
    let sig = curve.privacy_signature();
    let _ = writeln!(
        out,
        "privacy signature : {} (head {:.2}, u-bit {:.2}, flatline {:?})",
        if sig.matches() { "present" } else { "absent" },
        sig.iid_head_ratio,
        sig.u_bit_ratio,
        sig.flatline_at
    );
    let _ = writeln!(out, "112-128 bit mass  : {:.3}", curve.tail_prominence());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> String {
        // Dense low-IID block: strong tail prominence.
        (1..=64u32)
            .map(|i| format!("2001:db8:1:2::{i:x}\n"))
            .collect()
    }

    #[test]
    fn ascii_output_with_signature_lines() {
        let out = mra(&population(), &Flags::default()).unwrap();
        assert!(out.contains("privacy signature : absent"));
        assert!(out.contains("112-128 bit mass"));
        assert!(out.contains("single bits"));
    }

    #[test]
    fn tsv_output() {
        let f = Flags::parse(&["--tsv".into()]);
        let out = mra(&population(), &f).unwrap();
        assert!(out.starts_with("# prefix_len"));
        assert!(out.lines().count() > 100);
    }
}
