//! `v6census aggregate` — Kohler-style active aggregate counts (n_p for
//! all prefix lengths) or per-aggregate populations at one length.

use crate::input::addr_set;
use crate::{CliError, Flags};
use std::fmt::Write as _;
use v6census_core::spatial::Ccdf;
use v6census_trie::{populations, AggregateCounts};

/// Runs the subcommand.
pub fn aggregate(input: &str, flags: &Flags) -> Result<String, CliError> {
    let (set, _) = addr_set(input)?;
    let mut out = String::new();

    if flags.has("populations") {
        let p: u8 = flags.get_parsed("length", 64u8)?;
        let pops = populations(&set, p.min(128));
        let ccdf = Ccdf::new(pops.clone());
        let _ = writeln!(out, "# populations of active /{p} aggregates");
        let _ = writeln!(out, "aggregates : {}", pops.len());
        let _ = writeln!(out, "max        : {}", ccdf.max());
        let _ = writeln!(out, "median     : {}", ccdf.quantile(0.5));
        let _ = writeln!(out, "p99        : {}", ccdf.quantile(0.99));
        let _ = writeln!(out, "\n# ccdf: population  proportion_ge");
        for (x, prop) in ccdf.steps() {
            let _ = writeln!(out, "{x}\t{prop:.9}");
        }
        return Ok(out);
    }

    let agg = AggregateCounts::of(&set);
    let _ = writeln!(out, "# p\tn_p\tgamma1\tgamma16");
    for p in 0..=128u8 {
        let g1 = if p < 128 {
            format!("{:.4}", agg.ratio(p, 1))
        } else {
            String::new()
        };
        let g16 = if p % 16 == 0 && p < 128 {
            format!("{:.4}", agg.ratio(p, 16))
        } else {
            String::new()
        };
        let _ = writeln!(out, "{p}\t{}\t{g1}\t{g16}", agg.n(p));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const INPUT: &str = "2001:db8::1\n2001:db8::2\n2001:db8:1::1\n";

    #[test]
    fn counts_table() {
        let out = aggregate(INPUT, &Flags::default()).unwrap();
        assert!(out.contains("# p\tn_p"));
        // n_0 = 1 and n_128 = 3 rows present.
        assert!(out.lines().any(|l| l.starts_with("0\t1\t")));
        assert!(out.lines().any(|l| l.starts_with("128\t3")));
    }

    #[test]
    fn populations_mode() {
        let f = Flags::parse(&["--populations".into(), "--length".into(), "64".into()]);
        let out = aggregate(INPUT, &f).unwrap();
        assert!(out.contains("aggregates : 2"));
        assert!(out.contains("max        : 2"));
    }
}
