//! `v6census stability` — the paper's full nd-stable analysis (§5.1)
//! over user-supplied daily observation files.
//!
//! Input: a directory of files named `YYYY-MM-DD` (any extension), each
//! holding one address per line. Output: per-day active counts and the
//! nd-stable / not-nd-stable partition for a reference day, for both
//! addresses and /64s — i.e. one column of the paper's Table 2a/2b for
//! your own data.

use crate::input::parse_addr_lines;
use crate::{err, CliError, Flags};
use std::fmt::Write as _;
use v6census_core::temporal::{DailyObservations, Day, StabilityParams};

/// One day's input: its date and file contents.
pub struct DayFile {
    /// The observation date.
    pub day: Day,
    /// File contents (one address per line).
    pub text: String,
}

/// Parses `YYYY-MM-DD` from the start of a file stem.
pub fn day_from_name(name: &str) -> Option<Day> {
    let stem = name.split('.').next()?;
    let mut parts = stem.splitn(3, '-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u8 = parts.next()?.parse().ok()?;
    let d: u8 = parts.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(Day::from_ymd(y, m, d))
}

/// Runs the subcommand over pre-read day files (main.rs handles I/O).
pub fn stability(days: Vec<DayFile>, flags: &Flags) -> Result<String, CliError> {
    if days.is_empty() {
        return Err(err(
            "no day files found (expected names like 2015-03-17.txt with one address per line)",
        ));
    }
    let n: u32 = flags.get_parsed("n", 3u32)?;
    let reach: u32 = flags.get_parsed("window", 7u32)?;
    let slew: u32 = flags.get_parsed("slew", 0u32)?;
    if n == 0 {
        return Err(err("--n must be at least 1"));
    }
    let params = StabilityParams::nd(n)
        .with_window(reach, reach)
        .with_slew(slew);

    let mut obs = DailyObservations::new();
    let mut total_bad = 0usize;
    for f in &days {
        let (addrs, bad) = parse_addr_lines(&f.text);
        total_bad += bad;
        obs.record(f.day, v6census_trie::AddrSet::from_iter(addrs));
    }
    let reference = match flags.get("reference") {
        Some(s) => super::synth_day(s)?,
        None => {
            // Default: the middle observed day.
            let all: Vec<Day> = obs.days().collect();
            all[all.len() / 2]
        }
    };

    let mut out = format!(
        "# {} over {} days ({} unparseable lines)\n\n",
        params.label(),
        obs.day_count(),
        total_bad
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>12} {:>10}",
        "day", "active", "∩reference", "/64s"
    );
    let ref_set = obs.on(reference);
    for d in obs.days().collect::<Vec<_>>() {
        let set = obs.on(d);
        let marker = if d == reference { "  <- reference" } else { "" };
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>12} {:>10}{marker}",
            d.to_string(),
            set.len(),
            ref_set.intersection_len(&set),
            set.map_prefix(64).len(),
        );
    }

    for (what, store) in [
        ("addresses", obs.clone()),
        ("/64 prefixes", obs.prefix_view(64)),
    ] {
        let active = store.on(reference);
        if active.is_empty() {
            let _ = writeln!(out, "\n{what}: reference day has no observations");
            continue;
        }
        let stable = store.stable_on(reference, &params);
        let _ = writeln!(
            out,
            "\n{what} on {reference}:\n  {:<16} {:>10} ({:.2}%)\n  {:<16} {:>10} ({:.2}%)",
            params.label(),
            stable.len(),
            100.0 * stable.len() as f64 / active.len() as f64,
            format!("not {}d-stable", params.n),
            active.len() - stable.len(),
            100.0 * (active.len() - stable.len()) as f64 / active.len() as f64,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dayfile(date: &str, addrs: &[&str]) -> DayFile {
        DayFile {
            day: day_from_name(date).unwrap(),
            text: addrs.join("\n"),
        }
    }

    #[test]
    fn date_parsing_from_names() {
        assert_eq!(
            day_from_name("2015-03-17.txt"),
            Some(Day::from_ymd(2015, 3, 17))
        );
        assert_eq!(
            day_from_name("2015-03-17"),
            Some(Day::from_ymd(2015, 3, 17))
        );
        assert_eq!(day_from_name("notes.txt"), None);
        assert_eq!(day_from_name("2015-13-17.txt"), None);
    }

    #[test]
    fn partitions_reference_day() {
        let days = vec![
            dayfile("2015-03-16.txt", &["2001:db8::a", "2001:db8::b"]),
            dayfile("2015-03-17.txt", &["2001:db8::a", "2001:db8::c"]),
            dayfile("2015-03-20.txt", &["2001:db8::a"]),
        ];
        let f = Flags::parse(&["--reference".into(), "2015-03-17".into()]);
        let out = stability(days, &f).unwrap();
        // ::a is 3d-stable (17th + 20th); ::c is not.
        assert!(out.contains("3d-stable (-7d,+7d)"));
        assert!(out.contains("1 (50.00%)"), "{out}");
        assert!(out.contains("<- reference"));
    }

    #[test]
    fn parameter_overrides() {
        let days = vec![
            dayfile("2015-03-17.txt", &["2001:db8::a"]),
            dayfile("2015-03-18.txt", &["2001:db8::a"]),
        ];
        let f = Flags::parse(&[
            "--n".into(),
            "1".into(),
            "--window".into(),
            "3".into(),
            "--reference".into(),
            "2015-03-17".into(),
        ]);
        let out = stability(days, &f).unwrap();
        assert!(out.contains("1d-stable (-3d,+3d)"));
        assert!(out.contains("1 (100.00%)"), "{out}");
    }

    #[test]
    fn errors() {
        assert!(stability(vec![], &Flags::default()).is_err());
        let days = vec![dayfile("2015-03-17.txt", &["2001:db8::a"])];
        assert!(stability(days, &Flags::parse(&["--n".into(), "0".into()])).is_err());
    }
}
