//! The subcommand implementations. Each takes its input text (already
//! read) plus parsed [`crate::Flags`] and returns the output string.

mod aggregate;
mod census;
mod classify;
mod dense;
mod mra;
mod profile;
mod ptr;
mod serve;
mod stability;
mod stable;
mod synth;
mod targets;

pub use aggregate::aggregate;
pub use census::census;
pub use classify::classify;
pub use dense::dense;
pub use mra::mra;
pub use profile::profile;
pub use ptr::ptr;
pub use serve::{serve, serve_config_from_flags};
pub use stability::{day_from_name, stability, DayFile};
pub use stable::stable;
pub use synth::synth;
pub use targets::targets;

pub(crate) use synth::parse_day as synth_day;

/// Usage text for the tool.
pub const USAGE: &str = "\
v6census — temporal & spatial classification of IPv6 addresses (IMC'15)

USAGE: v6census <command> [flags]   (address input on stdin, one per line)

COMMANDS
  classify              content-based scheme per address; summary histogram
                        [--tsv] [--malone]
  mra                   Multi-Resolution Aggregate plot + signatures
                        [--title T] [--tsv]
  dense                 n@/p-dense prefixes and density report
                        [--class 2@/112] [--table3] [--general]
  aggregate             active aggregate counts n_p, or populations
                        [--length P] [--populations]
  stable                cross-epoch stability spectrum + boundary (§7.2)
                        --earlier FILE  (current epoch on stdin)
                        [--threshold 0.5] [--step 8] [--prefixes]
  stability             full nd-stable analysis over daily files (§5.1)
                        --dir DIR  (files named YYYY-MM-DD*, one addr/line)
                        [--n 3] [--window 7] [--slew 0] [--reference DATE]
  census                fault-tolerant supervised pipeline over day-log files:
                        ingest health, run manifest, Table 1, gap-aware
                        stability, dense prefixes
                        --dir DIR (or positional; files named YYYY-MM-DD*)
                        [--max-bad-ratio 0.01] [--strict] [--merge-duplicates]
                        [--checkpoint DIR] [--resume] [--max-days N]
                        [--n 3] [--reference DATE] [--gap-policy widen|flag|ignore]
                        [--jobs 1] worker threads per analysis stage
                        [--stage-deadline MS] per-stage wall-clock deadline
                        [--max-trie-nodes N] densify node budget (degrade, not die)
                        [--class 8@/64] density class for the dense section
                        [--no-timings] omit wall clocks from the manifest so
                          the report is byte-identical across reruns/--jobs
                        [--inject SPEC] analysis fault drill, e.g.
                          panic:densify/2001  hang:stability:60000  slow:ingest:50
  serve                 crash-safe census daemon over day-log files:
                        background incremental ingest, immutable published
                        snapshots, HTTP/1.1 queries on /stable/<addr>,
                        /classify/<prefix>, /stats, /healthz, /readyz
                        --dir DIR (or positional; files named YYYY-MM-DD*)
                        [--bind 127.0.0.1:0] prints `listening on ADDR`
                        [--state DIR] crash-safe journal + checkpoints
                        [--routing FILE] `prefix asn` lines for /classify
                        [--max-connections 64] load-shed (503) past the cap
                        [--header-deadline-ms 3000] [--max-request-bytes 8192]
                        [--read-timeout-ms 2000] [--write-timeout-ms 2000]
                        [--poll-ms 200] source rescan cadence
                        [--drain-ms 5000] graceful-drain deadline
                        [--run-for-ms MS] exit after MS (default: stdin EOF)
                        [--n 3] [--class 8@/64] plus the census ingest flags
  targets               probe-target list from dense prefixes (§6.2.2)
                        [--class 2@/112] [--budget 10000] [--include-observed]
  ptr                   addresses -> ip6.arpa names [--reverse]
  profile               aguri traffic profile from `addr hits` lines
                        [--threshold 0.01]
  synth                 emit a synthetic day log (addr, hits, true kind)
                        [--day 2015-03-17] [--scale 0.02] [--seed N]
  help                  this text

EXIT CODES
  0  success, all results exact
  1  data or I/O error (bad input, strict-mode abort, unreadable files)
  2  usage error (unknown command, missing arguments)
  3  completed but degraded: some result is coarser or partial — a shard
     panicked twice, a stage hit its deadline, or a budget forced coarser
     aggregation; the run manifest in the output names every casualty.
     For `serve`: the daemon ran and drained, but had to abandon
     in-flight connections at the drain deadline (the summary says how
     many). A serve that cannot even start (bad bind, unusable state
     dir) exits 1; bad flags exit 2.
";
