//! Library backing the `v6census` command-line tool.
//!
//! Every subcommand is a pure function from parsed input to an output
//! string, so the full command surface is unit-testable without spawning
//! processes; `src/main.rs` only does argument splitting and I/O.
//!
//! Subcommands:
//!
//! * `classify`  — content-based scheme classification per address (§3)
//! * `mra`       — Multi-Resolution Aggregate plot + signatures (§5.2.1)
//! * `dense`     — `n@/p-dense` prefixes and the density report (§5.2.2)
//! * `aggregate` — active aggregate counts / populations (Kohler metrics)
//! * `stable`    — cross-epoch stability spectrum and boundary (§7.2)
//! * `ptr`       — `ip6.arpa` pointer names, both directions
//! * `profile`   — aguri-style traffic profile from `addr hits` lines
//! * `synth`     — emit a synthetic day log for piping into the above
//! * `census`    — fault-tolerant streaming pipeline over day-log files,
//!   run under the supervised parallel engine: ingest health report, run
//!   manifest, Table 1, gap-aware stability, dense prefixes
//!
//! Exit codes: [`EXIT_OK`] (0), [`EXIT_DATA_ERROR`] (1), [`EXIT_USAGE`]
//! (2), and [`EXIT_DEGRADED`] (3) for a run that completed but shed work
//! (see the run manifest in its output).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod input;

/// Exit code: success with an exact (no caveat) result.
pub const EXIT_OK: i32 = 0;
/// Exit code: the command failed on its data or I/O (bad input, strict
/// abort, unreadable files).
pub const EXIT_DATA_ERROR: i32 = 1;
/// Exit code: usage error (unknown command, missing arguments).
pub const EXIT_USAGE: i32 = 2;
/// Exit code: the command *completed* but some result is `Degraded` or
/// `Partial` — a supervised census that excluded a panicked shard, hit a
/// trie budget, or lost a stage to its deadline. The report itself says
/// what was shed; scripts gate on this code.
pub const EXIT_DEGRADED: i32 = 3;

/// A command error carrying the message shown to the user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Shorthand constructor.
pub fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Minimal flag parser: `--key value` pairs plus positional arguments.
#[derive(Debug, Default, Clone)]
pub struct Flags {
    kv: Vec<(String, String)>,
    /// Bare (non-flag) arguments in order.
    pub positional: Vec<String>,
    /// Flags given without a value (`--tsv`).
    pub switches: Vec<String>,
}

impl Flags {
    /// Parses an argument list. Both `--key value` and `--key=value` are
    /// accepted. In the two-token form, `--key` consumes the next token
    /// as its value unless that token also starts with `--` or is
    /// absent, in which case it is a switch; the `--key=value` form has
    /// no such ambiguity, so it is the way to pass a value that itself
    /// starts with `--`.
    pub fn parse(args: &[String]) -> Flags {
        let mut f = Flags::default();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    f.kv.push((key.to_string(), value.to_string()));
                    i += 1;
                    continue;
                }
                match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        f.kv.push((name.to_string(), v.clone()));
                        i += 2;
                    }
                    _ => {
                        f.switches.push(name.to_string());
                        i += 1;
                    }
                }
            } else {
                f.positional.push(a.clone());
                i += 1;
            }
        }
        f
    }

    /// The value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.kv
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when `--name` appeared as a switch (or with any value).
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name) || self.get(name).is_some()
    }

    /// Parses `--name` into `T`, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("bad value for --{name}: {v:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Flags {
        Flags::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_kv_switches_positional() {
        let f = flags(&["--scale", "0.5", "pos1", "--tsv", "--seed", "7", "pos2"]);
        assert_eq!(f.get("scale"), Some("0.5"));
        assert_eq!(f.get("seed"), Some("7"));
        assert!(f.has("tsv"));
        assert!(!f.has("scale-x"));
        assert_eq!(f.positional, vec!["pos1", "pos2"]);
        assert_eq!(f.get_parsed("scale", 1.0f64).unwrap(), 0.5);
        assert_eq!(f.get_parsed("missing", 42u32).unwrap(), 42);
        assert!(f.get_parsed::<u32>("scale", 0).is_err());
    }

    #[test]
    fn trailing_flag_is_switch() {
        let f = flags(&["--tsv"]);
        assert!(f.has("tsv"));
        assert_eq!(f.get("tsv"), None);
    }

    #[test]
    fn key_equals_value_form() {
        let f = flags(&["--scale=0.5", "--title=MRA plot", "pos"]);
        assert_eq!(f.get("scale"), Some("0.5"));
        assert_eq!(f.get("title"), Some("MRA plot"));
        assert_eq!(f.positional, vec!["pos"]);
        assert_eq!(f.get_parsed("scale", 1.0f64).unwrap(), 0.5);
    }

    #[test]
    fn equals_form_carries_values_starting_with_dashes() {
        // `--title --tsv` makes --title a switch; `--title=--tsv` does not.
        let f = flags(&["--title=--tsv", "--gap-policy=widen"]);
        assert_eq!(f.get("title"), Some("--tsv"));
        assert!(!f.switches.iter().any(|s| s == "tsv"));
        assert_eq!(f.get("gap-policy"), Some("widen"));
        // Empty value and embedded '=' both survive.
        let f = flags(&["--note=", "--expr=a=b"]);
        assert_eq!(f.get("note"), Some(""));
        assert_eq!(f.get("expr"), Some("a=b"));
        assert!(f.has("note"), "a valued flag still answers has()");
    }

    #[test]
    fn two_token_form_still_treats_dashes_as_switch() {
        let f = flags(&["--strict", "--dir", "logs"]);
        assert!(f.has("strict"));
        assert_eq!(f.get("dir"), Some("logs"));
    }
}
