//! Ground-truth labels for synthetic addresses.
//!
//! The real study had no ground truth — that is its premise. The synthetic
//! world *does*, which lets the test suite and experiments quantify
//! classifier behaviour (e.g. the Malone content-only baseline's recall
//! against true privacy addresses, §2) in a way the paper could only
//! estimate.

use v6census_addr::Mac;

/// What an address *actually is* in the synthetic world.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrueKind {
    /// RFC 4941 privacy IID, regenerated every `rotation_days` days.
    Privacy {
        /// Days between IID regenerations (1 = default 24 h lifetime).
        rotation_days: u16,
    },
    /// RFC 7217 stable-privacy IID: opaque but constant per (device,
    /// subnet).
    StablePrivacy,
    /// SLAAC modified EUI-64 IID embedding the device MAC.
    Eui64 {
        /// The embedded MAC address.
        mac: Mac,
    },
    /// A fixed interface identifier burned into the device or chipset —
    /// including the shared values the paper found on many mobile devices
    /// simultaneously (§1 highlights).
    FixedIid,
    /// An address from a DHCPv6 pool of small sequential IIDs.
    Dhcp,
    /// A statically assigned server/infrastructure address.
    StaticServer,
    /// An always-on CPE / home-gateway client with a stable address.
    Cpe,
    /// A 6to4 client (2002::/16).
    SixToFour,
    /// A Teredo client (2001::/32).
    Teredo,
    /// An ISATAP host (IID `[02]00:5efe` + IPv4).
    Isatap,
}

impl TrueKind {
    /// True when the address is genuinely ephemeral by construction
    /// (rotating privacy IIDs).
    pub const fn is_ephemeral(self) -> bool {
        matches!(self, TrueKind::Privacy { .. })
    }

    /// True for the transition mechanisms the census culls (§4.1).
    pub const fn is_transition(self) -> bool {
        matches!(
            self,
            TrueKind::SixToFour | TrueKind::Teredo | TrueKind::Isatap
        )
    }

    /// A short label for reports and TSV output.
    pub const fn label(self) -> &'static str {
        match self {
            TrueKind::Privacy { .. } => "privacy",
            TrueKind::StablePrivacy => "stable-privacy",
            TrueKind::Eui64 { .. } => "eui64",
            TrueKind::FixedIid => "fixed-iid",
            TrueKind::Dhcp => "dhcp",
            TrueKind::StaticServer => "static-server",
            TrueKind::Cpe => "cpe",
            TrueKind::SixToFour => "6to4",
            TrueKind::Teredo => "teredo",
            TrueKind::Isatap => "isatap",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(TrueKind::Privacy { rotation_days: 1 }.is_ephemeral());
        assert!(!TrueKind::StablePrivacy.is_ephemeral());
        assert!(TrueKind::Teredo.is_transition());
        assert!(TrueKind::SixToFour.is_transition());
        assert!(TrueKind::Isatap.is_transition());
        assert!(!TrueKind::Cpe.is_transition());
    }

    #[test]
    fn labels_distinct() {
        let kinds = [
            TrueKind::Privacy { rotation_days: 1 },
            TrueKind::StablePrivacy,
            TrueKind::Eui64 {
                mac: Mac::PAPER_DUPLICATE,
            },
            TrueKind::FixedIid,
            TrueKind::Dhcp,
            TrueKind::StaticServer,
            TrueKind::Cpe,
            TrueKind::SixToFour,
            TrueKind::Teredo,
            TrueKind::Isatap,
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }
}
