//! The reverse-DNS oracle: `ip6.arpa` PTR lookups over the synthetic
//! world (§6.2.3's PTR-harvest application).
//!
//! Operators commonly provision PTR records for *ranges* — every address
//! of a server block or infrastructure subnet — not just for hosts that
//! happen to be active. That is why the paper's scan of the 2.12 M
//! possible addresses of the 3@/120-dense class yielded 47 K more names
//! than querying only observed client addresses: dense blocks name their
//! silent neighbours too. The oracle reproduces that behaviour.

use crate::archetype::{dense_dept_iid, dense_dept_net_high, DENSE_DEPT_HOSTS};
use crate::router::{iface_addr, infra_high, looks_like_infra, IfaceClass};
use crate::world::{asns, World};
use v6census_addr::Addr;
use v6census_core::temporal::Day;
use v6census_trie::PrefixMap;

/// A PTR-lookup oracle bound to a routing-table snapshot.
pub struct PtrOracle<'w> {
    world: &'w World,
    routing: PrefixMap<u32>,
}

impl World {
    /// Builds the PTR oracle for the routing table of `day`.
    pub fn ptr_oracle(&self, day: Day) -> PtrOracle<'_> {
        PtrOracle {
            world: self,
            routing: self.routing_table(day),
        }
    }
}

impl PtrOracle<'_> {
    /// Resolves the PTR record for one address, if the operator
    /// provisioned one.
    pub fn ptr_name(&self, a: Addr) -> Option<String> {
        let asn = self.routing.longest_match(a).map(|(_, &asn)| asn)?;
        let network = self.world.network(asn)?;
        let base_high = (network.prefixes[0].addr().0 >> 64) as u64;

        // Dense DHCPv6 department (Figure 5g): hosts named dhcpv6-N.
        if asn == asns::UNIVERSITY_FIRST && a.network_bits() == dense_dept_net_high(base_high) {
            for h in 0..DENSE_DEPT_HOSTS {
                if a.iid_bits() == dense_dept_iid(h) {
                    return Some(format!("dhcpv6-{h}.cs.uni0.example.edu"));
                }
            }
            return None;
        }

        // Infrastructure /48: the whole interface ranges are provisioned
        // (location-bearing names — "valuable hints to IP geolocation").
        if looks_like_infra(a) && a.network_bits() == infra_high(base_high) {
            let iid = a.iid_bits();
            let class = iid >> 32;
            let idx = iid & 0xffff_ffff;
            let name = match class {
                1 if idx <= 0xffff => {
                    Some(format!("lo0.r{idx}.pop{}.as{asn}.example.net", idx % 7))
                }
                2 if idx <= 0xff_ffff => Some(format!(
                    "xe-{}-{}.r{}.pop{}.as{asn}.example.net",
                    idx & 1,
                    idx >> 1,
                    (idx >> 1) % 97,
                    (idx >> 1) % 7
                )),
                3 if idx <= 0xf_ffff => Some(format!("mgmt{idx}.as{asn}.example.net")),
                _ => None,
            };
            return name;
        }

        // Hosting / server blocks: PTRs pre-provisioned for the whole
        // low range of each server subnet, active or not.
        let high = a.network_bits();
        let is_server_subnet = (high & 0xf000_0000) == 0xf000_0000 && (high & 0x0fff_0000) == 0;
        if is_server_subnet && a.iid_bits() >= 1 && a.iid_bits() <= 0x200 {
            return Some(format!(
                "srv-{}-{}.as{asn}.example.com",
                high & 0xffff,
                a.iid_bits()
            ));
        }

        None
    }

    /// Resolves a batch and counts the names found (the §6.2.3 harvest
    /// metric).
    pub fn harvest<I: IntoIterator<Item = Addr>>(&self, addrs: I) -> usize {
        addrs
            .into_iter()
            .filter(|&a| self.ptr_name(a).is_some())
            .count()
    }
}

/// Convenience: the router interface address for doc-tests and harnesses
/// that need a known-named address.
pub fn sample_infra_addr(base_high: u64) -> Addr {
    iface_addr(infra_high(base_high), IfaceClass::Loopback, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{epochs, WorldConfig};

    fn world() -> World {
        World::standard(WorldConfig::tiny(11))
    }

    #[test]
    fn dense_dept_hosts_have_dhcpv6_names() {
        let w = world();
        let oracle = w.ptr_oracle(epochs::mar2015());
        let uni = w.network(asns::UNIVERSITY_FIRST).unwrap();
        let base_high = (uni.prefixes[0].addr().0 >> 64) as u64;
        let net = dense_dept_net_high(base_high);
        let host = Addr(((net as u128) << 64) | dense_dept_iid(5) as u128);
        let name = oracle.ptr_name(host).unwrap();
        assert!(name.starts_with("dhcpv6-"), "{name}");
        // A random privacy-style address in the same campus has no PTR.
        let anon = Addr(((net as u128) << 64) | 0xdead_beef_cafe_f00d);
        assert_eq!(oracle.ptr_name(anon), None);
    }

    #[test]
    fn infra_ranges_resolve_even_when_never_observed() {
        let w = world();
        let oracle = w.ptr_oracle(epochs::mar2015());
        let jp = w.network(asns::JP_ISP).unwrap();
        let base_high = (jp.prefixes[0].addr().0 >> 64) as u64;
        let never_probed = iface_addr(infra_high(base_high), IfaceClass::Loopback, 777);
        let name = oracle.ptr_name(never_probed).unwrap();
        assert!(name.contains(&format!("as{}", asns::JP_ISP)), "{name}");
    }

    #[test]
    fn server_blocks_are_fully_named() {
        let w = world();
        let oracle = w.ptr_oracle(epochs::mar2015());
        let hosting = w.network(asns::HOSTING_FIRST).unwrap();
        let base_high = (hosting.prefixes[0].addr().0 >> 64) as u64;
        let net_high = base_high | (0xf << 28) | 1;
        // Active range and silent neighbours both resolve.
        for iid in [1u64, 47, 0x1ff] {
            let a = Addr(((net_high as u128) << 64) | iid as u128);
            assert!(oracle.ptr_name(a).is_some(), "no PTR for {a}");
        }
        // Far outside the provisioned range: nothing.
        let far = Addr(((net_high as u128) << 64) | 0xffff);
        assert_eq!(oracle.ptr_name(far), None);
    }

    #[test]
    fn harvest_counts() {
        let w = world();
        let oracle = w.ptr_oracle(epochs::mar2015());
        let hosting = w.network(asns::HOSTING_FIRST).unwrap();
        let base_high = (hosting.prefixes[0].addr().0 >> 64) as u64;
        let net_high = (base_high | (0xf << 28) | 1) as u128;
        let range: Vec<Addr> = (1..=100u128).map(|i| Addr((net_high << 64) | i)).collect();
        assert_eq!(oracle.harvest(range), 100);
    }
}
