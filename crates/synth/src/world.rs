//! The synthetic Internet: ASN population, BGP allocations, and growth.
//!
//! The world stands in for the paper's proprietary vantage point (a global
//! CDN's client logs). Its parameters are sized so that at `scale = 1.0`
//! the daily/weekly populations are ≈ 1/1000 of the paper's March 2015
//! numbers, with the same *composition*: the top-5 ASNs carry ~85% of
//! active /64s; two of them are mobile carriers with dynamic /64 pools;
//! legacy 6to4/Teredo/ISATAP traffic rides alongside; and growth between
//! the three study epochs (Mar 2014, Sep 2014, Mar 2015) follows the
//! paper's Table 1 ratios.

use crate::archetype::Archetype;
use crate::rng::Entropy;
use v6census_addr::{Addr, Prefix};
use v6census_core::temporal::Day;
use v6census_trie::PrefixMap;

/// Configuration of a synthetic world.
#[derive(Clone, Copy, Debug)]
pub struct WorldConfig {
    /// Master seed; every derived quantity is a pure function of it.
    pub seed: u64,
    /// Population scale. `1.0` ≈ 1/1000 of the paper's populations
    /// (≈ 300 K daily active addresses in March 2015); tests use smaller
    /// values.
    pub scale: f64,
}

impl Default for WorldConfig {
    fn default() -> WorldConfig {
        WorldConfig {
            seed: 0x76c3_15c3_0001,
            scale: 1.0,
        }
    }
}

impl WorldConfig {
    /// A small world for unit tests (~2% of the default population).
    pub fn tiny(seed: u64) -> WorldConfig {
        WorldConfig { seed, scale: 0.02 }
    }
}

/// The paper's three study epochs.
pub mod epochs {
    use v6census_core::temporal::Day;

    /// March 17, 2014.
    pub fn mar2014() -> Day {
        Day::from_ymd(2014, 3, 17)
    }
    /// September 17, 2014.
    pub fn sep2014() -> Day {
        Day::from_ymd(2014, 9, 17)
    }
    /// March 17, 2015.
    pub fn mar2015() -> Day {
        Day::from_ymd(2015, 3, 17)
    }
}

/// Deployment growth: the fraction of the end-of-study subscriber base
/// that has IPv6 connectivity on `day`. Anchored to the paper's Table 1
/// daily "Other" address counts (149 M / 199 M / 318 M ⇒ 0.47 / 0.63 /
/// 1.0), linearly interpolated, with a gentle pre-study ramp.
pub fn growth(day: Day) -> f64 {
    let anchors = [
        (Day::from_ymd(2012, 6, 1), 0.08),
        (Day::from_ymd(2013, 6, 1), 0.30),
        (epochs::mar2014(), 0.47),
        (epochs::sep2014(), 0.63),
        (epochs::mar2015(), 1.00),
        (Day::from_ymd(2015, 12, 31), 1.35),
    ];
    if let Some(&(d_first, g_first)) = anchors.first() {
        if day <= d_first {
            return g_first;
        }
    }
    for w in anchors.windows(2) {
        let &[(d0, g0), (d1, g1)] = w else { continue };
        if day <= d1 {
            let t = (day - d0) as f64 / (d1 - d0) as f64;
            return g0 + t * (g1 - g0);
        }
    }
    anchors[anchors.len() - 1].1
}

/// One autonomous system in the synthetic world.
#[derive(Clone, Debug)]
pub struct Network {
    /// The AS number.
    pub asn: u32,
    /// Human-readable role, for reports.
    pub name: String,
    /// The addressing-practice archetype and its parameters.
    pub archetype: Archetype,
    /// Advertised BGP prefixes.
    pub prefixes: Vec<Prefix>,
    /// Subscriber (or host) slots at end of study, before growth scaling.
    pub max_subscribers: u64,
    /// First day this network originates IPv6 prefixes.
    pub activation: Day,
}

/// The synthetic Internet.
pub struct World {
    cfg: WorldConfig,
    ent: Entropy,
    networks: Vec<Network>,
}

/// Well-known ASNs in the synthetic world.
pub mod asns {
    /// US mobile carrier A (the Figure 5e archetype).
    pub const MOBILE_A: u32 = 65001;
    /// US mobile carrier B.
    pub const MOBILE_B: u32 = 65002;
    /// European ISP with on-demand pseudorandom network IDs (Figure 5f).
    pub const EU_ISP: u32 = 65003;
    /// Japanese ISP with static /48s (Figure 5h).
    pub const JP_ISP: u32 = 65004;
    /// US broadband ISP with DHCPv6-PD-stable /64s.
    pub const US_BROADBAND: u32 = 65005;
    /// First university ASN; `UNIVERSITY_FIRST + 0` hosts the dense
    /// DHCPv6 department /64 of Figure 5g.
    pub const UNIVERSITY_FIRST: u32 = 65100;
    /// First hosting/server ASN.
    pub const HOSTING_FIRST: u32 = 65300;
    /// First generic-tail ASN.
    pub const TAIL_FIRST: u32 = 66000;
    /// Pseudo-ASN that originates the 6to4 relay prefix 2002::/16.
    pub const SIX_TO_FOUR_RELAY: u32 = 64700;
    /// Pseudo-ASN that originates the Teredo prefix 2001::/32.
    pub const TEREDO_RELAY: u32 = 64701;
}

impl World {
    /// Builds the standard world for a configuration.
    pub fn standard(cfg: WorldConfig) -> World {
        assert!(cfg.scale > 0.0, "scale must be positive");
        let ent = Entropy::new(cfg.seed);
        let s = cfg.scale;
        let mut networks = Vec::new();
        let sc = |v: f64| -> u64 { (v * s).round().max(1.0) as u64 };
        let early = Day::from_ymd(2012, 1, 1);

        // --- Top-5 ASNs (≈85% of active /64s) -------------------------
        networks.push(Network {
            asn: asns::MOBILE_A,
            name: "US mobile carrier A".into(),
            archetype: Archetype::mobile_a(s),
            prefixes: mobile_prefixes(0x2600_1400, 44, 256),
            max_subscribers: sc(70_000.0),
            activation: early,
        });
        networks.push(Network {
            asn: asns::MOBILE_B,
            name: "US mobile carrier B".into(),
            archetype: Archetype::mobile_b(s),
            prefixes: mobile_prefixes(0x2600_8000, 40, 64),
            max_subscribers: sc(35_000.0),
            activation: early,
        });
        networks.push(Network {
            asn: asns::EU_ISP,
            name: "EU ISP (rotating network IDs)".into(),
            archetype: Archetype::rotating_isp(s),
            prefixes: vec![Prefix::new(Addr(0x2a00_8000u128 << 96), 19)],
            max_subscribers: sc(80_000.0),
            activation: early,
        });
        networks.push(Network {
            asn: asns::JP_ISP,
            name: "JP ISP (static /48s)".into(),
            archetype: Archetype::static_isp(),
            prefixes: vec![Prefix::new(Addr(0x2400_4000u128 << 96), 24)],
            max_subscribers: sc(43_000.0),
            activation: early,
        });
        networks.push(Network {
            asn: asns::US_BROADBAND,
            name: "US broadband ISP".into(),
            archetype: Archetype::broadband(),
            prefixes: (0..4u32)
                .map(|i| Prefix::new(Addr((0x2601_0000u128 | i as u128) << 96), 32))
                .collect(),
            max_subscribers: sc(80_000.0),
            activation: early,
        });

        // --- Universities ---------------------------------------------
        let n_unis = ((60.0 * s.powf(0.3)).round() as u32).clamp(3, 60);
        for i in 0..n_unis {
            networks.push(Network {
                asn: asns::UNIVERSITY_FIRST + i,
                name: format!("university {i}"),
                archetype: Archetype::university(i == 0),
                prefixes: vec![Prefix::new(Addr((0x2620_0000u128 | i as u128) << 96), 32)],
                max_subscribers: sc(1_200.0),
                activation: early + (i as i32 % 200),
            });
        }

        // --- Hosting / server networks --------------------------------
        let n_hosting = ((120.0 * s.powf(0.3)).round() as u32).clamp(3, 120);
        for i in 0..n_hosting {
            networks.push(Network {
                asn: asns::HOSTING_FIRST + i,
                name: format!("hosting {i}"),
                archetype: Archetype::hosting(ent, asns::HOSTING_FIRST + i),
                prefixes: vec![Prefix::new(Addr((0x2604_0000u128 | i as u128) << 96), 32)],
                max_subscribers: sc(24.0).max(6),
                activation: early + (i as i32 % 300),
            });
        }

        // --- Generic tail (brings active-ASN count to ~4.4K at s=1) ---
        let n_tail = ((4_200.0 * s.powf(0.3)).round() as u32).clamp(20, 4_200);
        for i in 0..n_tail {
            // Size ranks follow a heavy tail so the Figure 5a CCDF has
            // its long reach. Tail ASNs come and go: later ranks
            // activate later, giving ASN-count growth across epochs.
            let size = (5_200.0 * s / ((i + 8) as f64).powf(0.75)).round() as u64;
            // Deterministic, collision-free /32 per tail ASN: five RIR
            // /16-style roots, second hextet 0x100.. (clear of the named
            // networks' blocks: 2400:4000::/24, 2600:1400::/32,
            // 2600:8000::/32, 2a00:8000::/19, 2601::, 2604::, 2620::).
            let rir = [0x2400u128, 0x2600, 0x2800, 0x2a00, 0x2c00][(i % 5) as usize];
            let block = 0x100u128 + (i / 5) as u128;
            let activation = if i % 5 == 4 {
                // Late adopters: appear during the study window.
                Day::from_ymd(2014, 1, 1) + (ent.u64(b"tact", &[i as u64]) % 420) as i32
            } else {
                early + (ent.u64(b"tac2", &[i as u64]) % 600) as i32
            };
            networks.push(Network {
                asn: asns::TAIL_FIRST + i,
                name: format!("tail ISP {i}"),
                archetype: Archetype::generic(ent, asns::TAIL_FIRST + i, s),
                prefixes: vec![Prefix::new(Addr((rir << 112) | (block << 96)), 32)],
                max_subscribers: size.max(2),
                activation,
            });
        }

        World { cfg, ent, networks }
    }

    /// The configuration.
    pub fn config(&self) -> WorldConfig {
        self.cfg
    }

    /// The entropy source (shared with generators in this crate).
    pub(crate) fn entropy(&self) -> Entropy {
        self.ent
    }

    /// All networks.
    pub fn networks(&self) -> &[Network] {
        &self.networks
    }

    /// The network owning an ASN.
    pub fn network(&self, asn: u32) -> Option<&Network> {
        self.networks.iter().find(|n| n.asn == asn)
    }

    /// The BGP routing table as of `day`: every activated network's
    /// prefixes, plus the 6to4 and Teredo relay prefixes.
    pub fn routing_table(&self, day: Day) -> PrefixMap<u32> {
        let mut rt = PrefixMap::new();
        for n in &self.networks {
            if n.activation <= day {
                for &p in &n.prefixes {
                    rt.insert(p, n.asn);
                }
            }
        }
        rt.insert(v6census_addr::special::SIX_TO_FOUR, asns::SIX_TO_FOUR_RELAY);
        rt.insert(v6census_addr::special::TEREDO, asns::TEREDO_RELAY);
        rt
    }

    /// Number of networks activated by `day`.
    pub fn active_network_count(&self, day: Day) -> usize {
        self.networks.iter().filter(|n| n.activation <= day).count()
    }
}

/// Carves `count` prefixes of length `len` for a mobile carrier from the
/// /32 identified by the top 32 bits `base32`.
fn mobile_prefixes(base32: u32, len: u8, count: u32) -> Vec<Prefix> {
    (0..count)
        .map(|i| {
            let addr = ((base32 as u128) << 96) | ((i as u128) << (128 - len as u32));
            Prefix::new(Addr(addr), len)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_matches_table1_ratios() {
        assert!((growth(epochs::mar2014()) - 0.47).abs() < 1e-9);
        assert!((growth(epochs::sep2014()) - 0.63).abs() < 1e-9);
        assert!((growth(epochs::mar2015()) - 1.0).abs() < 1e-9);
        // Monotone non-decreasing across the study.
        let mut last = 0.0;
        let mut d = Day::from_ymd(2013, 1, 1);
        while d < Day::from_ymd(2015, 6, 1) {
            let g = growth(d);
            assert!(g >= last);
            last = g;
            d += 10;
        }
    }

    #[test]
    fn standard_world_structure() {
        let w = World::standard(WorldConfig::tiny(1));
        assert!(w.networks().len() > 30);
        let mob = w.network(asns::MOBILE_A).unwrap();
        assert_eq!(mob.prefixes.len(), 256);
        assert!(mob.prefixes.iter().all(|p| p.len() == 44));
        let eu = w.network(asns::EU_ISP).unwrap();
        assert_eq!(eu.prefixes[0].len(), 19);
        // Prefixes don't overlap across networks.
        let mut all: Vec<(v6census_addr::Prefix, u32)> = w
            .networks()
            .iter()
            .flat_map(|n| n.prefixes.iter().map(move |&p| (p, n.asn)))
            .collect();
        all.sort();
        for w2 in all.windows(2) {
            assert!(
                !w2[0].0.overlaps(w2[1].0),
                "{:?} overlaps {:?}",
                w2[0],
                w2[1]
            );
        }
    }

    #[test]
    fn routing_table_resolves_members() {
        let w = World::standard(WorldConfig::tiny(1));
        let rt = w.routing_table(epochs::mar2015());
        for n in w.networks().iter().take(20) {
            if n.activation <= epochs::mar2015() {
                for &p in &n.prefixes {
                    let hit = rt.longest_match(p.addr());
                    assert_eq!(hit.map(|(_, &a)| a), Some(n.asn));
                }
            }
        }
        // Transition prefixes resolve to the relay pseudo-ASNs.
        let sixto4: Addr = "2002:c000:201::1".parse().unwrap();
        assert_eq!(
            rt.longest_match(sixto4).map(|(_, &a)| a),
            Some(asns::SIX_TO_FOUR_RELAY)
        );
    }

    #[test]
    fn asn_count_grows_between_epochs() {
        let w = World::standard(WorldConfig::tiny(1));
        let c14 = w.active_network_count(epochs::mar2014());
        let c15 = w.active_network_count(epochs::mar2015());
        assert!(c15 > c14, "{c14} -> {c15}");
    }

    #[test]
    fn world_is_deterministic() {
        let a = World::standard(WorldConfig::tiny(7));
        let b = World::standard(WorldConfig::tiny(7));
        assert_eq!(a.networks().len(), b.networks().len());
        for (x, y) in a.networks().iter().zip(b.networks()) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.prefixes, y.prefixes);
            assert_eq!(x.max_subscribers, y.max_subscribers);
        }
    }
}
