//! Daily aggregated CDN log generation (§4.1's data source, synthesized).
//!
//! The CDN's aggregated logs contain hit counts per client address per
//! 24-hour period. [`World::day_log`] produces exactly that: every
//! network's archetype emits its subscribers' addresses for the day, the
//! legacy transition-mechanism populations (6to4, Teredo, ISATAP) are
//! added, and the result is aggregated by address. Day generation is
//! parallelized across networks with `std::thread::scope`; the output
//! is identical to the sequential computation because every emission is a
//! pure function of `(seed, entity, day)`.

use crate::archetype::RawObs;
use crate::kinds::TrueKind;
use crate::rng::Entropy;
use crate::world::{epochs, World};
use std::io;
use std::path::{Path, PathBuf};
use v6census_addr::Addr;
use v6census_core::temporal::Day;
use v6census_core::vfs::Vfs;

/// One aggregated log line: a client address, its hit count for the day,
/// and (synthetic-only) the ground-truth kind.
#[derive(Clone, Copy, Debug)]
pub struct LogEntry {
    /// The client address.
    pub addr: Addr,
    /// Total successful hits from this address this day.
    pub hits: u64,
    /// Ground truth for the address (not available to classifiers in the
    /// real study; used here for evaluation harnesses).
    pub kind: TrueKind,
}

/// One day of aggregated logs, sorted by address.
#[derive(Clone, Debug)]
pub struct DayLog {
    /// The log-processed date.
    pub day: Day,
    /// Aggregated entries, ascending by address, unique addresses.
    pub entries: Vec<LogEntry>,
}

impl DayLog {
    /// Number of unique active addresses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no addresses were active.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the addresses.
    pub fn addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.entries.iter().map(|e| e.addr)
    }
}

/// Synthetic IPv4 "regions" where legacy-transition clients live: 16-bit
/// prefixes of densely used IPv4 space. 6to4 embeds these at bits 16–48
/// (the structure visible in Figure 5d).
const V4_REGIONS: [u16; 24] = [
    0x1803, 0x1844, 0x2e20, 0x3244, 0x3e10, 0x4a38, 0x4e60, 0x5276, 0x56a0, 0x5bc4, 0x5f00, 0x6310,
    0x6d20, 0x44a8, 0x4c40, 0x7b0c, 0x8d54, 0x99c8, 0xa1b0, 0xadd4, 0xb930, 0xbc28, 0xc0a0, 0xd8c4,
];

fn region_v4(ent: &Entropy, salt: &[u8; 4], ids: &[u64]) -> u32 {
    let region = V4_REGIONS[(ent.u64(salt, ids) % V4_REGIONS.len() as u64) as usize];
    let low = (ent.u64(b"v4lo", ids) & 0xffff) as u32;
    ((region as u32) << 16) | low
}

/// Teredo servers observed in the wild are few; eight synthetic ones.
const TEREDO_SERVERS: [u32; 8] = [
    0x4136_e378 >> 4, // keep them arbitrary but fixed
    0x5eb4_c2c1,
    0x41c9_2f11,
    0x5362_a801,
    0x4a30_1a05,
    0x68ec_4409,
    0x4d6a_2b61,
    0x52c1_9e21,
];

impl World {
    /// Emits `count` consecutive day logs starting at `first` as files
    /// under `dir` (named `YYYY-MM-DD.log`), each written atomically
    /// *and durably* through the given [`Vfs`] — synth's durability
    /// path, shared by `v6census synth --out` and the crash-test
    /// harness. Returns the written paths in day order.
    pub fn emit_day_logs(
        &self,
        fs: &dyn Vfs,
        dir: &Path,
        first: Day,
        count: u32,
    ) -> io::Result<Vec<PathBuf>> {
        fs.create_dir_all(dir)?;
        let mut written = Vec::new();
        for offset in 0..count {
            let day = first + i32::try_from(offset).unwrap_or(i32::MAX);
            let path = dir.join(crate::faults::day_file_name(day));
            fs.write_atomic(&path, self.day_log(day).to_text().as_bytes())?;
            written.push(path);
        }
        Ok(written)
    }

    /// Generates the aggregated log for one day: all networks plus the
    /// transition-mechanism populations, aggregated by address.
    pub fn day_log(&self, day: Day) -> DayLog {
        let ent = self.entropy();
        let networks = self.networks();
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(networks.len().max(1));
        let chunk = networks.len().div_ceil(threads);

        let mut raw: Vec<RawObs> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for part in networks.chunks(chunk) {
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    for n in part {
                        n.archetype.emit_day(
                            &ent,
                            n.asn,
                            &n.prefixes,
                            n.max_subscribers,
                            n.activation,
                            day,
                            &mut out,
                        );
                    }
                    out
                }));
            }
            let mut all = Vec::new();
            for h in handles {
                match h.join() {
                    Ok(v) => all.extend(v),
                    // A panicked emission shard is a bug; degrade to the
                    // shards that completed rather than aborting the run.
                    Err(_) => debug_assert!(false, "emission thread panicked"),
                }
            }
            all
        });

        self.emit_6to4(day, &mut raw);
        self.emit_teredo(day, &mut raw);
        self.emit_isatap(day, &mut raw);

        // Aggregate by address. Colliding kinds (e.g. two mobile devices
        // with the same shared fixed IID landing on the same pool /64 —
        // the paper's address-reuse phenomenon) keep the first label.
        raw.sort_unstable_by_key(|o| o.addr);
        let mut entries: Vec<LogEntry> = Vec::with_capacity(raw.len());
        for o in raw {
            match entries.last_mut() {
                Some(last) if last.addr == o.addr => last.hits += o.hits as u64,
                _ => entries.push(LogEntry {
                    addr: o.addr,
                    hits: o.hits as u64,
                    kind: o.kind,
                }),
            }
        }
        DayLog { day, entries }
    }

    /// The legacy 6to4 population: IPv4 hosts with 2002:V4::/48 prefixes.
    /// Absolute size stays roughly flat across the study while native
    /// IPv6 grows — reproducing the declining 6to4 *share* of Table 1.
    fn emit_6to4(&self, day: Day, out: &mut Vec<RawObs>) {
        let ent = self.entropy();
        let pop = ((30_000.0 * self.config().scale).round() as u64).max(8);
        for slot in 0..pop {
            if !ent.chance(b"64ac", &[slot, day.0 as u64], 0.42) {
                continue;
            }
            let v4 = region_v4(&ent, b"64v4", &[slot]);
            let net_high = (0x2002u64 << 48) | ((v4 as u64) << 16);
            let iid = if ent.chance(b"64pk", &[slot], 0.7) {
                ent.u64(b"64pr", &[slot, day.0 as u64]) & !(1 << 57)
            } else {
                1 + ent.u64(b"64lo", &[slot]) % 0xfffe
            };
            out.push(RawObs {
                addr: Addr(((net_high as u128) << 64) | iid as u128),
                hits: ent.small_count(b"64ht", &[slot, day.0 as u64], 3.0, 200) as u32,
                kind: TrueKind::SixToFour,
            });
        }
    }

    /// The Teredo population: tiny and fully ephemeral. Daily counts
    /// follow Table 1's anchors (2.0 K / 3.3 K / 20.1 K at full scale).
    fn emit_teredo(&self, day: Day, out: &mut Vec<RawObs>) {
        let ent = self.entropy();
        let target = lerp_epochs(day, 2.0, 3.3, 20.1) * self.config().scale;
        let count = target.round().max(1.0) as u64;
        for i in 0..count {
            let ids = [i, day.0 as u64];
            let server = TEREDO_SERVERS[(ent.u64(b"tdsv", &ids) % 8) as usize];
            let client = region_v4(&ent, b"tdcl", &ids);
            let port = (ent.u64(b"tdpt", &ids) & 0xffff) as u32;
            let flags = 0x8000u32;
            let addr = (0x2001_0000u128 << 96)
                | ((server as u128) << 64)
                | ((flags as u128) << 48)
                | (((port ^ 0xffff) as u128) << 32)
                | ((client ^ 0xffff_ffff) as u128);
            out.push(RawObs {
                addr: Addr(addr),
                hits: 1 + (ent.u64(b"tdht", &ids) % 4) as u32,
                kind: TrueKind::Teredo,
            });
        }
    }

    /// The ISATAP population: a small set of enterprise hosts with stable
    /// embedded-IPv4 IIDs (daily counts ≈ 90–133 at full scale, as in
    /// Table 1).
    fn emit_isatap(&self, day: Day, out: &mut Vec<RawObs>) {
        let ent = self.entropy();
        let pop = (lerp_epochs(day, 180.0, 202.0, 266.0) * self.config().scale)
            .round()
            .max(2.0) as u64;
        // Hosts live in a handful of enterprise /64s inside tail ASNs.
        let networks = self.networks();
        let tail_start = networks
            .iter()
            .position(|n| n.asn >= crate::world::asns::TAIL_FIRST)
            .unwrap_or(0);
        let orgs = (networks.len() - tail_start).clamp(1, 40);
        for host in 0..pop {
            if !ent.chance(b"isac", &[host, day.0 as u64], 0.5) {
                continue;
            }
            let org = &networks[tail_start + (ent.u64(b"isor", &[host]) % orgs as u64) as usize];
            let Some(org_prefix) = org.prefixes.first() else {
                continue;
            };
            let base_high = (org_prefix.addr().0 >> 64) as u64;
            let net_high = base_high | (0xe << 28) | (ent.u64(b"isnt", &[host]) % 4);
            let v4 = region_v4(&ent, b"isv4", &[host]);
            let iid = 0x0000_5efe_0000_0000u64 | v4 as u64;
            out.push(RawObs {
                addr: Addr(((net_high as u128) << 64) | iid as u128),
                hits: ent.small_count(b"isht", &[host, day.0 as u64], 2.0, 50) as u32,
                kind: TrueKind::Isatap,
            });
        }
    }
}

/// Linear interpolation over the three study epochs.
fn lerp_epochs(day: Day, at_mar14: f64, at_sep14: f64, at_mar15: f64) -> f64 {
    let m14 = epochs::mar2014();
    let s14 = epochs::sep2014();
    let m15 = epochs::mar2015();
    if day <= m14 {
        // Gentle pre-study ramp proportional to overall growth.
        return at_mar14 * (crate::world::growth(day) / crate::world::growth(m14));
    }
    if day <= s14 {
        let t = (day - m14) as f64 / (s14 - m14) as f64;
        return at_mar14 + t * (at_sep14 - at_mar14);
    }
    if day <= m15 {
        let t = (day - s14) as f64 / (m15 - s14) as f64;
        return at_sep14 + t * (at_mar15 - at_sep14);
    }
    at_mar15
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use v6census_addr::scheme::{classify, AddressScheme};

    fn world() -> World {
        World::standard(WorldConfig::tiny(5))
    }

    #[test]
    fn day_log_is_sorted_unique_and_deterministic() {
        let w = world();
        let log = w.day_log(epochs::mar2015());
        assert!(!log.is_empty());
        for pair in log.entries.windows(2) {
            assert!(pair[0].addr < pair[1].addr, "not strictly sorted");
        }
        let log2 = w.day_log(epochs::mar2015());
        assert_eq!(log.len(), log2.len());
        for (a, b) in log.entries.iter().zip(&log2.entries) {
            assert_eq!(a.addr, b.addr);
            assert_eq!(a.hits, b.hits);
        }
    }

    #[test]
    fn transition_mechanisms_present_with_correct_content() {
        let w = world();
        let log = w.day_log(epochs::mar2015());
        let mut teredo = 0;
        let mut sixtofour = 0;
        let mut isatap = 0;
        for e in &log.entries {
            match e.kind {
                TrueKind::Teredo => {
                    teredo += 1;
                    assert_eq!(classify(e.addr), AddressScheme::Teredo);
                }
                TrueKind::SixToFour => {
                    sixtofour += 1;
                    assert_eq!(classify(e.addr), AddressScheme::SixToFour);
                }
                TrueKind::Isatap => {
                    isatap += 1;
                    assert_eq!(classify(e.addr), AddressScheme::Isatap);
                }
                _ => {}
            }
        }
        assert!(teredo >= 1, "no teredo");
        assert!(sixtofour > 50, "too little 6to4: {sixtofour}");
        assert!(isatap >= 1, "no isatap");
        // 6to4 is a few percent of the total, like Table 1.
        let share = sixtofour as f64 / log.len() as f64;
        assert!(share > 0.01 && share < 0.20, "6to4 share {share:.3}");
    }

    #[test]
    fn weekly_population_exceeds_daily() {
        let w = world();
        let d = epochs::mar2015();
        let daily = w.day_log(d).len();
        let mut week: Vec<Addr> = Vec::new();
        for i in 0..7 {
            week.extend(w.day_log(d + i).addrs());
        }
        week.sort_unstable();
        week.dedup();
        let ratio = week.len() as f64 / daily as f64;
        assert!(
            (2.5..8.0).contains(&ratio),
            "weekly/daily ratio {ratio:.2} (weekly {} daily {daily})",
            week.len()
        );
    }

    #[test]
    fn population_grows_across_epochs() {
        let w = world();
        let d14 = w.day_log(epochs::mar2014()).len() as f64;
        let d15 = w.day_log(epochs::mar2015()).len() as f64;
        let ratio = d15 / d14;
        assert!((1.6..3.0).contains(&ratio), "growth ratio {ratio:.2}");
    }

    #[test]
    fn addresses_resolve_to_asns() {
        let w = world();
        let d = epochs::mar2015();
        let rt = w.routing_table(d);
        let log = w.day_log(d);
        let mut unresolved = 0;
        for e in &log.entries {
            if rt.longest_match(e.addr).is_none() {
                unresolved += 1;
            }
        }
        assert_eq!(unresolved, 0, "{unresolved} of {} unresolved", log.len());
    }
}
