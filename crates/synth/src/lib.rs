//! A deterministic synthetic Internet standing in for the paper's
//! proprietary CDN vantage point.
//!
//! The paper (Plonka & Berger, IMC 2015) analyzed aggregated WWW logs of
//! a global CDN and a traceroute-derived router dataset — both
//! unavailable outside the authors' institution. This crate substitutes
//! a **generative world model** whose archetypes encode the addressing
//! practices the paper documents, so every downstream classifier and
//! experiment exercises the same code paths it would on real data:
//!
//! * [`World`] — ASN population with Zipf-skewed sizes, per-network
//!   [`archetype::Archetype`]s (mobile dynamic-/64 pools, rotating
//!   network IDs, static /48s, DHCPv6-PD broadband, universities,
//!   hosting, a 4 000-ASN tail), BGP allocations and deployment growth
//!   anchored to Table 1's epoch ratios.
//! * [`World::day_log`] — aggregated (address, hits) logs for any day of
//!   the study, as a pure function of `(seed, day)`.
//! * [`router::ProbeSim`] — TTL-limited probe campaigns over a synthetic
//!   router plane with operator-realistic interface numbering (/127
//!   links, packed /112 loopback blocks).
//! * [`rdns::PtrOracle`] — `ip6.arpa` PTR lookups, with ranges
//!   provisioned the way operators actually provision them.
//!
//! Ground truth ([`TrueKind`]) travels with every synthetic address, so
//! classifier quality can be *measured* here, not just argued.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archetype;
pub mod chaos;
pub mod faults;
pub mod kinds;
pub mod loggen;
pub mod rdns;
pub mod rng;
pub mod router;
pub mod world;

pub use chaos::{ChaosClient, ChaosKind, ChaosOutcome};
pub use faults::{
    AnalysisFault, AnalysisFaultPlan, Fault, FaultInjector, FaultManifest, FaultSpec,
};
pub use kinds::TrueKind;
pub use loggen::{DayLog, LogEntry};
pub use world::{growth, Network, World, WorldConfig};
