//! Deterministic socket-level chaos clients for the serving daemon.
//!
//! [`faults`](crate::faults) breaks the daemon's *data*; this module
//! breaks its *clients*. A [`ChaosClient`] performs seeded hostile acts
//! against a listening TCP address — garbage requests, headers cut off
//! mid-line, disconnects before the response, slow-dripped (slowloris)
//! headers, oversized request heads, and rapid connect bursts — and
//! reports what the server did about it. The chaos matrix drives these
//! against `v6census serve` while a well-formed control client asserts
//! the daemon keeps answering consistently.
//!
//! Every byte sent derives from `(seed, salt)`, so a failing chaos run
//! reproduces bit-for-bit.

use crate::rng::Entropy;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One species of hostile client behavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosKind {
    /// Sends seeded garbage bytes (not HTTP) and reads the reply.
    Malformed,
    /// Sends a request head cut off mid-line, then half-closes.
    Truncated,
    /// Sends a well-formed request and disconnects without reading.
    Disconnect,
    /// Drips a valid header one byte at a time with pauses — the
    /// slowloris shape; a robust server answers 408 or closes.
    Slowloris {
        /// Pause between dripped bytes.
        pause: Duration,
        /// How many bytes to drip before giving up.
        bytes: usize,
    },
    /// Sends an endless header until the server caps it (431) or closes.
    Oversized {
        /// Upper bound on bytes the client will send before giving up.
        limit: usize,
    },
}

impl std::fmt::Display for ChaosKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosKind::Malformed => write!(f, "malformed"),
            ChaosKind::Truncated => write!(f, "truncated"),
            ChaosKind::Disconnect => write!(f, "disconnect"),
            ChaosKind::Slowloris { pause, bytes } => {
                write!(f, "slowloris({bytes}B @ {}ms)", pause.as_millis())
            }
            ChaosKind::Oversized { limit } => write!(f, "oversized(≤{limit}B)"),
        }
    }
}

/// What one hostile act observed. The chaos matrix asserts on these —
/// chiefly that `status` is a controlled rejection, never a hang, and
/// that the daemon stays answerable afterwards.
#[derive(Clone, Debug, Default)]
pub struct ChaosOutcome {
    /// The connection was established.
    pub connected: bool,
    /// Bytes the client managed to send.
    pub sent: usize,
    /// HTTP status parsed from the reply, when one arrived.
    pub status: Option<u16>,
    /// The server closed (or the act finished) within the client's own
    /// deadline — false means the server left the client hanging.
    pub finished: bool,
}

/// A seeded generator of hostile socket behavior.
#[derive(Clone, Copy, Debug)]
pub struct ChaosClient {
    ent: Entropy,
}

/// Reads a reply to end-of-stream (bounded) and parses the status line.
fn read_status(stream: &mut TcpStream) -> (Option<u16>, bool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(5_000)));
    let mut buf = Vec::with_capacity(512);
    let mut tmp = [0u8; 512];
    loop {
        match stream.read(&mut tmp) {
            Ok(0) => break,
            Ok(n) => {
                if buf.len() < 64 * 1024 {
                    buf.extend_from_slice(&tmp[..n]);
                } // else: drain without buffering
            }
            Err(_) => return (parse_status(&buf), false),
        }
    }
    (parse_status(&buf), true)
}

fn parse_status(buf: &[u8]) -> Option<u16> {
    let text = String::from_utf8_lossy(buf);
    let line = text.lines().next()?;
    let code = line.split_whitespace().nth(1)?;
    code.parse().ok()
}

impl ChaosClient {
    /// Creates a client; every hostile byte derives from `seed`.
    pub const fn new(seed: u64) -> ChaosClient {
        ChaosClient {
            ent: Entropy::new(seed),
        }
    }

    /// Performs one hostile act against `addr`. `salt` differentiates
    /// repeated strikes of the same kind.
    pub fn strike(&self, addr: SocketAddr, kind: ChaosKind, salt: u64) -> ChaosOutcome {
        let mut out = ChaosOutcome::default();
        let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(2_000)) else {
            return out;
        };
        out.connected = true;
        let _ = stream.set_write_timeout(Some(Duration::from_millis(2_000)));
        let _ = stream.set_nodelay(true);
        match kind {
            ChaosKind::Malformed => {
                let mut garbage = Vec::with_capacity(64);
                for i in 0..64u64 {
                    let b = (self.ent.u64(b"chga", &[salt, i]) & 0xff) as u8;
                    // Keep newlines possible so the head can "complete"
                    // into a garbage request line.
                    garbage.push(if b == 0 { b'\n' } else { b });
                }
                garbage.extend_from_slice(b"\r\n\r\n");
                out.sent = write_some(&mut stream, &garbage);
                let (status, finished) = read_status(&mut stream);
                out.status = status;
                out.finished = finished;
            }
            ChaosKind::Truncated => {
                let cut = 3 + (self.ent.u64(b"chcu", &[salt]) % 14) as usize;
                let req = b"GET /stats HTTP/1.1\r\nHost: chaos\r\n\r\n";
                out.sent = write_some(&mut stream, &req[..cut.min(req.len())]);
                // Half-close the write side: the server sees EOF mid-head.
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let (status, finished) = read_status(&mut stream);
                out.status = status;
                out.finished = finished;
            }
            ChaosKind::Disconnect => {
                out.sent = write_some(&mut stream, b"GET /stats HTTP/1.1\r\nHost: chaos\r\n\r\n");
                // Drop without reading: the server's write hits a closed
                // peer (EPIPE/ECONNRESET territory).
                drop(stream);
                out.finished = true;
            }
            ChaosKind::Slowloris { pause, bytes } => {
                let req = b"GET /stats HTTP/1.1\r\nX-Drip: ";
                let mut sent = 0usize;
                for i in 0..bytes {
                    let byte = [*req.get(i).unwrap_or(&b'a')];
                    match stream.write_all(&byte) {
                        Ok(()) => sent += 1,
                        Err(_) => break, // server gave up on us: the point
                    }
                    std::thread::sleep(pause);
                }
                out.sent = sent;
                let (status, finished) = read_status(&mut stream);
                out.status = status;
                out.finished = finished;
            }
            ChaosKind::Oversized { limit } => {
                let mut sent = write_some(&mut stream, b"GET /stats HTTP/1.1\r\n");
                let filler = [b'x'; 256];
                while sent < limit {
                    match stream.write_all(b"X-Pad: ") {
                        Ok(()) => sent += 7,
                        Err(_) => break,
                    }
                    match stream.write_all(&filler) {
                        Ok(()) => sent += filler.len(),
                        Err(_) => break,
                    }
                    match stream.write_all(b"\r\n") {
                        Ok(()) => sent += 2,
                        Err(_) => break,
                    }
                }
                out.sent = sent;
                let (status, finished) = read_status(&mut stream);
                out.status = status;
                out.finished = finished;
            }
        }
        out
    }
}

/// Writes as much of `bytes` as the peer accepts; hostile clients don't
/// care whether the write fully lands.
fn write_some(stream: &mut TcpStream, bytes: &[u8]) -> usize {
    match stream.write_all(bytes) {
        Ok(()) => {
            let _ = stream.flush();
            bytes.len()
        }
        Err(_) => 0,
    }
}

/// A minimal well-formed HTTP/1.1 GET: the control client of the chaos
/// matrix and the measurement client of the load bench. Returns the
/// status code and full body.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())?;
    let mut text = String::new();
    stream.read_to_string(&mut text)?;
    let status: u16 = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line in reply")
        })?;
    let body = match text.split_once("\r\n\r\n") {
        Some((_, b)) => b.to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn strikes_are_deterministic_and_bounded() {
        // A do-nothing server: accept, read a little, answer a canned
        // 400, close. Chaos outcomes against it must be stable.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..4 {
                let (mut s, _) = listener.accept().unwrap();
                let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
                let mut buf = [0u8; 1024];
                let _ = s.read(&mut buf);
                let _ = s.write_all(b"HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n");
            }
        });
        let chaos = ChaosClient::new(11);
        let a = chaos.strike(addr, ChaosKind::Malformed, 0);
        assert!(a.connected);
        assert!(a.sent > 0);
        assert_eq!(a.status, Some(400));
        let b = chaos.strike(addr, ChaosKind::Truncated, 0);
        assert!(b.connected && b.sent >= 3 && b.sent <= 17);
        let c = chaos.strike(addr, ChaosKind::Disconnect, 0);
        assert!(c.connected && c.finished);
        let d = chaos.strike(
            addr,
            ChaosKind::Slowloris {
                pause: Duration::from_millis(1),
                bytes: 8,
            },
            0,
        );
        assert!(d.connected);
        server.join().unwrap();
    }

    #[test]
    fn http_get_parses_status_and_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            let _ = s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 9\r\n\r\n{\"ok\":1}\n");
        });
        let (status, body) = http_get(addr, "/stats", Duration::from_millis(2_000)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":1}\n");
        server.join().unwrap();
        // Kind labels render.
        assert_eq!(ChaosKind::Malformed.to_string(), "malformed");
        assert!(ChaosKind::Oversized { limit: 9 }.to_string().contains("9"));
    }
}
