//! Router interfaces and TTL-limited probe simulation (§4.2's router
//! address dataset).
//!
//! Every network has an infrastructure /48 (`<prefix>:fffe::/48`) holding
//! router interface addresses laid out the way operators actually number
//! them — and the way that makes Table 3's density classes meaningful:
//!
//! * **loopbacks** packed sequentially in a /112 block,
//! * **point-to-point links** as RFC 6164 /127 pairs, 64 links to a /120,
//! * **management interfaces** in groups of three per /124.
//!
//! [`ProbeSim`] models the paper's probe campaign: TTL-limited probes
//! toward recursive resolvers, CDN locations, and WWW client addresses
//! elicit ICMPv6 Time-Exceeded responses from the routers on the path.
//! Path diversity is keyed to target prefixes: distinct /56s behind an
//! ISP reveal distinct access routers, while a mobile carrier's vast
//! dynamic pool funnels through a handful of gateways — the structural
//! reason the paper's 3d-stable targets discover more infrastructure
//! (§6.1.1) than random actives dominated by mobile space.

use crate::archetype::Archetype;
use crate::rng::Entropy;
use crate::world::{Network, World};
use v6census_addr::Addr;
use v6census_core::temporal::Day;
use v6census_trie::{AddrSet, PrefixMap};

/// Interface classes within an infrastructure /48.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IfaceClass {
    /// Router loopback (packed /112 block).
    Loopback,
    /// Point-to-point link end (/127 pairs within /120 groups).
    PointToPoint,
    /// Management interface (three per /124 group).
    Management,
}

/// The transit backbone's address space (does not collide with any
/// network's allocation).
const TRANSIT_BASE_HIGH: u64 = 0x2600_ffff_0000_0000;

/// Number of backbone transit routers.
const TRANSIT_ROUTERS: u64 = 60;

/// The infrastructure subnet marker: bits 32..48 of an infra address.
const INFRA_MARKER: u64 = 0xfffe;

/// The high 64 bits of a network's infrastructure /48.
pub fn infra_high(network_base_high: u64) -> u64 {
    network_base_high | (INFRA_MARKER << 16)
}

/// A router interface address inside an infrastructure /48.
pub fn iface_addr(infra_high: u64, class: IfaceClass, idx: u64) -> Addr {
    let iid = match class {
        IfaceClass::Loopback => (1u64 << 32) | (idx & 0xffff),
        IfaceClass::PointToPoint => (2u64 << 32) | (idx & 0x00ff_ffff),
        IfaceClass::Management => {
            let group = idx / 3;
            let member = idx % 3;
            (3u64 << 32) | (group << 4) | (member + 1)
        }
    };
    Addr(((infra_high as u128) << 64) | iid as u128)
}

/// True when `a` sits in some infrastructure /48 (bits 32..48 = 0xfffe
/// and an infra-style IID).
pub fn looks_like_infra(a: Addr) -> bool {
    let high = a.network_bits();
    (high >> 16) & 0xffff == INFRA_MARKER && (high & 0xffff) == 0
}

/// Router-plane shape of one network: how many distinct routers of each
/// role probes can discover.
#[derive(Clone, Copy, Debug)]
pub struct RouterPlane {
    /// Core routers (loopbacks respond).
    pub core: u64,
    /// Aggregation routers (p2p link ends respond).
    pub aggregation: u64,
    /// Access routers (management/p2p ends respond); path selection is
    /// keyed by the target's /56, so this bounds per-network discovery.
    pub access: u64,
}

/// The router plane implied by a network's archetype and size.
pub fn router_plane(n: &Network) -> RouterPlane {
    let subs = n.max_subscribers;
    match n.archetype {
        Archetype::Mobile(_) => RouterPlane {
            // Centralized packet gateways: huge address pool, few routers.
            core: 6,
            aggregation: 12,
            access: 10,
        },
        Archetype::RotatingIsp { .. } | Archetype::StaticIsp(_) | Archetype::Broadband(_) => {
            RouterPlane {
                core: 5,
                aggregation: 48.min(subs / 30).max(4),
                // The last hop toward a stably addressed home is the
                // subscriber's own CPE: nearly one per household.
                access: (subs / 3).clamp(8, 60_000),
            }
        }
        Archetype::University { .. } => RouterPlane {
            core: 2,
            aggregation: 4,
            access: 30,
        },
        Archetype::Hosting(_) => RouterPlane {
            core: 2,
            aggregation: 3,
            access: 4,
        },
        Archetype::Generic(_) => RouterPlane {
            core: 1,
            aggregation: 1,
            access: (subs / 2).clamp(2, 5_000),
        },
    }
}

/// A TTL-limited probe campaign against the synthetic topology.
pub struct ProbeSim<'w> {
    world: &'w World,
    routing: PrefixMap<u32>,
    ent: Entropy,
}

impl<'w> ProbeSim<'w> {
    /// Prepares a probe simulator with the routing table of `day`.
    pub fn new(world: &'w World, day: Day) -> ProbeSim<'w> {
        ProbeSim {
            world,
            routing: world.routing_table(day),
            ent: world.entropy(),
        }
    }

    /// Probes one target; returns the Time-Exceeded source addresses of
    /// the routers on the path (transit backbone + target network).
    pub fn probe(&self, target: Addr) -> Vec<Addr> {
        let mut out = Vec::new();
        // Transit hops: keyed to coarse prefixes of the target, as
        // interdomain paths are.
        for (mask, salt) in [(16u8, b"tr16"), (24, b"tr24"), (32, b"tr32")] {
            let key = target.mask(mask).0 as u64 ^ (target.mask(mask).0 >> 64) as u64;
            let r = self.ent.u64(salt, &[key]) % TRANSIT_ROUTERS;
            out.push(iface_addr(
                TRANSIT_BASE_HIGH | (INFRA_MARKER << 16),
                IfaceClass::PointToPoint,
                r * 2 + (key & 1),
            ));
        }
        // Destination-network hops.
        let asn = match self.routing.longest_match(target) {
            Some((_, &asn)) => asn,
            None => return out,
        };
        let network = match self.world.network(asn) {
            Some(n) => n,
            None => return out, // relay pseudo-ASNs have no modelled plane
        };
        let plane = router_plane(network);
        let infra = infra_high((network.prefixes[0].addr().0 >> 64) as u64);
        let a = asn as u64;
        let k40 = (target.mask(40).0 >> 64) as u64;
        let k48 = (target.mask(48).0 >> 64) as u64;
        // The deepest (access) hop is keyed by the *statically routed*
        // bits of the target. Dynamically assigned regions aggregate at a
        // gateway: a mobile pool /64 or an EU rotating-NID /56 does not
        // map to its own last-hop router, so probing many such targets
        // keeps revealing the same equipment — the §6.1.1 asymmetry.
        let access_key = match network.archetype {
            Archetype::Mobile(_) => (target.mask(44).0 >> 64) as u64,
            Archetype::RotatingIsp { .. } => (target.mask(40).0 >> 64) as u64,
            // Statically routed homes: the /64's own gateway (CPE).
            _ => target.network_bits(),
        };
        out.push(iface_addr(
            infra,
            IfaceClass::Loopback,
            self.ent.u64(b"rcor", &[a, k40]) % plane.core,
        ));
        out.push(iface_addr(
            infra,
            IfaceClass::PointToPoint,
            self.ent.u64(b"ragg", &[a, k48]) % (plane.aggregation * 2),
        ));
        // The deepest hop responds only when the target address is still
        // assigned at probe time. Campaign target lists are assembled
        // over months (§4.2, "since 2013"); an RFC 4941 temporary address
        // expires within a day, after which probes toward it die in
        // neighbor discovery at the last router instead of eliciting a
        // deep Time-Exceeded. Content-wise, that is exactly the
        // pseudorandom-IID class — the reason stable targets out-discover
        // random actives (§6.1.1).
        let looks_ephemeral = matches!(
            v6census_addr::scheme::classify(target),
            v6census_addr::AddressScheme::Pseudorandom
        );
        if !looks_ephemeral {
            out.push(iface_addr(
                infra,
                IfaceClass::Management,
                self.ent.u64(b"racc", &[a, access_key]) % (plane.access * 3),
            ));
        }
        out
    }

    /// Probes many targets and returns the union of responding router
    /// addresses — a router dataset in the sense of §4.2.
    pub fn survey<I: IntoIterator<Item = Addr>>(&self, targets: I) -> AddrSet {
        let mut all: Vec<Addr> = Vec::new();
        for t in targets {
            all.extend(self.probe(t));
        }
        AddrSet::from_iter(all)
    }

    /// The recursive-resolver target class: the CDN's authoritative DNS
    /// only observes resolvers of networks whose users generate lookups
    /// against it, so roughly a quarter of networks contribute one or two
    /// resolver addresses.
    pub fn resolver_targets(&self) -> Vec<Addr> {
        let mut out = Vec::new();
        for n in self.world.networks() {
            if !self.ent.chance(b"rslv", &[n.asn as u64], 0.02) {
                continue;
            }
            let base_high = (n.prefixes[0].addr().0 >> 64) as u64;
            let count = 1 + self.ent.u64(b"rslc", &[n.asn as u64]) % 2;
            for i in 0..count {
                out.push(Addr(((base_high as u128) << 64) | (0x53 + i) as u128));
            }
        }
        out
    }

    /// The CDN-location target class (≈500 world-wide service addresses).
    pub fn cdn_targets(&self) -> Vec<Addr> {
        let base_high = 0x2600_fff0_0000_0000u64;
        (0..500u64)
            .map(|i| Addr(((base_high | (i << 8)) as u128) << 64 | 1))
            .collect()
    }

    /// The full §4.2 campaign: resolvers + CDN locations + a supplied
    /// sample of WWW client addresses.
    pub fn router_dataset(&self, client_sample: &[Addr]) -> AddrSet {
        let mut targets = self.resolver_targets();
        targets.extend(self.cdn_targets());
        targets.extend_from_slice(client_sample);
        self.survey(targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{asns, epochs, WorldConfig};

    fn world() -> World {
        World::standard(WorldConfig::tiny(9))
    }

    #[test]
    fn iface_layout_is_packed() {
        let infra = infra_high(0x2604_0001_0000_0000);
        // Loopbacks share a /112.
        let l0 = iface_addr(infra, IfaceClass::Loopback, 0);
        let l9 = iface_addr(infra, IfaceClass::Loopback, 9);
        assert_eq!(l0.mask(112), l9.mask(112));
        // P2P pairs share a /127.
        let p0 = iface_addr(infra, IfaceClass::PointToPoint, 6);
        let p1 = iface_addr(infra, IfaceClass::PointToPoint, 7);
        assert_eq!(p0.mask(127), p1.mask(127));
        assert_ne!(p0, p1);
        // Management trios share a /124.
        let m0 = iface_addr(infra, IfaceClass::Management, 0);
        let m2 = iface_addr(infra, IfaceClass::Management, 2);
        let m3 = iface_addr(infra, IfaceClass::Management, 3);
        assert_eq!(m0.mask(124), m2.mask(124));
        assert_ne!(m0.mask(124), m3.mask(124));
        assert!(looks_like_infra(l0));
    }

    #[test]
    fn probes_reach_destination_network() {
        let w = world();
        let sim = ProbeSim::new(&w, epochs::mar2015());
        let jp = w.network(asns::JP_ISP).unwrap();
        let target = Addr(jp.prefixes[0].addr().0 | (42u128 << 80) | 1);
        let resp = sim.probe(target);
        assert!(resp.len() >= 5);
        let infra = infra_high((jp.prefixes[0].addr().0 >> 64) as u64);
        let in_jp = resp.iter().filter(|r| r.network_bits() == infra).count();
        assert!(in_jp >= 3, "expected JP infra hops, got {resp:?}");
    }

    #[test]
    fn target_diversity_reveals_more_access_routers() {
        let w = world();
        let sim = ProbeSim::new(&w, epochs::mar2015());
        let bb = w.network(asns::US_BROADBAND).unwrap();
        let base = bb.prefixes[0].addr().0;
        // 64 targets in the same /56 vs 64 targets in distinct /56s.
        let same: Vec<Addr> = (0..64u128)
            .map(|i| Addr(base | (5u128 << 72) | i))
            .collect();
        let diverse: Vec<Addr> = (0..64u128).map(|i| Addr(base | (i << 72) | 1)).collect();
        let found_same = sim.survey(same.iter().copied()).len();
        let found_diverse = sim.survey(diverse.iter().copied()).len();
        assert!(
            found_diverse > found_same,
            "diverse {found_diverse} <= same {found_same}"
        );
    }

    #[test]
    fn mobile_pool_funnels_through_few_gateways() {
        let w = world();
        let sim = ProbeSim::new(&w, epochs::mar2015());
        let mob = w.network(asns::MOBILE_A).unwrap();
        let plane = router_plane(mob);
        // Probing many mobile /64s discovers at most the plane's router
        // complement.
        let targets: Vec<Addr> = (0..200u128)
            .map(|i| Addr(mob.prefixes[(i % 8) as usize].addr().0 | (i << 64) | 1))
            .collect();
        let mob_infra = infra_high((mob.prefixes[0].addr().0 >> 64) as u64);
        let found = sim
            .survey(targets.iter().copied())
            .iter()
            .filter(|r| r.network_bits() == mob_infra)
            .count() as u64;
        assert!(
            found <= plane.core + plane.aggregation * 2 + plane.access * 3,
            "found {found}"
        );
        assert!(found < 120, "mobile should be centralized, found {found}");
    }

    #[test]
    fn campaign_produces_clustered_dataset() {
        let w = world();
        let sim = ProbeSim::new(&w, epochs::mar2015());
        let routers = sim.router_dataset(&[]);
        assert!(routers.len() > 40, "only {} routers", routers.len());
        // The dataset is heavily packed: many 2@/124-dense prefixes.
        let dense = v6census_trie::dense_prefixes_at(&routers, 2, 124);
        assert!(!dense.is_empty());
    }
}
