//! Deterministic pseudorandom machinery for the synthetic world.
//!
//! Everything in `v6census-synth` is a **pure function of (seed, entity
//! identifiers, day)** — there is no mutable generator state threaded
//! through the simulation. That is what makes any day of the simulated
//! year producible independently and in parallel, and every experiment
//! exactly reproducible. The primitive is a SplitMix64-style hash over an
//! identifier tuple; a small xoshiro256** generator is provided where a
//! stream of values is genuinely needed.

/// SplitMix64 finalizer: a high-quality 64→64 bit mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes an identifier tuple into a uniform `u64`.
#[inline]
pub fn hash_ids(seed: u64, ids: &[u64]) -> u64 {
    let mut h = splitmix64(seed ^ 0x6a09_e667_f3bc_c909);
    for &id in ids {
        h = splitmix64(h ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }
    h
}

/// A deterministic entropy source keyed by a world seed.
///
/// Each method derives an independent value from `(seed, salt, ids)`;
/// distinct salts give independent "channels" for the same entity. Salts
/// are ASCII tags (`b"actv"`, `b"tenu"`, …) so collisions between
/// channels are structurally impossible to introduce silently.
#[derive(Clone, Copy, Debug)]
pub struct Entropy {
    seed: u64,
}

impl Entropy {
    /// Creates an entropy source for a world seed.
    pub const fn new(seed: u64) -> Entropy {
        Entropy { seed }
    }

    /// A uniform `u64` for `(salt, ids)`.
    #[inline]
    pub fn u64(&self, salt: &[u8; 4], ids: &[u64]) -> u64 {
        let s = u32::from_le_bytes(*salt) as u64;
        hash_ids(self.seed ^ (s << 32 | s), ids)
    }

    /// A uniform value in `0..n` (n ≥ 1), via 128-bit multiply (unbiased
    /// enough for simulation purposes).
    #[inline]
    pub fn below(&self, salt: &[u8; 4], ids: &[u64], n: u64) -> u64 {
        debug_assert!(n >= 1);
        ((self.u64(salt, ids) as u128 * n as u128) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&self, salt: &[u8; 4], ids: &[u64]) -> f64 {
        (self.u64(salt, ids) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&self, salt: &[u8; 4], ids: &[u64], p: f64) -> bool {
        self.unit(salt, ids) < p
    }

    /// A geometric-ish positive integer with the given mean, capped —
    /// used for device counts, hit counts, and similar small quantities.
    pub fn small_count(&self, salt: &[u8; 4], ids: &[u64], mean: f64, cap: u64) -> u64 {
        // Inverse-CDF of a geometric distribution with success prob 1/mean.
        let u = self.unit(salt, ids).max(1e-12);
        let p = 1.0 / mean.max(1.0);
        let k = (u.ln() / (1.0 - p).ln()).floor() as u64 + 1;
        k.min(cap)
    }

    /// A Zipf-like rank draw in `0..n` with exponent ~1: low ranks are
    /// heavily favoured. Used for picking among a small set of shared
    /// fixed IIDs.
    pub fn zipf_rank(&self, salt: &[u8; 4], ids: &[u64], n: u64) -> u64 {
        debug_assert!(n >= 1);
        let u = self.unit(salt, ids).max(1e-12);
        // Inverse CDF of p(k) ∝ 1/(k+1): CDF ≈ ln(k+1)/ln(n+1).
        let k = ((n as f64 + 1.0).powf(u) - 1.0).floor() as u64;
        k.min(n - 1)
    }

    /// A dedicated stream generator for `(salt, ids)`.
    pub fn stream(&self, salt: &[u8; 4], ids: &[u64]) -> Xoshiro256 {
        let base = self.u64(salt, ids);
        Xoshiro256::seeded(base)
    }
}

/// xoshiro256** — a small, fast, high-quality PRNG for the few places
/// that need a sequence rather than a hash.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the state by running SplitMix64 from `seed`, per the
    /// reference implementation's recommendation.
    pub fn seeded(seed: u64) -> Xoshiro256 {
        let mut s = [0u64; 4];
        let mut z = seed;
        for slot in &mut s {
            z = splitmix64(z);
            *slot = z;
        }
        Xoshiro256 { s }
    }

    /// The next `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = &mut self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// A uniform value in `0..n` (n ≥ 1).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n >= 1);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let e = Entropy::new(42);
        assert_eq!(e.u64(b"test", &[1, 2]), e.u64(b"test", &[1, 2]));
        assert_ne!(e.u64(b"test", &[1, 2]), e.u64(b"test", &[2, 1]));
        assert_ne!(e.u64(b"tesa", &[1, 2]), e.u64(b"tesb", &[1, 2]));
        assert_ne!(
            Entropy::new(1).u64(b"test", &[]),
            Entropy::new(2).u64(b"test", &[])
        );
    }

    #[test]
    fn below_in_range_and_roughly_uniform() {
        let e = Entropy::new(7);
        let mut counts = [0u32; 10];
        for i in 0..10_000u64 {
            let v = e.below(b"unif", &[i], 10);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn unit_in_range() {
        let e = Entropy::new(7);
        let mut sum = 0.0;
        for i in 0..10_000u64 {
            let u = e.unit(b"unit", &[i]);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn chance_matches_probability() {
        let e = Entropy::new(3);
        let hits = (0..100_000u64)
            .filter(|&i| e.chance(b"coin", &[i], 0.3))
            .count();
        assert!((28_000..32_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn small_count_mean_and_cap() {
        let e = Entropy::new(9);
        let mut sum = 0u64;
        for i in 0..50_000u64 {
            let c = e.small_count(b"smcn", &[i], 2.5, 16);
            assert!((1..=16).contains(&c));
            sum += c;
        }
        let mean = sum as f64 / 50_000.0;
        assert!((2.0..3.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn zipf_rank_skews_low() {
        let e = Entropy::new(11);
        let mut counts = [0u32; 8];
        for i in 0..80_000u64 {
            counts[e.zipf_rank(b"zipf", &[i], 8) as usize] += 1;
        }
        assert!(counts[0] > counts[3], "{counts:?}");
        assert!(counts[0] > 4 * counts[7], "{counts:?}");
    }

    #[test]
    fn xoshiro_stream_is_reproducible() {
        let mut a = Xoshiro256::seeded(5);
        let mut b = Xoshiro256::seeded(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seeded(6);
        assert_ne!(a.next_u64(), c.next_u64());
        for _ in 0..100 {
            assert!(c.below(10) < 10);
            assert!(c.unit() < 1.0);
        }
    }
}
