//! Network archetypes: the addressing practices the paper reverse
//! engineers (§6.2.1, §6.2.3), as generative models.
//!
//! Each archetype turns `(entropy, asn, subscriber slot, day)` into the
//! set of addresses that subscriber's devices use that day, labelled with
//! ground truth. The archetypes encode, faithfully to the paper:
//!
//! * **Mobile** — dynamic /64 assignment per association from pools
//!   filling the 44–64 bit segment of hundreds of /44s (Figure 5e); many
//!   devices sharing the same fixed IID; the duplicated-MAC EUI-64
//!   anomaly (§4.1 footnote 2); /64 reuse across subscribers within days.
//! * **RotatingIsp** — the EU ISP of Figure 5f: a constant bit 40, an
//!   oft-changing pseudorandom 15-bit number at bits 41–55 (changeable
//!   "at the press of a button"), and a non-uniform 8-bit field at 56–63
//!   favouring 0x00/0x01.
//! * **StaticIsp** — the JP ISP of Figure 5h: one static /48 per
//!   subscriber, constant 16-bit subnet field, so 99%+ of EUI-64 IIDs
//!   stay within one /64 per week.
//! * **Broadband** — DHCPv6-PD-stable /64s with rare renumbering.
//! * **University** — structured subnet plans (3 hex-character classes as
//!   in Figure 2a) and, on one campus, the dense DHCPv6 department /64 of
//!   Figure 5g with `dhcpv6-*` PTR names.
//! * **Hosting** — statically numbered server blocks that produce the
//!   2@/112-dense WWW-client regions of §6.2.2.
//! * **Generic** — the heavy tail of ISPs with per-ASN parameter draws.

use crate::kinds::TrueKind;
use crate::rng::Entropy;
use crate::world::growth;
use v6census_addr::{Addr, Mac, Prefix};
use v6census_core::temporal::Day;

/// One observed (address, hits, ground truth) triple before aggregation.
#[derive(Clone, Copy, Debug)]
pub struct RawObs {
    /// The client address.
    pub addr: Addr,
    /// WWW hits attributed that day.
    pub hits: u32,
    /// Ground truth.
    pub kind: TrueKind,
}

/// Offset added to day numbers before modular phase arithmetic, so the
/// values stay positive anywhere near the study period.
const DAY_BASE: i32 = 20_000;

/// A small pool of plausible OUIs for synthetic MACs.
#[allow(clippy::unusual_byte_groupings)] // written as conventional 6-hex-digit OUIs
const OUIS: [u32; 12] = [
    0x001e_c2, 0x3c07_54, 0xa4b8_05, 0x28cf_e9, 0x7054_d2, 0xf0d1_a9, 0x0023_76, 0x8c70_5a,
    0xd857_ef, 0x40b0_fa, 0x5c51_4f, 0x0026_bb,
];

/// Fixed interface identifiers shared across many mobile devices — the
/// paper's observation that "many mobile devices simultaneously use the
/// same fixed interface identifier".
const SHARED_MOBILE_IIDS: [u64; 24] = [
    0x1,
    0x2,
    0x3,
    0x4,
    0x5,
    0x64,
    0x65,
    0x100,
    0x101,
    0x1001,
    0x1002,
    0x2001,
    0x0a00_0001,
    0x0a00_0002,
    0x1010_1010,
    0xc0ff_ee01,
    0xbeef_0001,
    0xdead_0001,
    0x1234_5678,
    0x0bad_cafe,
    0x0000_abcd,
    0x0000_ef01,
    0x0000_1111,
    0x0000_2222,
];

/// Clears the RFC 4941 "u" bit (address bit 70 ⇒ IID bit 57).
#[inline]
fn privacy_bits(h: u64) -> u64 {
    h & !(1u64 << 57)
}

/// Parameters shared by the home-network archetypes.
#[derive(Clone, Copy, Debug)]
pub struct HomeParams {
    /// Mean devices per household (geometric, capped).
    pub devices_mean: f64,
    /// Device count cap.
    pub devices_cap: u64,
    /// Probability a device is active on a day the household is active.
    pub p_device: f64,
    /// Share of devices using EUI-64 SLAAC.
    pub share_eui: f64,
    /// Share using RFC 7217 stable-privacy IIDs.
    pub share_stable_privacy: f64,
    /// Share of privacy devices with slow rotation (a per-device period
    /// of 3–45 days: lease-length or until-reboot lifetimes). These are
    /// the medium-lived addresses that dominate the 3d-stable class yet
    /// vanish by the 6-month and 1-year classes — the paper's Table 2a
    /// gap (9.4% 3d-stable vs 0.34% 6m-stable).
    pub share_slow_rotation: f64,
    /// Probability the household exposes an always-on CPE client.
    pub p_cpe: f64,
}

impl HomeParams {
    const fn typical() -> HomeParams {
        HomeParams {
            devices_mean: 4.8,
            devices_cap: 14,
            p_device: 0.8,
            share_eui: 0.02,
            share_stable_privacy: 0.02,
            share_slow_rotation: 0.12,
            p_cpe: 0.025,
        }
    }
}

/// Mobile carrier parameters.
#[derive(Clone, Copy, Debug)]
pub struct MobileParams {
    /// /64 pool slots per advertised prefix (the dynamic 44–64 / 40–64
    /// bit segment).
    pub pool_per_prefix: u64,
    /// Share of devices using a shared fixed IID.
    pub share_shared_fixed: f64,
    /// Share using a per-device fixed IID.
    pub share_fixed_dev: f64,
    /// Share using EUI-64.
    pub share_eui: f64,
    /// Whether this carrier exhibits the duplicated-MAC anomaly.
    pub dup_mac: bool,
    /// Probability of a second association (new /64) in a day.
    pub p_second_assoc: f64,
}

/// Per-ASN generic-tail parameters, drawn deterministically from the ASN.
#[derive(Clone, Copy, Debug)]
pub struct GenericParams {
    /// Home-side parameters.
    pub home: HomeParams,
    /// Mean days between /64 renumbering events.
    pub renumber_period: u32,
    /// Number of statically numbered server clients (0 = none).
    pub servers: u32,
}

/// Hosting-network parameters.
#[derive(Clone, Copy, Debug)]
pub struct HostingParams {
    /// Probability a server is an active WWW client on a given day.
    pub p_active: f64,
}

/// The addressing-practice archetype of a network.
#[derive(Clone, Copy, Debug)]
pub enum Archetype {
    /// Mobile carrier with dynamic /64 pools (Figure 5e).
    Mobile(MobileParams),
    /// EU-style ISP with rotating pseudorandom network IDs (Figure 5f).
    RotatingIsp {
        /// Home-side parameters.
        home: HomeParams,
        /// Number of (region, pop) gateway pools sharing 15-bit NID
        /// spaces. Scales with the world so that per-pool NID density —
        /// and hence the Figure 5f "many values in the 40-64 segment"
        /// structure — is scale-invariant.
        region_combos: u64,
    },
    /// JP-style ISP with static per-subscriber /48s (Figure 5h).
    StaticIsp(HomeParams),
    /// US-style broadband with DHCPv6-PD-stable /64s.
    Broadband(HomeParams),
    /// University with a structured address plan (Figures 2a, 5g).
    University {
        /// Whether this campus hosts the dense DHCPv6 department /64.
        dense_dept: bool,
    },
    /// Server/hosting network (dense static blocks).
    Hosting(HostingParams),
    /// Generic tail ISP.
    Generic(GenericParams),
}

impl Archetype {
    /// Mobile carrier A (the larger one, with the MAC anomaly).
    pub fn mobile_a(scale: f64) -> Archetype {
        Archetype::Mobile(MobileParams {
            pool_per_prefix: ((600.0 * scale).round() as u64).max(2),
            share_shared_fixed: 0.28,
            share_fixed_dev: 0.40,
            share_eui: 0.02,
            dup_mac: true,
            p_second_assoc: 0.30,
        })
    }

    /// Mobile carrier B.
    pub fn mobile_b(scale: f64) -> Archetype {
        Archetype::Mobile(MobileParams {
            pool_per_prefix: ((1_200.0 * scale).round() as u64).max(2),
            share_shared_fixed: 0.22,
            share_fixed_dev: 0.42,
            share_eui: 0.02,
            dup_mac: false,
            p_second_assoc: 0.25,
        })
    }

    /// The EU rotating-NID ISP.
    pub fn rotating_isp(scale: f64) -> Archetype {
        Archetype::RotatingIsp {
            home: HomeParams::typical(),
            region_combos: ((64.0 * scale).round() as u64).clamp(1, 64),
        }
    }

    /// The JP static-/48 ISP.
    pub fn static_isp() -> Archetype {
        let mut p = HomeParams::typical();
        p.devices_mean = 5.6;
        p.share_eui = 0.03;
        Archetype::StaticIsp(p)
    }

    /// The US broadband ISP.
    pub fn broadband() -> Archetype {
        let mut p = HomeParams::typical();
        p.p_cpe = 0.04;
        Archetype::Broadband(p)
    }

    /// A university; `dense_dept` marks the Figure 5g campus.
    pub fn university(dense_dept: bool) -> Archetype {
        Archetype::University { dense_dept }
    }

    /// A hosting network with per-ASN activity drawn from `ent`.
    pub fn hosting(ent: Entropy, asn: u32) -> Archetype {
        Archetype::Hosting(HostingParams {
            p_active: 0.35 + 0.3 * ent.unit(b"hpac", &[asn as u64]),
        })
    }

    /// A generic tail ISP with per-ASN parameters drawn from `ent`;
    /// server-block sizes scale with the world.
    pub fn generic(ent: Entropy, asn: u32, scale: f64) -> Archetype {
        let a = asn as u64;
        let mut home = HomeParams::typical();
        home.devices_mean = 2.0 + 3.6 * ent.unit(b"gdev", &[a]);
        home.p_cpe = 0.12 * ent.unit(b"gcpe", &[a]);
        home.share_eui = 0.005 + 0.05 * ent.unit(b"geui", &[a]);
        Archetype::Generic(GenericParams {
            home,
            renumber_period: 100 + (ent.u64(b"gren", &[a]) % 1_000) as u32,
            servers: if ent.chance(b"gsrv", &[a], 0.49) {
                (((2 + ent.u64(b"gsr2", &[a]) % 9) as f64 * scale).round() as u32).max(2)
            } else {
                0
            },
        })
    }

    /// Emits one day of observations for every subscriber of `asn`.
    #[allow(clippy::too_many_arguments)]
    pub fn emit_day(
        &self,
        ent: &Entropy,
        asn: u32,
        prefixes: &[Prefix],
        max_subs: u64,
        activation: Day,
        day: Day,
        out: &mut Vec<RawObs>,
    ) {
        if day < activation {
            return;
        }
        // Every archetype needs at least one prefix; a network without
        // one has nothing to emit.
        let Some(&first) = prefixes.first() else {
            return;
        };
        let g = growth(day).min(1.0);
        match self {
            Archetype::Mobile(p) => emit_mobile(ent, asn, prefixes, max_subs, g, day, p, out),
            Archetype::RotatingIsp {
                home,
                region_combos,
            } => emit_rotating(ent, asn, first, max_subs, g, day, home, *region_combos, out),
            Archetype::StaticIsp(p) => emit_static_isp(ent, asn, first, max_subs, g, day, p, out),
            Archetype::Broadband(p) => {
                emit_renumbering(ent, asn, prefixes, max_subs, g, day, p, 420, out)
            }
            Archetype::University { dense_dept } => {
                emit_university(ent, asn, first, max_subs, g, day, *dense_dept, out)
            }
            Archetype::Hosting(p) => emit_hosting(ent, asn, first, max_subs, g, day, p, out),
            Archetype::Generic(p) => {
                emit_renumbering(
                    ent,
                    asn,
                    prefixes,
                    max_subs,
                    g,
                    day,
                    &p.home,
                    p.renumber_period,
                    out,
                );
                emit_server_block(ent, asn, first, p.servers, day, out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Common subscriber machinery
// ---------------------------------------------------------------------------

/// Whether slot `slot` has an IPv6-connected occupant on `day`, given the
/// global deployment growth fraction `g`.
fn joined(ent: &Entropy, asn: u32, slot: u64, g: f64) -> bool {
    ent.unit(b"join", &[asn as u64, slot]) < g
}

/// Occupant index of a slot: occupants turn over with a per-slot tenure,
/// modelling subscriber churn and hence /64 (or /48) reuse over time.
fn occupant(ent: &Entropy, asn: u32, slot: u64, day: Day) -> u64 {
    let tenure = 120 + ent.u64(b"tenu", &[asn as u64, slot]) % 1_100;
    let phase = ent.u64(b"teph", &[asn as u64, slot]) % tenure;
    ((day.0 + DAY_BASE) as u64 + phase) / tenure
}

/// Whether the household is active (any device might appear) on `day`.
///
/// Visit rates to any one service are heavy-tailed: most households
/// appear at the CDN only every few days or weeks, a minority daily.
/// This tail is what makes ~10% of /64s "not 3d-stable" in the paper's
/// Table 2b despite /64 assignments being persistent — stability
/// classification is limited by the opportunity to observe (§5.1).
fn household_active(ent: &Entropy, asn: u32, slot: u64, occ: u64, day: Day) -> bool {
    let ids = [asn as u64, slot, occ];
    // A minority of households host always-on clients (phones on wifi,
    // streaming boxes) and appear near-daily; the rest follow a heavy
    // tail of occasional visits.
    let p = if ent.chance(b"halw", &ids, 0.10) {
        0.8
    } else {
        let u = ent.unit(b"hact", &ids);
        0.02 + 0.45 * u * u * u.sqrt()
    };
    ent.chance(b"actd", &[asn as u64, slot, occ, day.0 as u64], p)
}

/// Hit count for one device-day.
fn hits(ent: &Entropy, ids: &[u64], mean: f64) -> u32 {
    ent.small_count(b"hits", ids, mean, 500) as u32
}

/// A synthetic MAC for a device.
fn device_mac(ent: &Entropy, ids: &[u64]) -> Mac {
    let oui = OUIS[(ent.u64(b"maco", ids) % OUIS.len() as u64) as usize];
    let nic = (ent.u64(b"macn", ids) & 0xff_ffff) as u32;
    Mac::from_oui_nic(oui, nic)
}

/// Emits the devices of one active household into `out`, given the
/// household's /64 network bits (high half of the address).
#[allow(clippy::too_many_arguments)]
fn emit_household_devices(
    ent: &Entropy,
    asn: u32,
    slot: u64,
    occ: u64,
    day: Day,
    net_high: u64,
    p: &HomeParams,
    out: &mut Vec<RawObs>,
) {
    let a = asn as u64;
    let ndev = ent.small_count(b"ndev", &[a, slot, occ], p.devices_mean, p.devices_cap);
    for dev in 0..ndev {
        let dev_ids = [a, slot, occ, dev];
        if !ent.chance(b"dact", &[a, slot, occ, dev, day.0 as u64], p.p_device) {
            continue;
        }
        let roll = ent.unit(b"dknd", &dev_ids);
        let (iid, kind) = if roll < p.share_eui {
            let mac = device_mac(ent, &dev_ids);
            (mac.to_modified_eui64(), TrueKind::Eui64 { mac })
        } else if roll < p.share_eui + p.share_stable_privacy {
            // RFC 7217: stable per (device, prefix).
            (
                privacy_bits(ent.u64(b"sprv", &[a, slot, occ, dev, net_high])),
                TrueKind::StablePrivacy,
            )
        } else if roll < p.share_eui + p.share_stable_privacy + p.share_slow_rotation {
            let period = 3 + ent.u64(b"prpd", &dev_ids) % 43;
            let phase = ent.u64(b"prph", &dev_ids) % period;
            let epoch = ((day.0 + DAY_BASE) as u64 + phase) / period;
            (
                privacy_bits(ent.u64(b"prvw", &[a, slot, occ, dev, epoch])),
                TrueKind::Privacy {
                    rotation_days: period as u16,
                },
            )
        } else {
            // Daily-rotating RFC 4941 temporary address. A temp address
            // created mid-day stays preferred ~24h, so its activity
            // straddles two aggregated log days (compounded by the §4.1
            // processing-timestamp slew): emit yesterday's address too
            // with the straddle probability.
            let iid_today = privacy_bits(ent.u64(b"prvd", &[a, slot, occ, dev, day.0 as u64]));
            if ent.chance(b"prst", &[a, slot, occ, dev, day.0 as u64], 0.55) {
                let iid_prev =
                    privacy_bits(ent.u64(b"prvd", &[a, slot, occ, dev, (day.0 - 1) as u64]));
                out.push(RawObs {
                    addr: Addr(((net_high as u128) << 64) | iid_prev as u128),
                    hits: hits(ent, &[a, slot, occ, dev, day.0 as u64, 1], 2.0),
                    kind: TrueKind::Privacy { rotation_days: 1 },
                });
            }
            (iid_today, TrueKind::Privacy { rotation_days: 1 })
        };
        out.push(RawObs {
            addr: Addr(((net_high as u128) << 64) | iid as u128),
            hits: hits(ent, &[a, slot, occ, dev, day.0 as u64], 4.0),
            kind,
        });
    }
    // Always-on CPE client (home hub, set-top) with a stable address.
    // The address itself has a long but finite lifetime: firmware
    // updates, reboots with opaque-IID regeneration, or ISP renumbering
    // replace it after a couple hundred days, so few CPEs survive the
    // 1-year class.
    if ent.chance(b"hcpe", &[a, slot, occ], p.p_cpe)
        && ent.chance(b"cpad", &[a, slot, occ, day.0 as u64], 0.9)
    {
        let iid = if ent.chance(b"cpe1", &[a, slot, occ], 0.35) {
            0x1
        } else {
            let period = 60 + ent.u64(b"cppd", &[a, slot, occ]) % 500;
            let epoch = ((day.0 + DAY_BASE) as u64) / period;
            0x100 + ent.u64(b"cpei", &[a, slot, occ, epoch]) % 0xff00
        };
        out.push(RawObs {
            addr: Addr(((net_high as u128) << 64) | iid as u128),
            hits: hits(ent, &[a, slot, occ, day.0 as u64], 2.0),
            kind: TrueKind::Cpe,
        });
    }
}

// ---------------------------------------------------------------------------
// Mobile
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn emit_mobile(
    ent: &Entropy,
    asn: u32,
    prefixes: &[Prefix],
    max_subs: u64,
    g: f64,
    day: Day,
    p: &MobileParams,
    out: &mut Vec<RawObs>,
) {
    let a = asn as u64;
    let n_prefixes = prefixes.len() as u64;
    for slot in 0..max_subs {
        if !joined(ent, asn, slot, g) {
            continue;
        }
        let occ = occupant(ent, asn, slot, day);
        // Handsets are online most days (always-on mobile data), with a
        // modest tail of rarely seen devices.
        let u = ent.unit(b"mact", &[a, slot, occ]);
        let p_act = 0.35 + 0.60 * u;
        if !ent.chance(b"macd", &[a, slot, occ, day.0 as u64], p_act) {
            continue;
        }
        let dev_ids = [a, slot, occ];
        let roll = ent.unit(b"mknd", &dev_ids);
        let (iid, kind) = if roll < p.share_shared_fixed {
            let rank = ent.zipf_rank(b"mshr", &dev_ids, SHARED_MOBILE_IIDS.len() as u64);
            (SHARED_MOBILE_IIDS[rank as usize], TrueKind::FixedIid)
        } else if roll < p.share_shared_fixed + p.share_fixed_dev {
            (privacy_bits(ent.u64(b"mfix", &dev_ids)), TrueKind::FixedIid)
        } else if roll < p.share_shared_fixed + p.share_fixed_dev + p.share_eui {
            let mac = if p.dup_mac && ent.chance(b"mdup", &dev_ids, 0.3) {
                Mac::PAPER_DUPLICATE
            } else {
                device_mac(ent, &dev_ids)
            };
            (mac.to_modified_eui64(), TrueKind::Eui64 { mac })
        } else {
            (
                privacy_bits(ent.u64(b"mprv", &[a, slot, occ, day.0 as u64])),
                TrueKind::Privacy { rotation_days: 1 },
            )
        };
        let assocs =
            1 + ent.chance(b"mas2", &[a, slot, occ, day.0 as u64], p.p_second_assoc) as u64;
        for assoc in 0..assocs {
            // Each association draws a /64 from the carrier's pools —
            // least-recently-used in reality, uniform here; either way
            // the pool cycles and /64s are reused across subscribers.
            let ids = [a, slot, occ, day.0 as u64, assoc];
            let pi = ent.below(b"mppx", &ids, n_prefixes);
            let pool_slot = ent.below(b"mp64", &ids, p.pool_per_prefix);
            let net = prefixes[pi as usize].addr().0 | ((pool_slot as u128) << 64);
            let iid = if assoc == 0 || !matches!(kind, TrueKind::Privacy { .. }) {
                iid
            } else {
                // A re-association with privacy addressing regenerates.
                privacy_bits(ent.u64(b"mpr2", &ids))
            };
            out.push(RawObs {
                addr: Addr(net | iid as u128),
                hits: hits(ent, &ids, 5.0),
                kind,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// EU rotating-NID ISP
// ---------------------------------------------------------------------------

/// Probability per day that a household's pseudorandom network ID
/// changes. 0.05/day ⇒ ~70% of IIDs stay in one /64 over a week,
/// matching the paper's 67.4% for the EU ISP.
const NID_CHANGE_DAILY: f64 = 0.05;

/// The day the household's NID last changed (bounded backward scan).
fn last_nid_change(ent: &Entropy, asn: u32, slot: u64, occ: u64, day: Day) -> i64 {
    let a = asn as u64;
    let mut d = day.0;
    for _ in 0..730 {
        if ent.chance(b"nidc", &[a, slot, occ, d as u64], NID_CHANGE_DAILY) {
            return d as i64;
        }
        d -= 1;
    }
    d as i64
}

#[allow(clippy::too_many_arguments)]
fn emit_rotating(
    ent: &Entropy,
    asn: u32,
    prefix: Prefix,
    max_subs: u64,
    g: f64,
    day: Day,
    p: &HomeParams,
    region_combos: u64,
    out: &mut Vec<RawObs>,
) {
    let a = asn as u64;
    let base_high = (prefix.addr().0 >> 64) as u64;
    for slot in 0..max_subs {
        if !joined(ent, asn, slot, g) {
            continue;
        }
        let occ = occupant(ent, asn, slot, day);
        if !household_active(ent, asn, slot, occ, day) {
            continue;
        }
        // Figure 5f layout: region/pop structure in bits 19..40, bit 40
        // constant 0, pseudorandom 15-bit NID at bits 41..55, non-uniform
        // 8-bit value at 56..63 (most often 0x00 or 0x01). Households
        // draw NIDs from their gateway pool's 15-bit space; with few
        // large pools, /48s cut across many active NIDs ("populated with
        // many values, heavier usage of the higher order bits").
        let combo = ent.u64(b"eucb", &[a, slot]) % region_combos;
        let region = (combo * 37) % 0xe0; // bits 24..32
        let pop = (combo * 11) % 0x60; // bits 32..40
        let changed = last_nid_change(ent, asn, slot, occ, day);
        let nid = ent.u64(b"nidv", &[a, slot, occ, changed as u64]) & 0x7fff;
        let subnet_roll = ent.unit(b"eusn", &[a, slot, occ]);
        let subnet = if subnet_roll < 0.55 {
            0x00
        } else if subnet_roll < 0.82 {
            0x01
        } else {
            ent.u64(b"eusv", &[a, slot, occ]) % 256
        };
        let net_high = base_high | (region << 32) | (pop << 24) | (nid << 8) | subnet;
        emit_household_devices(ent, asn, slot, occ, day, net_high, p, out);
    }
}

// ---------------------------------------------------------------------------
// JP static-/48 ISP
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn emit_static_isp(
    ent: &Entropy,
    asn: u32,
    prefix: Prefix,
    max_subs: u64,
    g: f64,
    day: Day,
    p: &HomeParams,
    out: &mut Vec<RawObs>,
) {
    let base_high = (prefix.addr().0 >> 64) as u64;
    for slot in 0..max_subs {
        if !joined(ent, asn, slot, g) {
            continue;
        }
        let occ = occupant(ent, asn, slot, day);
        if !household_active(ent, asn, slot, occ, day) {
            continue;
        }
        // Static /48 per subscriber slot (bits 24..48); the 16-bit subnet
        // field is the same value (0) in every address — Figure 5h's
        // "no aggregation in the 48-64 segment".
        let net_high = base_high | (slot << 16);
        emit_household_devices(ent, asn, slot, occ, day, net_high, p, out);
    }
}

// ---------------------------------------------------------------------------
// Renumbering broadband (US broadband + generic tail)
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn emit_renumbering(
    ent: &Entropy,
    asn: u32,
    prefixes: &[Prefix],
    max_subs: u64,
    g: f64,
    day: Day,
    p: &HomeParams,
    renumber_period: u32,
    out: &mut Vec<RawObs>,
) {
    let a = asn as u64;
    for slot in 0..max_subs {
        if !joined(ent, asn, slot, g) {
            continue;
        }
        let occ = occupant(ent, asn, slot, day);
        if !household_active(ent, asn, slot, occ, day) {
            continue;
        }
        let prefix = prefixes[(slot % prefixes.len() as u64) as usize];
        let base_high = (prefix.addr().0 >> 64) as u64;
        // DHCPv6-PD: the delegated /64 is stable until a renumbering
        // event; the period is long, so most /64s survive the year.
        let period = renumber_period.max(30) as u64;
        let phase = ent.u64(b"rnph", &[a, slot]) % period;
        let epoch = ((day.0 + DAY_BASE) as u64 + phase) / period;
        let region = ent.u64(b"breg", &[a, slot]) % 0x100; // bits 32..40
        let hh = ent.u64(b"bslt", &[a, slot, epoch]) & 0xffff; // bits 48..64
        let net_high = base_high | (region << 24) | hh;
        emit_household_devices(ent, asn, slot, occ, day, net_high, p, out);
    }
}

// ---------------------------------------------------------------------------
// University
// ---------------------------------------------------------------------------

/// The three subnet-class hex characters of the Figure 2a address plan.
const UNI_CLASSES: [u64; 3] = [0x1, 0x8, 0xc];

#[allow(clippy::too_many_arguments)]
fn emit_university(
    ent: &Entropy,
    asn: u32,
    prefix: Prefix,
    max_subs: u64,
    g: f64,
    day: Day,
    dense_dept: bool,
    out: &mut Vec<RawObs>,
) {
    let a = asn as u64;
    let base_high = (prefix.addr().0 >> 64) as u64;
    for slot in 0..max_subs {
        if !joined(ent, asn, slot, g) {
            continue;
        }
        // University hosts are individually modelled (no households).
        if !ent.chance(b"uact", &[a, slot, day.0 as u64], 0.35) {
            continue;
        }
        let class = UNI_CLASSES[ent.zipf_rank(b"ucls", &[a, slot], 3) as usize];
        let dept = ent.u64(b"udep", &[a, slot]) % 24;
        let lan = ent.u64(b"ulan", &[a, slot]) % 3;
        let net_high = base_high | (class << 28) | (dept << 16) | lan;
        let ids = [a, slot];
        let roll = ent.unit(b"uknd", &ids);
        let (iid, kind) = if roll < 0.06 {
            // Lab/desktop machines on DHCPv6 with small IIDs.
            (0x100 + slot % 500, TrueKind::Dhcp)
        } else if roll < 0.12 {
            let mac = device_mac(ent, &ids);
            (mac.to_modified_eui64(), TrueKind::Eui64 { mac })
        } else {
            (
                privacy_bits(ent.u64(b"uprv", &[a, slot, day.0 as u64])),
                TrueKind::Privacy { rotation_days: 1 },
            )
        };
        out.push(RawObs {
            addr: Addr(((net_high as u128) << 64) | iid as u128),
            hits: hits(ent, &[a, slot, day.0 as u64], 3.0),
            kind,
        });
    }
    if dense_dept {
        emit_dense_department(ent, asn, base_high, day, out);
    }
}

/// The Figure 5g department: one /64 holding ~94 densely packed DHCPv6
/// hosts, in three sub-pools distinguished at IID bits 8..16 (address
/// bits 72..80) with host numbers in the final 16 bits.
pub(crate) const DENSE_DEPT_POOLS: [u64; 3] = [0x10, 0x20, 0x30];
pub(crate) const DENSE_DEPT_HOSTS: u64 = 94;

/// The /64 network bits (high half) of the dense department, for a given
/// university base.
pub(crate) fn dense_dept_net_high(base_high: u64) -> u64 {
    base_high | (0x8 << 28) | (0x001 << 16)
}

/// The IID of dense-department host `h`.
pub(crate) fn dense_dept_iid(h: u64) -> u64 {
    let pool = DENSE_DEPT_POOLS[(h % 3) as usize];
    (pool << 48) | (1 + h / 3)
}

fn emit_dense_department(ent: &Entropy, asn: u32, base_high: u64, day: Day, out: &mut Vec<RawObs>) {
    let a = asn as u64;
    let net_high = dense_dept_net_high(base_high);
    for h in 0..DENSE_DEPT_HOSTS {
        if !ent.chance(b"dden", &[a, h, day.0 as u64], 0.75) {
            continue;
        }
        out.push(RawObs {
            addr: Addr(((net_high as u128) << 64) | dense_dept_iid(h) as u128),
            hits: hits(ent, &[a, h, day.0 as u64], 3.0),
            kind: TrueKind::Dhcp,
        });
    }
}

// ---------------------------------------------------------------------------
// Hosting and server blocks
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn emit_hosting(
    ent: &Entropy,
    asn: u32,
    prefix: Prefix,
    max_subs: u64,
    g: f64,
    day: Day,
    p: &HostingParams,
    out: &mut Vec<RawObs>,
) {
    // Hosting capacity follows growth loosely (servers deploy earlier).
    let servers = ((max_subs as f64) * (0.6 + 0.4 * g)).round() as u64;
    emit_server_range(ent, asn, prefix, servers, day, p.p_active, 20.0, out);
}

/// Statically numbered server clients: sequential IIDs inside a few /64s,
/// producing the 2@/112-dense WWW-client blocks of §6.2.2.
fn emit_server_block(
    ent: &Entropy,
    asn: u32,
    prefix: Prefix,
    servers: u32,
    day: Day,
    out: &mut Vec<RawObs>,
) {
    emit_server_range(ent, asn, prefix, servers as u64, day, 0.30, 8.0, out);
}

#[allow(clippy::too_many_arguments)]
fn emit_server_range(
    ent: &Entropy,
    asn: u32,
    prefix: Prefix,
    servers: u64,
    day: Day,
    p_active: f64,
    hit_mean: f64,
    out: &mut Vec<RawObs>,
) {
    let a = asn as u64;
    let base_high = (prefix.addr().0 >> 64) as u64;
    for s in 0..servers {
        if !ent.chance(b"sact", &[a, s, day.0 as u64], p_active) {
            continue;
        }
        // 48 servers per subnet; IIDs sequential from ::1.
        let subnet = 1 + s / 48;
        let net_high = base_high | (0xf << 28) | subnet;
        let iid = 1 + s % 48;
        out.push(RawObs {
            addr: Addr(((net_high as u128) << 64) | iid as u128),
            hits: hits(ent, &[a, s, day.0 as u64], hit_mean),
            kind: TrueKind::StaticServer,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{asns, epochs, World, WorldConfig};
    use v6census_addr::Iid;

    fn world() -> World {
        World::standard(WorldConfig::tiny(3))
    }

    fn emit_network(w: &World, asn: u32, day: Day) -> Vec<RawObs> {
        let n = w.network(asn).unwrap();
        let mut out = Vec::new();
        n.archetype.emit_day(
            &w.entropy(),
            n.asn,
            &n.prefixes,
            n.max_subscribers,
            n.activation,
            day,
            &mut out,
        );
        out
    }

    #[test]
    fn mobile_addresses_live_in_carrier_prefixes() {
        let w = world();
        let obs = emit_network(&w, asns::MOBILE_A, epochs::mar2015());
        assert!(!obs.is_empty());
        let n = w.network(asns::MOBILE_A).unwrap();
        for o in &obs {
            assert!(
                n.prefixes.iter().any(|p| p.contains_addr(o.addr)),
                "{} outside carrier space",
                o.addr
            );
        }
    }

    #[test]
    fn mobile_64s_change_daily() {
        let w = world();
        let d = epochs::mar2015();
        let day1: std::collections::HashSet<u64> = emit_network(&w, asns::MOBILE_A, d)
            .iter()
            .map(|o| o.addr.network_bits())
            .collect();
        let day2: std::collections::HashSet<u64> = emit_network(&w, asns::MOBILE_A, d + 1)
            .iter()
            .map(|o| o.addr.network_bits())
            .collect();
        // Pools are shared, so /64s overlap; but the per-subscriber
        // assignment is dynamic, so the address sets differ a lot.
        let a1: std::collections::HashSet<u128> = emit_network(&w, asns::MOBILE_A, d)
            .iter()
            .map(|o| o.addr.0)
            .collect();
        let a2: std::collections::HashSet<u128> = emit_network(&w, asns::MOBILE_A, d + 1)
            .iter()
            .map(|o| o.addr.0)
            .collect();
        let addr_overlap = a1.intersection(&a2).count() as f64 / a1.len() as f64;
        let net_overlap = day1.intersection(&day2).count() as f64 / day1.len() as f64;
        assert!(
            net_overlap > 2.0 * addr_overlap,
            "net {net_overlap:.3} vs addr {addr_overlap:.3}"
        );
    }

    #[test]
    fn eu_isp_nid_layout() {
        let w = world();
        let obs = emit_network(&w, asns::EU_ISP, epochs::mar2015());
        assert!(!obs.is_empty());
        let prefix = w.network(asns::EU_ISP).unwrap().prefixes[0];
        let mut subnet_zero_or_one = 0usize;
        for o in &obs {
            assert!(prefix.contains_addr(o.addr));
            // Bit 40 constant zero.
            assert_eq!(o.addr.bit(40), 0, "{}", o.addr);
            let subnet = (o.addr.network_bits() & 0xff) as u8;
            if subnet <= 1 {
                subnet_zero_or_one += 1;
            }
        }
        assert!(
            subnet_zero_or_one as f64 > 0.6 * obs.len() as f64,
            "subnet skew missing"
        );
    }

    #[test]
    fn jp_isp_static_48s_have_zero_subnet() {
        let w = world();
        let obs = emit_network(&w, asns::JP_ISP, epochs::mar2015());
        assert!(!obs.is_empty());
        for o in &obs {
            assert_eq!(o.addr.segment(3), 0, "subnet field must be constant");
        }
        // /64 per subscriber is static: two days share most /64s.
        let d = epochs::mar2015();
        let n1: std::collections::HashSet<u64> = emit_network(&w, asns::JP_ISP, d)
            .iter()
            .map(|o| o.addr.network_bits())
            .collect();
        let n2: std::collections::HashSet<u64> = emit_network(&w, asns::JP_ISP, d + 1)
            .iter()
            .map(|o| o.addr.network_bits())
            .collect();
        let overlap = n1.intersection(&n2).count() as f64 / n1.len().min(n2.len()) as f64;
        assert!(overlap > 0.12, "JP /64 overlap {overlap:.3}");
    }

    #[test]
    fn dense_department_present_and_packed() {
        let w = world();
        let obs = emit_network(&w, asns::UNIVERSITY_FIRST, epochs::mar2015());
        // Dense department /64: class nybble 8, dept 1, lan 0 (segment 2
        // of the address reads 0x8001).
        let dept: Vec<&RawObs> = obs
            .iter()
            .filter(|o| matches!(o.kind, TrueKind::Dhcp) && o.addr.segment(2) == 0x8001)
            .collect();
        assert!(dept.len() > 40, "dense dept only {} hosts", dept.len());
        // All inside one /64.
        let nets: std::collections::HashSet<u64> =
            dept.iter().map(|o| o.addr.network_bits()).collect();
        assert!(nets.len() <= 2, "{nets:?}");
    }

    #[test]
    fn ground_truth_matches_content_for_eui64() {
        let w = world();
        for asn in [asns::MOBILE_A, asns::JP_ISP, asns::US_BROADBAND] {
            for o in emit_network(&w, asn, epochs::mar2015()) {
                if let TrueKind::Eui64 { mac } = o.kind {
                    assert_eq!(Iid::of(o.addr).eui64_mac(), Some(mac));
                }
                if let TrueKind::Privacy { .. } = o.kind {
                    assert_eq!(Iid::of(o.addr).u_bit(), 0, "{}", o.addr);
                }
            }
        }
    }

    #[test]
    fn duplicate_mac_only_in_carrier_a() {
        let w = world();
        let d = epochs::mar2015();
        let has_dup = |asn: u32| {
            emit_network(&w, asn, d)
                .iter()
                .any(|o| matches!(o.kind, TrueKind::Eui64 { mac } if mac == Mac::PAPER_DUPLICATE))
        };
        assert!(has_dup(asns::MOBILE_A), "carrier A should show the anomaly");
        assert!(!has_dup(asns::MOBILE_B));
        assert!(!has_dup(asns::JP_ISP));
    }

    #[test]
    fn growth_increases_population() {
        let w = world();
        let n14 = emit_network(&w, asns::US_BROADBAND, epochs::mar2014()).len();
        let n15 = emit_network(&w, asns::US_BROADBAND, epochs::mar2015()).len();
        assert!(
            n15 as f64 > 1.4 * n14 as f64,
            "population should grow: {n14} -> {n15}"
        );
    }

    #[test]
    fn emission_is_deterministic() {
        let w = world();
        let a = emit_network(&w, asns::EU_ISP, epochs::mar2015());
        let b = emit_network(&w, asns::EU_ISP, epochs::mar2015());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.addr, y.addr);
            assert_eq!(x.hits, y.hits);
        }
    }
}
