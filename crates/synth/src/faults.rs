//! Deterministic fault injection over serialized day logs.
//!
//! The robustness of the ingestion pipeline cannot be argued from clean
//! synthetic data; it has to be exercised against the ways real log
//! collection fails: corrupted lines, files cut short by a dying writer,
//! the same day delivered twice, headers that disagree with file names,
//! and days that never arrive. [`FaultInjector`] produces exactly those
//! failures, seeded — every fault site is a pure function of
//! `(seed, day)`, so a failing ingestion test reproduces bit-for-bit.
//!
//! The canonical on-disk format is defined by [`DayLog::to_text`]:
//!
//! ```text
//! # synthetic day 2015-03-17: 1234 unique client addrs
//! # addr\thits\ttrue_kind
//! 2001:db8::1\t17\tcpe
//! ...
//! # end 1234 56789
//! ```
//!
//! The trailer records the entry count and total hits, which is what
//! lets a reader *prove* truncation instead of silently accepting a
//! partial day.

use crate::loggen::DayLog;
use crate::rng::Entropy;
use crate::world::World;
use std::fmt;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use v6census_core::temporal::Day;

impl DayLog {
    /// Serializes the log to the canonical day-log text format, with the
    /// `# end <entries> <hits>` integrity trailer.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "# synthetic day {}: {} unique client addrs\n",
            self.day,
            self.len()
        );
        let _ = writeln!(out, "# addr\thits\ttrue_kind");
        let mut hits = 0u64;
        for e in &self.entries {
            hits += e.hits;
            let _ = writeln!(out, "{}\t{}\t{}", e.addr, e.hits, e.kind.label());
        }
        let _ = writeln!(out, "# end {} {hits}", self.len());
        out
    }
}

/// One kind of injected failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Garbles `count` data lines (unparseable address or hits column).
    CorruptLines {
        /// How many data lines to damage.
        count: usize,
    },
    /// Cuts the file mid-line at roughly `keep_pct` percent of its data,
    /// dropping the integrity trailer — a writer that died mid-flush.
    Truncate {
        /// Percentage (0–100) of data lines kept before the cut.
        keep_pct: u8,
    },
    /// Delivers the same day twice (a second file with a `.dup` name).
    DuplicateDay,
    /// Rewrites the header date by `offset` days so it disagrees with
    /// the file name — a mislabeled delivery.
    ShiftHeaderDay {
        /// Days added to the header date.
        offset: i32,
    },
    /// The day's file is never written.
    DropDay,
    /// Appends `addrs` synthetic addresses packed into one /64 — a
    /// *valid* but adversarially dense file (header count and integrity
    /// trailer are rewritten to match), built to blow past analysis
    /// memory budgets rather than to fail parsing.
    OversizedPrefixBlob {
        /// How many blob addresses to append.
        addrs: usize,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::CorruptLines { count } => write!(f, "corrupt-lines({count})"),
            Fault::Truncate { keep_pct } => write!(f, "truncate({keep_pct}%)"),
            Fault::DuplicateDay => write!(f, "duplicate-day"),
            Fault::ShiftHeaderDay { offset } => write!(f, "shift-header-day({offset:+})"),
            Fault::DropDay => write!(f, "drop-day"),
            Fault::OversizedPrefixBlob { addrs } => write!(f, "oversized-prefix-blob({addrs})"),
        }
    }
}

/// The faults to inject, by day. Days without an entry are written clean.
#[derive(Clone, Debug, Default)]
pub struct FaultSpec {
    /// `(day, fault)` pairs; multiple faults on one day apply in order.
    pub faults: Vec<(Day, Fault)>,
}

impl FaultSpec {
    /// The faults scheduled for `day`, in declaration order.
    pub fn for_day(&self, day: Day) -> impl Iterator<Item = &Fault> {
        self.faults
            .iter()
            .filter(move |(d, _)| *d == day)
            .map(|(_, f)| f)
    }
}

/// A record of one fault as actually applied.
#[derive(Clone, Debug)]
pub struct AppliedFault {
    /// The day the fault targeted.
    pub day: Day,
    /// The fault.
    pub fault: Fault,
    /// The file the fault landed in (`None` for [`Fault::DropDay`]).
    pub path: Option<PathBuf>,
}

/// The ground-truth manifest of everything [`FaultInjector::write_day_files`]
/// did — what a robustness test asserts the ingest report against.
#[derive(Clone, Debug, Default)]
pub struct FaultManifest {
    /// Every applied fault, in day order.
    pub applied: Vec<AppliedFault>,
}

impl FaultManifest {
    /// The applied faults for one day.
    pub fn for_day(&self, day: Day) -> Vec<&AppliedFault> {
        self.applied.iter().filter(|a| a.day == day).collect()
    }

    /// A human-readable summary, one line per fault.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for a in &self.applied {
            let _ = writeln!(out, "{}\t{}", a.day, a.fault);
        }
        out
    }
}

/// Seeded fault injector over serialized day logs.
#[derive(Clone, Copy, Debug)]
pub struct FaultInjector {
    ent: Entropy,
}

/// The file name for a day's log: `YYYY-MM-DD.log`.
pub fn day_file_name(day: Day) -> String {
    format!("{day}.log")
}

impl FaultInjector {
    /// Creates an injector; all fault sites derive from `seed`.
    pub const fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            ent: Entropy::new(seed),
        }
    }

    /// Applies one fault to a serialized day log. Returns `None` for
    /// [`Fault::DropDay`] (the file must not be written) and for
    /// [`Fault::DuplicateDay`] leaves the text unchanged (duplication is
    /// a write-time fault, handled by [`FaultInjector::write_day_files`]).
    pub fn apply(&self, day: Day, text: &str, fault: &Fault) -> Option<String> {
        let ids = [day.0 as u64];
        match *fault {
            Fault::DropDay => None,
            Fault::DuplicateDay => Some(text.to_string()),
            Fault::CorruptLines { count } => {
                let mut lines: Vec<String> = text.lines().map(String::from).collect();
                let data: Vec<usize> = lines
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| !l.starts_with('#') && !l.is_empty())
                    .map(|(i, _)| i)
                    .collect();
                if data.is_empty() {
                    return Some(text.to_string());
                }
                for k in 0..count {
                    let victim = data
                        [(self.ent.u64(b"flct", &[ids[0], k as u64]) % data.len() as u64) as usize];
                    // Alternate between an unparseable address and an
                    // unparseable hits column, so both error paths fire.
                    lines[victim] = if k % 2 == 0 {
                        format!("zz:not:an:addr:{k}\t7\tcorrupt")
                    } else {
                        let addr = lines[victim].split('\t').next().unwrap_or("::1");
                        format!("{addr}\tbanana\tcorrupt")
                    };
                }
                Some(lines.join("\n") + "\n")
            }
            Fault::Truncate { keep_pct } => {
                let lines: Vec<&str> = text.lines().collect();
                // Header lines stay; keep ~keep_pct% of data lines and
                // cut the last survivor mid-line (no trailing newline,
                // no trailer) — the signature of a killed writer.
                let header: Vec<&str> = lines
                    .iter()
                    .take_while(|l| l.starts_with('#'))
                    .copied()
                    .collect();
                let data: Vec<&str> = lines[header.len()..]
                    .iter()
                    .filter(|l| !l.starts_with('#'))
                    .copied()
                    .collect();
                let keep = (data.len() * keep_pct.min(100) as usize / 100).max(1);
                let mut out = header.join("\n") + "\n";
                for l in &data[..keep.saturating_sub(1)] {
                    out.push_str(l);
                    out.push('\n');
                }
                if let Some(last) = data.get(keep.saturating_sub(1)) {
                    let cut =
                        1 + (self.ent.u64(b"fltr", &ids) % last.len().max(2) as u64 / 2) as usize;
                    out.push_str(&last[..cut.min(last.len())]);
                }
                Some(out)
            }
            Fault::ShiftHeaderDay { offset } => {
                let shifted = day + offset;
                let mut out = String::with_capacity(text.len());
                for (i, line) in text.lines().enumerate() {
                    if i == 0 {
                        out.push_str(&line.replace(&day.to_string(), &shifted.to_string()));
                    } else {
                        out.push_str(line);
                    }
                    out.push('\n');
                }
                Some(out)
            }
            Fault::OversizedPrefixBlob { addrs } => {
                // Keep everything except the trailer, append the blob,
                // then rewrite header count and trailer so the file still
                // passes every integrity check — the danger is its size,
                // not its shape.
                let mut header: Vec<&str> = Vec::new();
                let mut data: Vec<&str> = Vec::new();
                let mut hits = 0u64;
                for (i, line) in text.lines().enumerate() {
                    if line.starts_with('#') {
                        if i == 0 || !line.trim_start_matches('#').trim().starts_with("end") {
                            header.push(line);
                        }
                        continue;
                    }
                    data.push(line);
                    hits += line
                        .split_whitespace()
                        .nth(1)
                        .and_then(|h| h.parse::<u64>().ok())
                        .unwrap_or(1);
                }
                // The blob lives in one /64; low bits enumerate hosts.
                let seg = self.ent.u64(b"blob", &ids) & 0xffff;
                let base: u128 = (0x2001_0db8u128 << 96) | ((0xb10b_0000u128 | seg as u128) << 64);
                let n = data.len() + addrs;
                let mut out = String::with_capacity(text.len() + addrs * 24);
                for (i, line) in header.iter().enumerate() {
                    if i == 0 {
                        match line.split_once(": ") {
                            Some((front, _)) => {
                                let _ = writeln!(out, "{front}: {n} unique client addrs");
                            }
                            None => {
                                out.push_str(line);
                                out.push('\n');
                            }
                        }
                    } else {
                        out.push_str(line);
                        out.push('\n');
                    }
                }
                for line in &data {
                    out.push_str(line);
                    out.push('\n');
                }
                for i in 0..addrs {
                    let _ = writeln!(out, "{}\t1\tblob", v6census_addr::Addr(base | i as u128));
                }
                let _ = writeln!(out, "# end {n} {}", hits + addrs as u64);
                Some(out)
            }
        }
    }

    /// Generates and writes day-log files for `first..=last` under `dir`,
    /// applying the faults in `spec`. Returns the manifest of applied
    /// faults. Clean days serialize via [`DayLog::to_text`].
    pub fn write_day_files(
        &self,
        world: &World,
        first: Day,
        last: Day,
        dir: &Path,
        spec: &FaultSpec,
    ) -> io::Result<FaultManifest> {
        std::fs::create_dir_all(dir)?;
        let mut manifest = FaultManifest::default();
        for day in first.range_inclusive(last) {
            let mut text = Some(world.day_log(day).to_text());
            let mut duplicate = false;
            for fault in spec.for_day(day) {
                if *fault == Fault::DuplicateDay {
                    duplicate = true;
                }
                let next = match &text {
                    Some(t) => self.apply(day, t, fault),
                    None => None,
                };
                manifest.applied.push(AppliedFault {
                    day,
                    fault: *fault,
                    path: next.is_some().then(|| dir.join(day_file_name(day))),
                });
                text = next;
            }
            if let Some(t) = text {
                std::fs::write(dir.join(day_file_name(day)), &t)?;
                if duplicate {
                    std::fs::write(dir.join(format!("{day}.dup.log")), &t)?;
                }
            }
        }
        Ok(manifest)
    }
}

// ---------------------------------------------------------------------------
// Analysis-phase faults: tripped inside supervised work units
// ---------------------------------------------------------------------------

/// A fault injected into the *analysis* phase — tripped inside a running
/// work unit of the supervised engine, rather than written into a file.
/// These exercise the supervisor's containment machinery: panic
/// isolation with retry, deadline watchdogs, and cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnalysisFault {
    /// The unit panics on its first `attempts` attempts (attempt numbers
    /// are 0-based), then succeeds — `attempts: 1` exercises
    /// retry-then-recover, a large value exercises retry-then-exclude.
    PanicShard {
        /// How many leading attempts panic.
        attempts: u32,
    },
    /// The unit blocks for `millis` without ever checking cancellation —
    /// a hung shard the deadline watchdog must abandon.
    HangShard {
        /// How long the unit blocks, in milliseconds.
        millis: u64,
    },
    /// The unit sleeps `millis` before doing its (correct) work — slow
    /// but healthy, must *not* be excluded if the deadline allows.
    SlowShard {
        /// Added latency in milliseconds.
        millis: u64,
    },
}

impl fmt::Display for AnalysisFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisFault::PanicShard { attempts } => write!(f, "panic-shard(x{attempts})"),
            AnalysisFault::HangShard { millis } => write!(f, "hang-shard({millis}ms)"),
            AnalysisFault::SlowShard { millis } => write!(f, "slow-shard({millis}ms)"),
        }
    }
}

/// Which analysis units get which [`AnalysisFault`], matched by
/// substring against the unit label (e.g. `"densify/2001:"` or
/// `"ingest/2015-03-17"`). Parsed from the CLI `--inject` flag.
#[derive(Clone, Debug, Default)]
pub struct AnalysisFaultPlan {
    rules: Vec<(String, AnalysisFault)>,
}

impl AnalysisFaultPlan {
    /// An empty plan: no unit is faulted.
    pub fn none() -> AnalysisFaultPlan {
        AnalysisFaultPlan::default()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Schedules `fault` for every unit whose label contains `pattern`.
    pub fn add(&mut self, pattern: impl Into<String>, fault: AnalysisFault) {
        self.rules.push((pattern.into(), fault));
    }

    /// The scheduled rules, in declaration order.
    pub fn rules(&self) -> &[(String, AnalysisFault)] {
        &self.rules
    }

    /// Parses a comma-separated fault spec, the `--inject` grammar:
    ///
    /// * `panic:PATTERN` — panic on the first attempt only;
    /// * `panic:PATTERN:N` — panic on the first `N` attempts;
    /// * `hang:PATTERN:MILLIS` — block without checking cancellation;
    /// * `slow:PATTERN:MILLIS` — sleep, then work normally.
    pub fn parse(spec: &str) -> Result<AnalysisFaultPlan, String> {
        let mut plan = AnalysisFaultPlan::none();
        for item in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let item = item.trim();
            let mut parts = item.splitn(3, ':');
            let kind = parts.next().unwrap_or("");
            let pattern = parts
                .next()
                .filter(|p| !p.is_empty())
                .ok_or_else(|| format!("inject spec {item:?}: missing unit pattern"))?;
            let num = parts.next();
            let parse_num = |what: &str| -> Result<u64, String> {
                num.ok_or_else(|| format!("inject spec {item:?}: missing {what}"))?
                    .parse::<u64>()
                    .map_err(|_| format!("inject spec {item:?}: bad {what}"))
            };
            let fault = match kind {
                "panic" => AnalysisFault::PanicShard {
                    attempts: match num {
                        None => 1,
                        Some(_) => parse_num("attempt count")? as u32,
                    },
                },
                "hang" => AnalysisFault::HangShard {
                    millis: parse_num("milliseconds")?,
                },
                "slow" => AnalysisFault::SlowShard {
                    millis: parse_num("milliseconds")?,
                },
                other => {
                    return Err(format!(
                        "inject spec {item:?}: unknown fault kind {other:?} \
                         (expected panic, hang, or slow)"
                    ))
                }
            };
            plan.add(pattern, fault);
        }
        Ok(plan)
    }

    /// The first scheduled fault whose pattern matches `unit`.
    pub fn fault_for(&self, unit: &str) -> Option<AnalysisFault> {
        self.rules
            .iter()
            .find(|(pat, _)| unit.contains(pat.as_str()))
            .map(|&(_, f)| f)
    }

    /// Executes whatever fault is scheduled for `unit` at `attempt`:
    /// panics, blocks, or sleeps. The supervised engine calls this at the
    /// top of each work unit; with an empty plan it is a no-op.
    pub fn trip(&self, unit: &str, attempt: u32) {
        match self.fault_for(unit) {
            Some(AnalysisFault::PanicShard { attempts }) if attempt < attempts => {
                panic!("injected panic in unit `{unit}` (attempt {attempt})"); // lint: allow(R001, reason = "deliberate fault injection; the supervisor calls trip() inside catch_unwind, so this panic is contained and surfaced as a unit failure")
            }
            Some(AnalysisFault::HangShard { millis })
            | Some(AnalysisFault::SlowShard { millis }) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{epochs, WorldConfig};

    fn log() -> DayLog {
        World::standard(WorldConfig {
            seed: 3,
            scale: 0.002,
        })
        .day_log(epochs::mar2015())
    }

    #[test]
    fn serialization_has_header_and_trailer() {
        let l = log();
        let text = l.to_text();
        assert!(text.starts_with(&format!("# synthetic day {}: {}", l.day, l.len())));
        let last = text.lines().last().unwrap();
        let hits: u64 = l.entries.iter().map(|e| e.hits).sum();
        assert_eq!(last, format!("# end {} {hits}", l.len()));
        let data = text.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(data, l.len());
    }

    #[test]
    fn corrupt_lines_damages_exactly_the_budget() {
        let l = log();
        let inj = FaultInjector::new(9);
        let out = inj
            .apply(l.day, &l.to_text(), &Fault::CorruptLines { count: 5 })
            .unwrap();
        let bad = out
            .lines()
            .filter(|line| !line.starts_with('#'))
            .filter(|line| {
                let mut cols = line.split('\t');
                let addr_bad = cols
                    .next()
                    .map(|a| a.parse::<v6census_addr::Addr>().is_err())
                    .unwrap_or(true);
                let hits_bad = cols
                    .next()
                    .map(|h| h.parse::<u64>().is_err())
                    .unwrap_or(true);
                addr_bad || hits_bad
            })
            .count();
        assert!((1..=5).contains(&bad), "{bad} damaged lines");
        // Determinism: same seed, same damage.
        let again = inj
            .apply(l.day, &l.to_text(), &Fault::CorruptLines { count: 5 })
            .unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn truncate_drops_trailer_and_cuts_midline() {
        let l = log();
        let inj = FaultInjector::new(9);
        let out = inj
            .apply(l.day, &l.to_text(), &Fault::Truncate { keep_pct: 50 })
            .unwrap();
        assert!(!out.contains("# end"), "trailer must be gone");
        assert!(!out.ends_with('\n'), "must cut mid-line");
        let kept = out.lines().filter(|l| !l.starts_with('#')).count();
        assert!(kept < l.len(), "{kept} of {}", l.len());
    }

    #[test]
    fn shift_header_day_rewrites_only_the_header() {
        let l = log();
        let inj = FaultInjector::new(9);
        let out = inj
            .apply(l.day, &l.to_text(), &Fault::ShiftHeaderDay { offset: -1 })
            .unwrap();
        let header = out.lines().next().unwrap();
        assert!(header.contains(&(l.day - 1).to_string()), "{header}");
        assert_eq!(
            out.lines().filter(|l| !l.starts_with('#')).count(),
            l.len(),
            "data must be intact"
        );
    }

    #[test]
    fn oversized_blob_stays_valid_and_packs_one_slash64() {
        let l = log();
        let inj = FaultInjector::new(9);
        let before = l.to_text();
        let out = inj
            .apply(l.day, &before, &Fault::OversizedPrefixBlob { addrs: 500 })
            .unwrap();
        let data: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(data.len(), l.len() + 500);
        // Header count and trailer were rewritten to match.
        let header = out.lines().next().unwrap();
        assert!(
            header.contains(&format!(": {} unique client addrs", data.len())),
            "{header}"
        );
        let trailer = out.lines().last().unwrap();
        let hits_before: u64 = l.entries.iter().map(|e| e.hits).sum();
        assert_eq!(
            trailer,
            &format!("# end {} {}", data.len(), hits_before + 500)
        );
        // All blob addresses parse and share one /64.
        let blob: Vec<v6census_addr::Addr> = data
            .iter()
            .filter(|l| l.ends_with("\tblob"))
            .map(|l| l.split('\t').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(blob.len(), 500);
        let net = blob[0].0 >> 64;
        assert!(blob.iter().all(|a| a.0 >> 64 == net), "blob spans /64s");
        // Deterministic.
        assert_eq!(
            out,
            inj.apply(l.day, &before, &Fault::OversizedPrefixBlob { addrs: 500 })
                .unwrap()
        );
    }

    #[test]
    fn analysis_plan_parses_the_inject_grammar() {
        let plan =
            AnalysisFaultPlan::parse("panic:densify/2001, hang:ingest/2015-03-18:5000,slow:mra:25")
                .unwrap();
        assert_eq!(plan.rules().len(), 3);
        assert_eq!(
            plan.fault_for("densify/2001:db8::/32"),
            Some(AnalysisFault::PanicShard { attempts: 1 })
        );
        assert_eq!(
            plan.fault_for("ingest/2015-03-18"),
            Some(AnalysisFault::HangShard { millis: 5000 })
        );
        assert_eq!(
            plan.fault_for("mra/whole"),
            Some(AnalysisFault::SlowShard { millis: 25 })
        );
        assert_eq!(plan.fault_for("table1/whole"), None);
        assert_eq!(
            AnalysisFaultPlan::parse("panic:x:3")
                .unwrap()
                .fault_for("x"),
            Some(AnalysisFault::PanicShard { attempts: 3 })
        );
        assert!(AnalysisFaultPlan::parse("").unwrap().is_empty());
        assert!(AnalysisFaultPlan::parse("panic:").is_err());
        assert!(AnalysisFaultPlan::parse("hang:x").is_err());
        assert!(AnalysisFaultPlan::parse("slow:x:abc").is_err());
        assert!(AnalysisFaultPlan::parse("explode:x").is_err());
        assert_eq!(
            AnalysisFault::PanicShard { attempts: 2 }.to_string(),
            "panic-shard(x2)"
        );
    }

    #[test]
    fn analysis_plan_trips_panics_and_recovers_on_retry() {
        let plan = AnalysisFaultPlan::parse("panic:shard-7").unwrap();
        let r = std::panic::catch_unwind(|| plan.trip("densify/shard-7", 0));
        assert!(r.is_err(), "attempt 0 must panic");
        // Attempt 1 is past the budget: no panic.
        plan.trip("densify/shard-7", 1);
        // Unmatched units never trip.
        plan.trip("densify/shard-8", 0);
        // Slow faults return (and don't panic).
        AnalysisFaultPlan::parse("slow:x:1").unwrap().trip("x", 0);
    }

    #[test]
    fn write_day_files_honours_the_spec() {
        let dir = std::env::temp_dir().join(format!(
            "v6census-faults-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let w = World::standard(WorldConfig {
            seed: 3,
            scale: 0.002,
        });
        let d0 = epochs::mar2015();
        let spec = FaultSpec {
            faults: vec![
                (d0 + 1, Fault::DropDay),
                (d0 + 2, Fault::DuplicateDay),
                (d0 + 3, Fault::Truncate { keep_pct: 40 }),
            ],
        };
        let manifest = FaultInjector::new(5)
            .write_day_files(&w, d0, d0 + 4, &dir, &spec)
            .unwrap();
        assert_eq!(manifest.applied.len(), 3);
        assert!(dir.join(day_file_name(d0)).exists());
        assert!(!dir.join(day_file_name(d0 + 1)).exists(), "dropped");
        assert!(
            dir.join(format!("{}.dup.log", d0 + 2)).exists(),
            "duplicated"
        );
        assert!(manifest.summary().contains("drop-day"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
