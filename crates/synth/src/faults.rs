//! Deterministic fault injection over serialized day logs.
//!
//! The robustness of the ingestion pipeline cannot be argued from clean
//! synthetic data; it has to be exercised against the ways real log
//! collection fails: corrupted lines, files cut short by a dying writer,
//! the same day delivered twice, headers that disagree with file names,
//! and days that never arrive. [`FaultInjector`] produces exactly those
//! failures, seeded — every fault site is a pure function of
//! `(seed, day)`, so a failing ingestion test reproduces bit-for-bit.
//!
//! The canonical on-disk format is defined by [`DayLog::to_text`]:
//!
//! ```text
//! # synthetic day 2015-03-17: 1234 unique client addrs
//! # addr\thits\ttrue_kind
//! 2001:db8::1\t17\tcpe
//! ...
//! # end 1234 56789
//! ```
//!
//! The trailer records the entry count and total hits, which is what
//! lets a reader *prove* truncation instead of silently accepting a
//! partial day.

use crate::loggen::DayLog;
use crate::rng::Entropy;
use crate::world::World;
use std::fmt;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use v6census_core::temporal::Day;

impl DayLog {
    /// Serializes the log to the canonical day-log text format, with the
    /// `# end <entries> <hits>` integrity trailer.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "# synthetic day {}: {} unique client addrs\n",
            self.day,
            self.len()
        );
        let _ = writeln!(out, "# addr\thits\ttrue_kind");
        let mut hits = 0u64;
        for e in &self.entries {
            hits += e.hits;
            let _ = writeln!(out, "{}\t{}\t{}", e.addr, e.hits, e.kind.label());
        }
        let _ = writeln!(out, "# end {} {hits}", self.len());
        out
    }
}

/// One kind of injected failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Garbles `count` data lines (unparseable address or hits column).
    CorruptLines {
        /// How many data lines to damage.
        count: usize,
    },
    /// Cuts the file mid-line at roughly `keep_pct` percent of its data,
    /// dropping the integrity trailer — a writer that died mid-flush.
    Truncate {
        /// Percentage (0–100) of data lines kept before the cut.
        keep_pct: u8,
    },
    /// Delivers the same day twice (a second file with a `.dup` name).
    DuplicateDay,
    /// Rewrites the header date by `offset` days so it disagrees with
    /// the file name — a mislabeled delivery.
    ShiftHeaderDay {
        /// Days added to the header date.
        offset: i32,
    },
    /// The day's file is never written.
    DropDay,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::CorruptLines { count } => write!(f, "corrupt-lines({count})"),
            Fault::Truncate { keep_pct } => write!(f, "truncate({keep_pct}%)"),
            Fault::DuplicateDay => write!(f, "duplicate-day"),
            Fault::ShiftHeaderDay { offset } => write!(f, "shift-header-day({offset:+})"),
            Fault::DropDay => write!(f, "drop-day"),
        }
    }
}

/// The faults to inject, by day. Days without an entry are written clean.
#[derive(Clone, Debug, Default)]
pub struct FaultSpec {
    /// `(day, fault)` pairs; multiple faults on one day apply in order.
    pub faults: Vec<(Day, Fault)>,
}

impl FaultSpec {
    /// The faults scheduled for `day`, in declaration order.
    pub fn for_day(&self, day: Day) -> impl Iterator<Item = &Fault> {
        self.faults
            .iter()
            .filter(move |(d, _)| *d == day)
            .map(|(_, f)| f)
    }
}

/// A record of one fault as actually applied.
#[derive(Clone, Debug)]
pub struct AppliedFault {
    /// The day the fault targeted.
    pub day: Day,
    /// The fault.
    pub fault: Fault,
    /// The file the fault landed in (`None` for [`Fault::DropDay`]).
    pub path: Option<PathBuf>,
}

/// The ground-truth manifest of everything [`FaultInjector::write_day_files`]
/// did — what a robustness test asserts the ingest report against.
#[derive(Clone, Debug, Default)]
pub struct FaultManifest {
    /// Every applied fault, in day order.
    pub applied: Vec<AppliedFault>,
}

impl FaultManifest {
    /// The applied faults for one day.
    pub fn for_day(&self, day: Day) -> Vec<&AppliedFault> {
        self.applied.iter().filter(|a| a.day == day).collect()
    }

    /// A human-readable summary, one line per fault.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for a in &self.applied {
            let _ = writeln!(out, "{}\t{}", a.day, a.fault);
        }
        out
    }
}

/// Seeded fault injector over serialized day logs.
#[derive(Clone, Copy, Debug)]
pub struct FaultInjector {
    ent: Entropy,
}

/// The file name for a day's log: `YYYY-MM-DD.log`.
pub fn day_file_name(day: Day) -> String {
    format!("{day}.log")
}

impl FaultInjector {
    /// Creates an injector; all fault sites derive from `seed`.
    pub const fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            ent: Entropy::new(seed),
        }
    }

    /// Applies one fault to a serialized day log. Returns `None` for
    /// [`Fault::DropDay`] (the file must not be written) and for
    /// [`Fault::DuplicateDay`] leaves the text unchanged (duplication is
    /// a write-time fault, handled by [`FaultInjector::write_day_files`]).
    pub fn apply(&self, day: Day, text: &str, fault: &Fault) -> Option<String> {
        let ids = [day.0 as u64];
        match *fault {
            Fault::DropDay => None,
            Fault::DuplicateDay => Some(text.to_string()),
            Fault::CorruptLines { count } => {
                let mut lines: Vec<String> = text.lines().map(String::from).collect();
                let data: Vec<usize> = lines
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| !l.starts_with('#') && !l.is_empty())
                    .map(|(i, _)| i)
                    .collect();
                if data.is_empty() {
                    return Some(text.to_string());
                }
                for k in 0..count {
                    let victim = data
                        [(self.ent.u64(b"flct", &[ids[0], k as u64]) % data.len() as u64) as usize];
                    // Alternate between an unparseable address and an
                    // unparseable hits column, so both error paths fire.
                    lines[victim] = if k % 2 == 0 {
                        format!("zz:not:an:addr:{k}\t7\tcorrupt")
                    } else {
                        let addr = lines[victim].split('\t').next().unwrap_or("::1");
                        format!("{addr}\tbanana\tcorrupt")
                    };
                }
                Some(lines.join("\n") + "\n")
            }
            Fault::Truncate { keep_pct } => {
                let lines: Vec<&str> = text.lines().collect();
                // Header lines stay; keep ~keep_pct% of data lines and
                // cut the last survivor mid-line (no trailing newline,
                // no trailer) — the signature of a killed writer.
                let header: Vec<&str> = lines
                    .iter()
                    .take_while(|l| l.starts_with('#'))
                    .copied()
                    .collect();
                let data: Vec<&str> = lines[header.len()..]
                    .iter()
                    .filter(|l| !l.starts_with('#'))
                    .copied()
                    .collect();
                let keep = (data.len() * keep_pct.min(100) as usize / 100).max(1);
                let mut out = header.join("\n") + "\n";
                for l in &data[..keep.saturating_sub(1)] {
                    out.push_str(l);
                    out.push('\n');
                }
                if let Some(last) = data.get(keep.saturating_sub(1)) {
                    let cut =
                        1 + (self.ent.u64(b"fltr", &ids) % last.len().max(2) as u64 / 2) as usize;
                    out.push_str(&last[..cut.min(last.len())]);
                }
                Some(out)
            }
            Fault::ShiftHeaderDay { offset } => {
                let shifted = day + offset;
                let mut out = String::with_capacity(text.len());
                for (i, line) in text.lines().enumerate() {
                    if i == 0 {
                        out.push_str(&line.replace(&day.to_string(), &shifted.to_string()));
                    } else {
                        out.push_str(line);
                    }
                    out.push('\n');
                }
                Some(out)
            }
        }
    }

    /// Generates and writes day-log files for `first..=last` under `dir`,
    /// applying the faults in `spec`. Returns the manifest of applied
    /// faults. Clean days serialize via [`DayLog::to_text`].
    pub fn write_day_files(
        &self,
        world: &World,
        first: Day,
        last: Day,
        dir: &Path,
        spec: &FaultSpec,
    ) -> io::Result<FaultManifest> {
        std::fs::create_dir_all(dir)?;
        let mut manifest = FaultManifest::default();
        for day in first.range_inclusive(last) {
            let mut text = Some(world.day_log(day).to_text());
            let mut duplicate = false;
            for fault in spec.for_day(day) {
                if *fault == Fault::DuplicateDay {
                    duplicate = true;
                }
                let next = match &text {
                    Some(t) => self.apply(day, t, fault),
                    None => None,
                };
                manifest.applied.push(AppliedFault {
                    day,
                    fault: *fault,
                    path: next.is_some().then(|| dir.join(day_file_name(day))),
                });
                text = next;
            }
            if let Some(t) = text {
                std::fs::write(dir.join(day_file_name(day)), &t)?;
                if duplicate {
                    std::fs::write(dir.join(format!("{day}.dup.log")), &t)?;
                }
            }
        }
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{epochs, WorldConfig};

    fn log() -> DayLog {
        World::standard(WorldConfig {
            seed: 3,
            scale: 0.002,
        })
        .day_log(epochs::mar2015())
    }

    #[test]
    fn serialization_has_header_and_trailer() {
        let l = log();
        let text = l.to_text();
        assert!(text.starts_with(&format!("# synthetic day {}: {}", l.day, l.len())));
        let last = text.lines().last().unwrap();
        let hits: u64 = l.entries.iter().map(|e| e.hits).sum();
        assert_eq!(last, format!("# end {} {hits}", l.len()));
        let data = text.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(data, l.len());
    }

    #[test]
    fn corrupt_lines_damages_exactly_the_budget() {
        let l = log();
        let inj = FaultInjector::new(9);
        let out = inj
            .apply(l.day, &l.to_text(), &Fault::CorruptLines { count: 5 })
            .unwrap();
        let bad = out
            .lines()
            .filter(|line| !line.starts_with('#'))
            .filter(|line| {
                let mut cols = line.split('\t');
                let addr_bad = cols
                    .next()
                    .map(|a| a.parse::<v6census_addr::Addr>().is_err())
                    .unwrap_or(true);
                let hits_bad = cols
                    .next()
                    .map(|h| h.parse::<u64>().is_err())
                    .unwrap_or(true);
                addr_bad || hits_bad
            })
            .count();
        assert!((1..=5).contains(&bad), "{bad} damaged lines");
        // Determinism: same seed, same damage.
        let again = inj
            .apply(l.day, &l.to_text(), &Fault::CorruptLines { count: 5 })
            .unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn truncate_drops_trailer_and_cuts_midline() {
        let l = log();
        let inj = FaultInjector::new(9);
        let out = inj
            .apply(l.day, &l.to_text(), &Fault::Truncate { keep_pct: 50 })
            .unwrap();
        assert!(!out.contains("# end"), "trailer must be gone");
        assert!(!out.ends_with('\n'), "must cut mid-line");
        let kept = out.lines().filter(|l| !l.starts_with('#')).count();
        assert!(kept < l.len(), "{kept} of {}", l.len());
    }

    #[test]
    fn shift_header_day_rewrites_only_the_header() {
        let l = log();
        let inj = FaultInjector::new(9);
        let out = inj
            .apply(l.day, &l.to_text(), &Fault::ShiftHeaderDay { offset: -1 })
            .unwrap();
        let header = out.lines().next().unwrap();
        assert!(header.contains(&(l.day - 1).to_string()), "{header}");
        assert_eq!(
            out.lines().filter(|l| !l.starts_with('#')).count(),
            l.len(),
            "data must be intact"
        );
    }

    #[test]
    fn write_day_files_honours_the_spec() {
        let dir = std::env::temp_dir().join(format!(
            "v6census-faults-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let w = World::standard(WorldConfig {
            seed: 3,
            scale: 0.002,
        });
        let d0 = epochs::mar2015();
        let spec = FaultSpec {
            faults: vec![
                (d0 + 1, Fault::DropDay),
                (d0 + 2, Fault::DuplicateDay),
                (d0 + 3, Fault::Truncate { keep_pct: 40 }),
            ],
        };
        let manifest = FaultInjector::new(5)
            .write_day_files(&w, d0, d0 + 4, &dir, &spec)
            .unwrap();
        assert_eq!(manifest.applied.len(), 3);
        assert!(dir.join(day_file_name(d0)).exists());
        assert!(!dir.join(day_file_name(d0 + 1)).exists(), "dropped");
        assert!(
            dir.join(format!("{}.dup.log", d0 + 2)).exists(),
            "duplicated"
        );
        assert!(manifest.summary().contains("drop-day"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
