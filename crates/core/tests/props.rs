//! Property-based tests for the classifiers' invariants.
//!
//! Cases are driven by a deterministic splitmix64 stream (no external
//! property-testing crate), so the workspace builds offline. Failure
//! messages carry the case index, which reproduces the input.

use v6census_addr::Addr;
use v6census_core::spatial::{BoxStats, Ccdf, DensityClass, MraCurve, MraResolution};
use v6census_core::temporal::{DailyObservations, Day, StabilityParams};
use v6census_trie::AddrSet;

const CASES: u64 = 120;

/// Deterministic case generator: a splitmix64 stream.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x6a09_e667_f3bc_c909)
    }

    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n >= 1);
        ((self.u64() as u128 * n as u128) >> 64) as u64
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Clustered addresses: realistic populations share prefixes, so
    /// bias toward a handful of /64-ish bases with small offsets.
    fn clustered_addrs(&mut self) -> Vec<Addr> {
        const BASES: [u64; 3] = [
            0x2001_0db8_0000_0000,
            0x2001_0db8_0000_0001,
            0x2a00_8000_1234_0000,
        ];
        let n = self.range(1, 150) as usize;
        (0..n)
            .map(|_| {
                let hi = BASES[self.below(3) as usize];
                let lo = self.below(0x1_0000);
                Addr(((hi as u128) << 64) | lo as u128)
            })
            .collect()
    }

    /// A small random observation history: day offset → address indices.
    fn history(&mut self) -> Vec<(i32, Vec<u8>)> {
        let days = self.range(1, 12) as usize;
        (0..days)
            .map(|_| {
                let off = self.below(15) as i32;
                let members = (0..self.below(20)).map(|_| self.u64() as u8).collect();
                (off, members)
            })
            .collect()
    }
}

fn store(history: &[(i32, Vec<u8>)]) -> (DailyObservations, Day) {
    let base = Day::from_ymd(2015, 3, 10);
    let mut obs = DailyObservations::new();
    for (off, members) in history {
        obs.record(
            base + *off,
            AddrSet::from_iter(members.iter().map(|&m| Addr(0x2001_0000 + m as u128))),
        );
    }
    (obs, base + 7)
}

#[test]
fn mra_product_identity() {
    let mut g = Gen::new(21);
    for case in 0..CASES {
        let set = AddrSet::from_iter(g.clustered_addrs());
        let mra = MraCurve::of(&set);
        for res in [
            MraResolution::SingleBit,
            MraResolution::Nybble,
            MraResolution::Byte,
            MraResolution::Segment16,
        ] {
            let product: f64 = mra.curve(res).iter().map(|&(_, r)| r).product();
            let relative = (product - set.len() as f64).abs() / set.len() as f64;
            assert!(
                relative < 1e-9,
                "case {case} {}: ∏γ = {product}",
                res.label()
            );
        }
    }
}

#[test]
fn mra_ratio_ranges() {
    let mut g = Gen::new(22);
    for case in 0..CASES {
        let set = AddrSet::from_iter(g.clustered_addrs());
        let p = g.below(113) as u8;
        let mra = MraCurve::of(&set);
        for res in [
            MraResolution::SingleBit,
            MraResolution::Nybble,
            MraResolution::Segment16,
        ] {
            if p + res.k() <= 128 {
                let r = mra.ratio(p, res);
                assert!(
                    (1.0..=(1u64 << res.k()) as f64).contains(&r),
                    "case {case}: γ^{} at /{p} = {r}",
                    res.k()
                );
            }
        }
    }
}

#[test]
fn stability_antitone_in_n() {
    let mut g = Gen::new(23);
    for case in 0..CASES {
        let (obs, reference) = store(&g.history());
        let mut prev: Option<AddrSet> = None;
        for n in 1u32..=6 {
            let cur = obs.stable_on(reference, &StabilityParams::nd(n));
            if let Some(p) = &prev {
                assert_eq!(
                    cur.intersection_len(p),
                    cur.len(),
                    "case {case}: {n}d-stable must be ⊆ {}d-stable",
                    n - 1
                );
            }
            prev = Some(cur);
        }
    }
}

#[test]
fn stability_monotone_in_window() {
    let mut g = Gen::new(24);
    for case in 0..CASES {
        let (obs, reference) = store(&g.history());
        let mut prev: Option<AddrSet> = None;
        for reach in [3u32, 5, 7, 10] {
            let cur = obs.stable_on(reference, &StabilityParams::nd(3).with_window(reach, reach));
            if let Some(p) = &prev {
                assert_eq!(
                    p.intersection_len(&cur),
                    p.len(),
                    "case {case} reach {reach}"
                );
            }
            prev = Some(cur);
        }
    }
}

#[test]
fn stability_antitone_in_slew() {
    let mut g = Gen::new(25);
    for case in 0..CASES {
        let (obs, reference) = store(&g.history());
        let base = obs.stable_on(reference, &StabilityParams::nd(2));
        for slew in 1u32..=3 {
            let cur = obs.stable_on(reference, &StabilityParams::nd(2).with_slew(slew));
            assert_eq!(
                cur.intersection_len(&base),
                cur.len(),
                "case {case} slew {slew}"
            );
        }
    }
}

#[test]
fn stability_partitions() {
    let mut g = Gen::new(26);
    for case in 0..CASES {
        let (obs, reference) = store(&g.history());
        let params = StabilityParams::three_day();
        let stable = obs.stable_on(reference, &params);
        let not = obs.not_stable_on(reference, &params);
        let active = obs.on(reference);
        assert_eq!(stable.len() + not.len(), active.len(), "case {case}");
        assert_eq!(stable.intersection_len(&not), 0, "case {case}");
        assert_eq!(stable.union(&not).len(), active.len(), "case {case}");
        assert_eq!(
            stable.intersection_len(&active),
            stable.len(),
            "case {case}"
        );
    }
}

#[test]
fn prefix_stability_dominates() {
    let mut g = Gen::new(27);
    for case in 0..CASES {
        let (obs, reference) = store(&g.history());
        let params = StabilityParams::three_day();
        let stable = obs.stable_on(reference, &params);
        let stable64 = obs.prefix_view(64).stable_on(reference, &params);
        for a in stable.iter() {
            assert!(stable64.contains(a.mask(64)), "case {case}: {a}");
        }
    }
}

#[test]
fn ccdf_laws() {
    let mut g = Gen::new(28);
    for case in 0..CASES {
        let n = g.range(1, 200) as usize;
        let samples: Vec<u64> = (0..n).map(|_| g.below(5_000)).collect();
        let c = Ccdf::new(samples.clone());
        let min = *samples.iter().min().unwrap();
        assert!((c.proportion_ge(min) - 1.0).abs() < 1e-12, "case {case}");
        assert_eq!(c.proportion_ge(c.max() + 1), 0.0, "case {case}");
        let steps = c.steps();
        for w in steps.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 > w[1].1, "case {case}");
        }
        for &(x, prop_at) in &steps {
            assert!((c.proportion_ge(x) - prop_at).abs() < 1e-12, "case {case}");
        }
    }
}

#[test]
fn box_stats_ordered() {
    let mut g = Gen::new(29);
    for case in 0..CASES {
        let n = g.range(1, 120) as usize;
        let samples: Vec<f64> = (0..n).map(|_| g.below(1_000_000) as f64).collect();
        let b = BoxStats::of(&samples).unwrap();
        assert!(
            b.min <= b.p5 && b.p5 <= b.p25 && b.p25 <= b.median,
            "case {case}"
        );
        assert!(
            b.median <= b.p75 && b.p75 <= b.p95 && b.p95 <= b.max,
            "case {case}"
        );
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(b.min, lo, "case {case}");
        assert_eq!(b.max, hi, "case {case}");
        assert_eq!(b.count, samples.len(), "case {case}");
    }
}

#[test]
fn density_report_consistency() {
    let mut g = Gen::new(30);
    for case in 0..CASES {
        let set = AddrSet::from_iter(g.clustered_addrs());
        let n = g.range(1, 4);
        let p = g.range(96, 125) as u8;
        let class = DensityClass::new(n, p);
        let report = class.report(&set);
        let dense_addrs = class.dense_addresses(&set);
        assert_eq!(
            dense_addrs.len() as u64,
            report.covered_addresses,
            "case {case}"
        );
        let prefixes = class.dense_prefixes(&set);
        assert_eq!(prefixes.len(), report.dense_prefixes, "case {case}");
        for a in dense_addrs.iter() {
            assert!(
                prefixes.iter().any(|d| d.prefix.contains_addr(a)),
                "case {case}: {a}"
            );
        }
        for d in &prefixes {
            for a in set.iter().filter(|&a| d.prefix.contains_addr(a)) {
                assert!(dense_addrs.contains(a), "case {case}: {a}");
            }
        }
    }
}
