//! Property-based tests for the classifiers' invariants.

use proptest::prelude::*;
use v6census_core::spatial::{BoxStats, Ccdf, DensityClass, MraCurve, MraResolution};
use v6census_core::temporal::{DailyObservations, Day, StabilityParams};
use v6census_trie::AddrSet;
use v6census_addr::Addr;

fn clustered_addrs() -> impl Strategy<Value = Vec<Addr>> {
    let base = prop_oneof![
        Just(0x2001_0db8_0000_0000u64),
        Just(0x2001_0db8_0000_0001u64),
        Just(0x2a00_8000_1234_0000u64),
    ];
    prop::collection::vec(
        (base, 0u64..0x1_0000).prop_map(|(hi, lo)| Addr(((hi as u128) << 64) | lo as u128)),
        1..150,
    )
}

/// A small random observation history: day offset → address indices.
fn histories() -> impl Strategy<Value = Vec<(i32, Vec<u8>)>> {
    prop::collection::vec(
        (0i32..15, prop::collection::vec(any::<u8>(), 0..20)),
        1..12,
    )
}

fn store(history: &[(i32, Vec<u8>)]) -> (DailyObservations, Day) {
    let base = Day::from_ymd(2015, 3, 10);
    let mut obs = DailyObservations::new();
    for (off, members) in history {
        obs.record(
            base + *off,
            AddrSet::from_iter(members.iter().map(|&m| Addr(0x2001_0000 + m as u128))),
        );
    }
    (obs, base + 7)
}

proptest! {
    /// The §5.2.1 identity: the product of γ^k over a full curve is N,
    /// at every resolution.
    #[test]
    fn mra_product_identity(addrs in clustered_addrs()) {
        let set = AddrSet::from_iter(addrs.iter().copied());
        let mra = MraCurve::of(&set);
        for res in [
            MraResolution::SingleBit,
            MraResolution::Nybble,
            MraResolution::Byte,
            MraResolution::Segment16,
        ] {
            let product: f64 = mra.curve(res).iter().map(|&(_, r)| r).product();
            let relative = (product - set.len() as f64).abs() / set.len() as f64;
            prop_assert!(relative < 1e-9, "{}: ∏γ = {product}", res.label());
        }
    }

    /// γ ranges: 1 ≤ γ^k ≤ 2^k.
    #[test]
    fn mra_ratio_ranges(addrs in clustered_addrs(), p in 0u8..=112) {
        let set = AddrSet::from_iter(addrs.iter().copied());
        let mra = MraCurve::of(&set);
        for res in [MraResolution::SingleBit, MraResolution::Nybble, MraResolution::Segment16] {
            if p + res.k() <= 128 {
                let r = mra.ratio(p, res);
                prop_assert!(r >= 1.0 && r <= (1u64 << res.k()) as f64);
            }
        }
    }

    /// nd-stable is antitone in n: larger n ⇒ subset.
    #[test]
    fn stability_antitone_in_n(history in histories()) {
        let (obs, reference) = store(&history);
        let mut prev: Option<AddrSet> = None;
        for n in 1u32..=6 {
            let cur = obs.stable_on(reference, &StabilityParams::nd(n));
            if let Some(p) = &prev {
                prop_assert_eq!(
                    cur.intersection_len(p),
                    cur.len(),
                    "{}d-stable must be ⊆ {}d-stable", n, n - 1
                );
            }
            prev = Some(cur);
        }
    }

    /// nd-stable is monotone in window reach: wider window ⇒ superset.
    #[test]
    fn stability_monotone_in_window(history in histories()) {
        let (obs, reference) = store(&history);
        let mut prev: Option<AddrSet> = None;
        for reach in [3u32, 5, 7, 10] {
            let cur = obs.stable_on(
                reference,
                &StabilityParams::nd(3).with_window(reach, reach),
            );
            if let Some(p) = &prev {
                prop_assert_eq!(p.intersection_len(&cur), p.len());
            }
            prev = Some(cur);
        }
    }

    /// Slew tolerance is antitone: more slew ⇒ subset.
    #[test]
    fn stability_antitone_in_slew(history in histories()) {
        let (obs, reference) = store(&history);
        let base = obs.stable_on(reference, &StabilityParams::nd(2));
        for slew in 1u32..=3 {
            let cur = obs.stable_on(reference, &StabilityParams::nd(2).with_slew(slew));
            prop_assert_eq!(cur.intersection_len(&base), cur.len());
        }
    }

    /// stable ∪ not-stable partitions the reference day's actives.
    #[test]
    fn stability_partitions(history in histories()) {
        let (obs, reference) = store(&history);
        let params = StabilityParams::three_day();
        let stable = obs.stable_on(reference, &params);
        let not = obs.not_stable_on(reference, &params);
        let active = obs.on(reference);
        prop_assert_eq!(stable.len() + not.len(), active.len());
        prop_assert_eq!(stable.intersection_len(&not), 0);
        prop_assert_eq!(stable.union(&not).len(), active.len());
        // Stability never exceeds what epoch-style intersection allows:
        // every stable address is active on the reference day.
        prop_assert_eq!(stable.intersection_len(&active), stable.len());
    }

    /// Prefix-level stability dominates address stability: if an address
    /// is stable, its /64 is stable.
    #[test]
    fn prefix_stability_dominates(history in histories()) {
        let (obs, reference) = store(&history);
        let params = StabilityParams::three_day();
        let stable = obs.stable_on(reference, &params);
        let stable64 = obs.prefix_view(64).stable_on(reference, &params);
        for a in stable.iter() {
            prop_assert!(stable64.contains(a.mask(64)));
        }
    }

    /// CCDF: proportion_ge is antitone, 1.0 at the minimum, and
    /// step points reproduce proportion_ge.
    #[test]
    fn ccdf_laws(samples in prop::collection::vec(0u64..5_000, 1..200)) {
        let c = Ccdf::new(samples.clone());
        let min = *samples.iter().min().unwrap();
        prop_assert!((c.proportion_ge(min) - 1.0).abs() < 1e-12);
        prop_assert_eq!(c.proportion_ge(c.max() + 1), 0.0);
        let steps = c.steps();
        for w in steps.windows(2) {
            prop_assert!(w[0].0 < w[1].0 && w[0].1 > w[1].1);
        }
        for &(x, prop_at) in &steps {
            prop_assert!((c.proportion_ge(x) - prop_at).abs() < 1e-12);
        }
    }

    /// BoxStats percentiles are ordered and bounded by the data.
    #[test]
    fn box_stats_ordered(samples in prop::collection::vec(0.0f64..1e6, 1..120)) {
        let b = BoxStats::of(&samples).unwrap();
        prop_assert!(b.min <= b.p5 && b.p5 <= b.p25 && b.p25 <= b.median);
        prop_assert!(b.median <= b.p75 && b.p75 <= b.p95 && b.p95 <= b.max);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(b.min, lo);
        prop_assert_eq!(b.max, hi);
        prop_assert_eq!(b.count, samples.len());
    }

    /// Density reports: dense addresses are exactly the members of dense
    /// prefixes, and counts tally.
    #[test]
    fn density_report_consistency(addrs in clustered_addrs(), n in 1u64..4, p in 96u8..=124) {
        let set = AddrSet::from_iter(addrs.iter().copied());
        let class = DensityClass::new(n, p);
        let report = class.report(&set);
        let dense_addrs = class.dense_addresses(&set);
        prop_assert_eq!(dense_addrs.len() as u64, report.covered_addresses);
        let prefixes = class.dense_prefixes(&set);
        prop_assert_eq!(prefixes.len(), report.dense_prefixes);
        for a in dense_addrs.iter() {
            prop_assert!(prefixes.iter().any(|d| d.prefix.contains_addr(a)));
        }
        // Every member of a dense prefix is in dense_addresses.
        for d in &prefixes {
            for a in set.iter().filter(|&a| d.prefix.contains_addr(a)) {
                prop_assert!(dense_addrs.contains(a));
            }
        }
    }
}
