//! The result-quality lattice used by the supervised analysis engine.
//!
//! Every table, figure, or verdict a run emits is annotated with how it
//! was obtained, so a reader can always tell whether a number came from a
//! clean computation or from a run that had to shed work:
//!
//! * [`Quality::Exact`] — computed from complete inputs with no budget
//!   or deadline intervention.
//! * [`Quality::Degraded`] — the value is *correct for a coarser
//!   question* than asked: a densify that hit its node budget and
//!   aggregated to a coarser level, a stability window that had to widen
//!   around ingestion gaps.
//! * [`Quality::Partial`] — some inputs are missing entirely: a shard
//!   was excluded after panicking, a stage timed out, window days were
//!   never ingested.
//!
//! The lattice is ordered `Exact ≥ Degraded ≥ Partial`; combining
//! qualities takes the worst ([`Quality::meet`]), so a roll-up over many
//! products is `Exact` only when every contributor is.

use std::fmt;

/// How trustworthy a computed result is. See the module docs for the
/// lattice semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Quality {
    /// Complete inputs, no budget or deadline intervention.
    #[default]
    Exact,
    /// Correct for a coarser question (budget-capped aggregation,
    /// widened window); nothing was dropped.
    Degraded,
    /// Some inputs are missing (excluded shard, timeout, uncovered
    /// days); the value is a lower bound on what a clean run would see.
    Partial,
}

impl Quality {
    /// A stable short label, used in manifests and tests.
    pub const fn label(self) -> &'static str {
        match self {
            Quality::Exact => "exact",
            Quality::Degraded => "degraded",
            Quality::Partial => "partial",
        }
    }

    /// Lattice meet: the worst of the two qualities. `Ord` is derived
    /// with `Exact < Degraded < Partial`, so "worst" is `max`.
    #[must_use]
    pub fn meet(self, other: Quality) -> Quality {
        self.max(other)
    }

    /// The worst quality in an iterator; `Exact` when empty.
    pub fn meet_all(qualities: impl IntoIterator<Item = Quality>) -> Quality {
        qualities
            .into_iter()
            .fold(Quality::Exact, |acc, q| acc.meet(q))
    }

    /// True when downstream consumers need no caveat.
    pub const fn is_exact(self) -> bool {
        matches!(self, Quality::Exact)
    }
}

impl fmt::Display for Quality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A value carrying its [`Quality`] and the human-readable reasons for
/// any downgrade — the shape every supervised analysis product takes.
#[derive(Clone, Debug)]
pub struct Annotated<T> {
    /// The computed value.
    pub value: T,
    /// How it was obtained.
    pub quality: Quality,
    /// Why it is not `Exact` (empty for exact results).
    pub notes: Vec<String>,
}

impl<T> Annotated<T> {
    /// An exact value with no caveats.
    pub fn exact(value: T) -> Annotated<T> {
        Annotated {
            value,
            quality: Quality::Exact,
            notes: Vec::new(),
        }
    }

    /// A value downgraded to `quality` for the given reason.
    pub fn downgraded(value: T, quality: Quality, note: impl Into<String>) -> Annotated<T> {
        Annotated {
            value,
            quality,
            notes: vec![note.into()],
        }
    }

    /// Downgrades in place: quality meets `quality`, the note is kept.
    pub fn note(&mut self, quality: Quality, note: impl Into<String>) {
        self.quality = self.quality.meet(quality);
        let note = note.into();
        if !note.is_empty() {
            self.notes.push(note);
        }
    }

    /// Maps the value, preserving the annotation.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Annotated<U> {
        Annotated {
            value: f(self.value),
            quality: self.quality,
            notes: self.notes,
        }
    }

    /// The `[quality]` suffix rendered next to a table or figure title:
    /// empty for exact results, `" [degraded: reason; reason]"` otherwise.
    pub fn caveat(&self) -> String {
        if self.quality.is_exact() {
            String::new()
        } else if self.notes.is_empty() {
            format!(" [{}]", self.quality)
        } else {
            format!(" [{}: {}]", self.quality, self.notes.join("; "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_order_and_meet() {
        assert!(Quality::Exact < Quality::Degraded);
        assert!(Quality::Degraded < Quality::Partial);
        assert_eq!(Quality::Exact.meet(Quality::Degraded), Quality::Degraded);
        assert_eq!(Quality::Partial.meet(Quality::Degraded), Quality::Partial);
        assert_eq!(Quality::meet_all([]), Quality::Exact);
        assert_eq!(
            Quality::meet_all([Quality::Exact, Quality::Degraded, Quality::Exact]),
            Quality::Degraded
        );
        assert!(Quality::Exact.is_exact());
        assert!(!Quality::Partial.is_exact());
        assert_eq!(Quality::Degraded.to_string(), "degraded");
    }

    #[test]
    fn annotation_accumulates_downgrades() {
        let mut a = Annotated::exact(42);
        assert_eq!(a.caveat(), "");
        a.note(Quality::Degraded, "trie node budget hit");
        a.note(Quality::Partial, "shard s-3 excluded");
        assert_eq!(a.quality, Quality::Partial);
        assert_eq!(
            a.caveat(),
            " [partial: trie node budget hit; shard s-3 excluded]"
        );
        let b = a.map(|v| v * 2);
        assert_eq!(b.value, 84);
        assert_eq!(b.quality, Quality::Partial);
        assert_eq!(
            Annotated::downgraded((), Quality::Degraded, "capped").caveat(),
            " [degraded: capped]"
        );
    }
}
