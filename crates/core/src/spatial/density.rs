//! Prefix-density classes (`n@/p-dense`) and the Table 3 style density
//! report (§5.2.2–§5.2.3, §6.2.2).

use std::fmt;
use v6census_trie::{dense_prefixes_at, AddrSet, DensePrefix};

/// A density class `n@/p-dense`: prefixes of length `p` containing at
/// least `n` observed addresses, and the addresses therein.
///
/// Densities are restricted to the form n/2^(128−p) so that all the
/// arithmetic stays in integers — the paper's explicit design choice
/// ("a simpler solution that does not require base-10 math with large
/// numbers").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DensityClass {
    /// Minimum observed addresses for a block to be dense.
    pub n: u64,
    /// The block length in bits.
    pub p: u8,
}

impl DensityClass {
    /// Creates a density class.
    ///
    /// # Panics
    /// Panics if `n == 0` or `p > 128`.
    pub const fn new(n: u64, p: u8) -> DensityClass {
        assert!(n >= 1, "density numerator must be at least 1");
        assert!(p <= 128, "prefix length out of range");
        DensityClass { n, p }
    }

    /// The minimum density as a fraction.
    pub fn min_density(&self) -> f64 {
        if self.p == 0 {
            // n / 2^128 underflows f64 precision concerns not at play here.
            self.n as f64 / 2f64.powi(128)
        } else {
            self.n as f64 / (1u128 << (128 - self.p as u32)) as f64
        }
    }

    /// The dense prefixes of this class within a set of observed
    /// addresses, via the sorted fast path.
    pub fn dense_prefixes(&self, set: &AddrSet) -> Vec<DensePrefix> {
        dense_prefixes_at(set, self.n, self.p)
    }

    /// Full report for this class over a set (one Table 3 row).
    pub fn report(&self, set: &AddrSet) -> DensityReport {
        DensityReport::compute(*self, set)
    }

    /// The addresses of the set contained in this class's dense prefixes
    /// — the spatial *address* classification of §5.2 ("It is also the
    /// class of those addresses contained therein").
    pub fn dense_addresses(&self, set: &AddrSet) -> AddrSet {
        let dense = self.dense_prefixes(set);
        let mut di = dense.iter().peekable();
        // At most every address is dense-contained.
        let mut out = Vec::with_capacity(set.len());
        for a in set.iter() {
            while let Some(d) = di.peek() {
                if d.prefix.last_addr() < a {
                    di.next();
                } else {
                    break;
                }
            }
            if let Some(d) = di.peek() {
                if d.prefix.contains_addr(a) {
                    out.push(a);
                }
            }
        }
        AddrSet::from_iter(out)
    }
}

impl fmt::Display for DensityClass {
    /// The paper's notation, e.g. `2@/112-dense`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@/{}-dense", self.n, self.p)
    }
}

/// Error parsing a [`DensityClass`] from its `n@/p[-dense]` notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DensityClassParseError;

impl fmt::Display for DensityClassParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected density class like `2@/112` or `3@/120-dense`")
    }
}

impl std::error::Error for DensityClassParseError {}

impl std::str::FromStr for DensityClass {
    type Err = DensityClassParseError;

    /// Parses the paper's notation: `2@/112`, `2@/112-dense`.
    fn from_str(s: &str) -> Result<DensityClass, DensityClassParseError> {
        let s = s.strip_suffix("-dense").unwrap_or(s);
        let (n_s, p_s) = s.split_once("@/").ok_or(DensityClassParseError)?;
        let n: u64 = n_s.parse().map_err(|_| DensityClassParseError)?;
        let p: u8 = p_s.parse().map_err(|_| DensityClassParseError)?;
        if n == 0 || p > 128 {
            return Err(DensityClassParseError);
        }
        Ok(DensityClass::new(n, p))
    }
}

/// One row of Table 3: the outcome of applying a density class to an
/// observed address set.
#[derive(Clone, Debug)]
pub struct DensityReport {
    /// The class applied.
    pub class: DensityClass,
    /// Number of dense prefixes found.
    pub dense_prefixes: usize,
    /// Observed addresses covered by the dense prefixes.
    pub covered_addresses: u64,
    /// Total addresses the dense prefixes span (possible probe targets).
    pub possible_addresses: u128,
}

impl DensityReport {
    /// Computes the report for a class over a set.
    pub fn compute(class: DensityClass, set: &AddrSet) -> DensityReport {
        let dense = class.dense_prefixes(set);
        let covered: u64 = dense.iter().map(|d| d.count).sum();
        let possible: u128 = dense
            .iter()
            .map(|d| d.possible().unwrap_or(u128::MAX))
            .sum();
        DensityReport {
            class,
            dense_prefixes: dense.len(),
            covered_addresses: covered,
            possible_addresses: possible,
        }
    }

    /// The "Address Density" column: covered / possible.
    pub fn density(&self) -> f64 {
        if self.possible_addresses == 0 {
            0.0
        } else {
            self.covered_addresses as f64 / self.possible_addresses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_addr::Addr;

    fn set(addrs: &[&str]) -> AddrSet {
        AddrSet::from_iter(addrs.iter().map(|s| s.parse::<Addr>().unwrap()))
    }

    #[test]
    fn paper_notation() {
        assert_eq!(DensityClass::new(2, 112).to_string(), "2@/112-dense");
        assert_eq!(DensityClass::new(64, 112).to_string(), "64@/112-dense");
    }

    #[test]
    fn parse_notation() {
        assert_eq!(
            "2@/112".parse::<DensityClass>().unwrap(),
            DensityClass::new(2, 112)
        );
        assert_eq!(
            "3@/120-dense".parse::<DensityClass>().unwrap(),
            DensityClass::new(3, 120)
        );
        for bad in ["", "2/112", "0@/112", "2@/129", "x@/112", "2@/y"] {
            assert!(bad.parse::<DensityClass>().is_err(), "accepted {bad:?}");
        }
        // Display → parse roundtrip.
        let c = DensityClass::new(16, 96);
        assert_eq!(c.to_string().parse::<DensityClass>().unwrap(), c);
    }

    #[test]
    fn report_columns_match_hand_count() {
        // Two addrs in one /112, one elsewhere.
        let s = set(&["2001:db8::1", "2001:db8::4", "2400::1"]);
        let r = DensityClass::new(2, 112).report(&s);
        assert_eq!(r.dense_prefixes, 1);
        assert_eq!(r.covered_addresses, 2);
        assert_eq!(r.possible_addresses, 65536);
        assert!((r.density() - 2.0 / 65536.0).abs() < 1e-15);
    }

    #[test]
    fn dense_addresses_classification() {
        let s = set(&["2001:db8::1", "2001:db8::4", "2400::1"]);
        let c = DensityClass::new(2, 112);
        let dense = c.dense_addresses(&s);
        assert_eq!(dense.len(), 2);
        assert!(dense.contains("2001:db8::1".parse().unwrap()));
        assert!(dense.contains("2001:db8::4".parse().unwrap()));
        assert!(!dense.contains("2400::1".parse().unwrap()));
    }

    #[test]
    fn min_density_fraction() {
        let c = DensityClass::new(2, 112);
        assert!((c.min_density() - 2.0 / 65536.0).abs() < 1e-15);
        let tight = DensityClass::new(3, 120);
        assert!((tight.min_density() - 3.0 / 256.0).abs() < 1e-15);
    }

    #[test]
    fn monotonicity_in_n() {
        // More demanding n ⇒ fewer (or equal) dense prefixes.
        let mut addrs = Vec::new();
        for b in 0..8u128 {
            for i in 0..(b + 1) {
                addrs.push(Addr((0x2001_0db8_0000_0000u128 << 64) | (b << 16) | i));
            }
        }
        let s = AddrSet::from_iter(addrs);
        let mut last = usize::MAX;
        for n in 1..=9u64 {
            let cnt = DensityClass::new(n, 112).dense_prefixes(&s).len();
            assert!(cnt <= last, "n={n}: {cnt} > {last}");
            last = cnt;
        }
        assert_eq!(DensityClass::new(9, 112).dense_prefixes(&s).len(), 0);
    }

    #[test]
    fn empty_set_report() {
        let r = DensityClass::new(2, 112).report(&AddrSet::new());
        assert_eq!(r.dense_prefixes, 0);
        assert_eq!(r.covered_addresses, 0);
        assert_eq!(r.possible_addresses, 0);
        assert_eq!(r.density(), 0.0);
    }
}
