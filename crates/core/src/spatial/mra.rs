//! Multi-Resolution Aggregate (MRA) count ratios and plot curves
//! (§5.2.1).
//!
//! Given active aggregate counts `n_p`, the MRA count ratio is
//! γ^k_p = n_{p+k}/n_p with range [1, 2^k]. Plotted against p at several
//! resolutions k simultaneously (16-bit segments, nybbles, single bits),
//! these ratios expose *where in the address* a population of addresses
//! differs — the paper's MRA plot (Figures 2 and 5).

use v6census_trie::{AddrSet, AggregateCounts};

/// The segment resolutions the paper plots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MraResolution {
    /// k = 1: single bits (blue curves in the paper).
    SingleBit,
    /// k = 4: nybbles / hex characters (black curves).
    Nybble,
    /// k = 8: bytes (provided for completeness; the paper mentions k=8 in
    /// the γ definition but does not plot it).
    Byte,
    /// k = 16: colon-delimited 16-bit segments (dashed red curves).
    Segment16,
}

impl MraResolution {
    /// The segment width k in bits.
    pub const fn k(self) -> u8 {
        match self {
            MraResolution::SingleBit => 1,
            MraResolution::Nybble => 4,
            MraResolution::Byte => 8,
            MraResolution::Segment16 => 16,
        }
    }

    /// The paper's plot-legend label.
    pub const fn label(self) -> &'static str {
        match self {
            MraResolution::SingleBit => "single bits",
            MraResolution::Nybble => "4-bit segments",
            MraResolution::Byte => "8-bit segments",
            MraResolution::Segment16 => "16-bit segments",
        }
    }
}

/// The full MRA characterization of one address set: aggregate counts for
/// all prefix lengths, from which any γ^k_p is derived.
#[derive(Clone, Debug)]
pub struct MraCurve {
    counts: AggregateCounts,
}

/// The privacy-extension signature the paper reads off single-bit MRA
/// curves (§5.2.1, Figure 2a): ratios near 2 just after bit 64, a dip to
/// ~1 at the RFC 4941 "u" bit (address bit 70, plotted at 70), and a
/// flat-line at 1 once prefixes isolate single pseudorandom IIDs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrivacySignature {
    /// Mean single-bit ratio over bits 64..68 (≈2 for privacy IIDs when
    /// /64s hold more than a handful of addresses).
    pub iid_head_ratio: f64,
    /// The single-bit ratio at the u bit (γ¹₇₀; ≈1 for privacy IIDs).
    pub u_bit_ratio: f64,
    /// First bit position ≥ 72 where the curve flat-lines at ≤ 1.05.
    pub flatline_at: Option<u8>,
}

impl MraCurve {
    /// Computes the MRA characterization of a set of addresses.
    pub fn of(set: &AddrSet) -> MraCurve {
        MraCurve {
            counts: AggregateCounts::of(set),
        }
    }

    /// Wraps precomputed aggregate counts.
    pub fn from_counts(counts: AggregateCounts) -> MraCurve {
        MraCurve { counts }
    }

    /// The underlying aggregate counts.
    pub fn counts(&self) -> &AggregateCounts {
        &self.counts
    }

    /// Number of addresses in the characterized set.
    pub fn total(&self) -> u64 {
        self.counts.total()
    }

    /// γ^k_p for the given resolution.
    pub fn ratio(&self, p: u8, res: MraResolution) -> f64 {
        self.counts.ratio(p, res.k())
    }

    /// One plot curve: `(p, γ^k_p)` for p = 0, k, 2k, …, 128−k.
    pub fn curve(&self, res: MraResolution) -> Vec<(u8, f64)> {
        self.counts.ratio_curve(res.k())
    }

    /// The length of the longest common prefix of the whole set — the
    /// "known BGP prefix" marker on the paper's plots. For fewer than two
    /// addresses the set trivially shares all 128 bits.
    pub fn common_prefix_len(&self) -> u8 {
        for p in 0..128u8 {
            if self.counts.n(p + 1) > 1 {
                return p;
            }
        }
        128
    }

    /// Detects the privacy-extension signature on the single-bit curve.
    /// Returns measurements; [`PrivacySignature::matches`] applies the
    /// paper's visual criteria as thresholds.
    pub fn privacy_signature(&self) -> PrivacySignature {
        let head: f64 = (64..68).map(|p| self.counts.ratio(p, 1)).sum::<f64>() / 4.0;
        let u_bit_ratio = self.counts.ratio(70, 1);
        let mut flatline_at = None;
        for p in 72..=120u8 {
            // Flat-line: this and the next few ratios all ≈ 1.
            if (p..(p + 8).min(127)).all(|q| self.counts.ratio(q, 1) <= 1.05) {
                flatline_at = Some(p);
                break;
            }
        }
        PrivacySignature {
            iid_head_ratio: head,
            u_bit_ratio,
            flatline_at,
        }
    }

    /// Mass of aggregation in the 112–128 bit segment relative to the
    /// total: log2(n_128/n_112) / log2(n_128/n_0). Near 1 means addresses
    /// differ almost exclusively in their last 16 bits — the
    /// "dense block" prominence of Figure 2b / Figure 5g.
    pub fn tail_prominence(&self) -> f64 {
        let n128 = self.counts.n(128) as f64;
        let n112 = self.counts.n(112) as f64;
        let n0 = self.counts.n(0) as f64;
        if self.counts.total() < 2 {
            return 0.0;
        }
        (n128 / n112).log2() / (n128 / n0).log2()
    }
}

impl PrivacySignature {
    /// True when the measurements match the paper's privacy-extension
    /// signature: elevated IID head ratios (≈2 when /64s hold many
    /// addresses; diluted toward 1 by single-address /64s under
    /// heavy-tailed client activity), the u-bit dip to ~1, and a
    /// flat-line before bit 120.
    pub fn matches(&self) -> bool {
        self.iid_head_ratio >= 1.45 && self.u_bit_ratio <= 1.05 && self.flatline_at.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_addr::Addr;

    /// A deterministic pseudorandom IID with the RFC 4941 u-bit cleared.
    fn privacy_iid(seed: u64) -> u64 {
        // splitmix64 step
        let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        z & !(1 << 57) // clear the u bit (bit 70 of the address)
    }

    fn privacy_population(n: u64, per_64: u64) -> AddrSet {
        let mut addrs = Vec::new();
        for subnet in 0..n / per_64 {
            let net = 0x2001_0db8_0000_0000u64 | subnet;
            for h in 0..per_64 {
                let iid = privacy_iid(subnet * 1_000_003 + h);
                addrs.push(Addr(((net as u128) << 64) | iid as u128));
            }
        }
        AddrSet::from_iter(addrs)
    }

    #[test]
    fn privacy_signature_detected() {
        let set = privacy_population(4096, 64);
        let mra = MraCurve::of(&set);
        let sig = mra.privacy_signature();
        assert!(
            sig.iid_head_ratio > 1.9,
            "head ratio {:.3}",
            sig.iid_head_ratio
        );
        assert!(sig.u_bit_ratio < 1.01, "u-bit ratio {:.3}", sig.u_bit_ratio);
        assert!(sig.flatline_at.is_some());
        assert!(sig.matches());
    }

    #[test]
    fn dense_block_signature_not_privacy() {
        // Tightly packed low IIDs: a university department /64 (Fig 5g).
        let set =
            AddrSet::from_iter((0..100u128).map(|i| Addr((0x2001_0db8_0000_0001u128 << 64) | i)));
        let mra = MraCurve::of(&set);
        assert!(!mra.privacy_signature().matches());
        assert!(
            mra.tail_prominence() > 0.9,
            "prominence {:.3}",
            mra.tail_prominence()
        );
        // All structure within the last 16 bits: γ at 112 (16-bit) = 100.
        assert!((mra.ratio(112, MraResolution::Segment16) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn curve_shapes_and_identity() {
        let set = privacy_population(1024, 8);
        let mra = MraCurve::of(&set);
        for res in [
            MraResolution::SingleBit,
            MraResolution::Nybble,
            MraResolution::Byte,
            MraResolution::Segment16,
        ] {
            let curve = mra.curve(res);
            assert_eq!(curve.len(), 128 / res.k() as usize);
            let product: f64 = curve.iter().map(|&(_, r)| r).product();
            assert!(
                (product - set.len() as f64).abs() / (set.len() as f64) < 1e-9,
                "{}: ∏γ = {product}",
                res.label()
            );
            let max = (1u64 << res.k().min(63)) as f64;
            for &(p, r) in &curve {
                assert!(r >= 1.0 && r <= max, "γ^{}_{p} = {r}", res.k());
            }
        }
    }

    #[test]
    fn common_prefix_marker() {
        let set = AddrSet::from_iter([
            "2001:db8::1".parse::<Addr>().unwrap(),
            "2001:db8::2".parse().unwrap(),
        ]);
        let mra = MraCurve::of(&set);
        assert_eq!(mra.common_prefix_len(), 126);
        let single = AddrSet::from_iter(["2001:db8::1".parse::<Addr>().unwrap()]);
        assert_eq!(MraCurve::of(&single).common_prefix_len(), 128);
    }

    #[test]
    fn resolution_labels() {
        assert_eq!(MraResolution::SingleBit.label(), "single bits");
        assert_eq!(MraResolution::Segment16.k(), 16);
    }
}
