//! Complementary cumulative distribution functions over aggregate
//! populations (§5.2.2, Figure 3) and other count distributions
//! (Figure 5a).

use v6census_trie::{populations, AddrSet};

/// An empirical complementary CDF over non-negative integer counts:
/// `proportion(x)` = fraction of samples ≥ x.
///
/// Both Figure 3 (addresses or /64s per aggregate) and Figure 5a (actives
/// per ASN) are CCDFs of count samples; this type computes and serves
/// them, and emits the `(x, proportion)` step points for plotting.
#[derive(Clone, Debug, PartialEq)]
pub struct Ccdf {
    /// The samples, ascending.
    sorted: Vec<u64>,
}

impl Ccdf {
    /// Builds a CCDF from count samples.
    pub fn new(mut samples: Vec<u64>) -> Ccdf {
        samples.sort_unstable();
        Ccdf { sorted: samples }
    }

    /// The CCDF of per-aggregate populations: how many of the set's
    /// addresses fall in each active /p block (Figure 3's
    /// "p-agg. of IPv6 addrs" curves; feed a /64-mapped set for the
    /// "p-agg. of /64s" curves).
    pub fn of_aggregate_populations(set: &AddrSet, p: u8) -> Ccdf {
        Ccdf::new(populations(set, p))
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≥ `x`.
    pub fn proportion_ge(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v < x);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }

    /// The maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.sorted.last().copied().unwrap_or(0)
    }

    /// Sum of all samples.
    pub fn total(&self) -> u64 {
        self.sorted.iter().sum()
    }

    /// The distinct step points `(x, proportion ≥ x)` of the CCDF, in
    /// ascending x — what the figures plot on log-log axes.
    pub fn steps(&self) -> Vec<(u64, f64)> {
        let n = self.sorted.len();
        // One step per distinct sample value — never more than n.
        let mut out = Vec::with_capacity(n);
        if n == 0 {
            return out;
        }
        let mut i = 0usize;
        while i < n {
            let x = self.sorted[i];
            out.push((x, (n - i) as f64 / n as f64));
            while i < n && self.sorted[i] == x {
                i += 1;
            }
        }
        out
    }

    /// The value at a quantile q in `[0, 1]` (nearest-rank).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.sorted.is_empty() {
            return 0;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len()) - 1;
        self.sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_addr::Addr;

    #[test]
    fn proportions() {
        let c = Ccdf::new(vec![1, 1, 2, 5, 10]);
        assert_eq!(c.len(), 5);
        assert!((c.proportion_ge(1) - 1.0).abs() < 1e-12);
        assert!((c.proportion_ge(2) - 0.6).abs() < 1e-12);
        assert!((c.proportion_ge(10) - 0.2).abs() < 1e-12);
        assert!((c.proportion_ge(11) - 0.0).abs() < 1e-12);
        assert_eq!(c.max(), 10);
        assert_eq!(c.total(), 19);
    }

    #[test]
    fn steps_are_monotone() {
        let c = Ccdf::new(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        let steps = c.steps();
        assert_eq!(steps.first().map(|&(x, _)| x), Some(1));
        assert!((steps[0].1 - 1.0).abs() < 1e-12);
        for w in steps.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 > w[1].1);
        }
    }

    #[test]
    fn from_aggregate_populations() {
        let set = AddrSet::from_iter(
            ["2001:db8::1", "2001:db8::2", "2001:db8:0:1::1", "2400::1"]
                .iter()
                .map(|s| s.parse::<Addr>().unwrap()),
        );
        let c = Ccdf::of_aggregate_populations(&set, 64);
        // Aggregates: {2}, {1}, {1} → proportion with ≥2 addrs = 1/3.
        assert_eq!(c.len(), 3);
        assert!((c.proportion_ge(2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let c = Ccdf::new((1..=100).collect());
        assert_eq!(c.quantile(0.5), 50);
        assert_eq!(c.quantile(0.0), 1);
        assert_eq!(c.quantile(1.0), 100);
        assert_eq!(Ccdf::new(vec![]).quantile(0.5), 0);
    }

    #[test]
    fn empty() {
        let c = Ccdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.proportion_ge(1), 0.0);
        assert!(c.steps().is_empty());
    }
}
