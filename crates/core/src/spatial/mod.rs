//! Spatial classification (§5.2): MRA count ratios, aggregate population
//! distributions, and prefix density.

mod density;
mod distribution;
mod mra;
mod population;

pub use density::{DensityClass, DensityClassParseError, DensityReport};
pub use distribution::BoxStats;
pub use mra::{MraCurve, MraResolution, PrivacySignature};
pub use population::Ccdf;
