//! Box-plot statistics for distributions of aggregation ratios across
//! prefixes (Figure 5b).
//!
//! The paper's Figure 5b box plots are richer than the usual five-number
//! summary: they show the median, middle 50%, middle 90%, and whiskers to
//! the absolute maximum. [`BoxStats`] captures exactly those percentiles.

use std::fmt;

/// The percentile summary one box of Figure 5b displays.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoxStats {
    /// Absolute minimum.
    pub min: f64,
    /// 5th percentile (lower edge of the middle 90%).
    pub p5: f64,
    /// 25th percentile (lower edge of the middle 50%).
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Absolute maximum (the paper's whisker end).
    pub max: f64,
    /// Number of samples summarized.
    pub count: usize,
}

impl BoxStats {
    /// Computes the summary from samples. Returns `None` for an empty
    /// input.
    pub fn of(samples: &[f64]) -> Option<BoxStats> {
        if samples.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = samples.to_vec();
        v.sort_by(|a, b| a.total_cmp(b));
        let q = |p: f64| -> f64 {
            // Nearest-rank with linear interpolation between neighbours.
            let rank = p * (v.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                let frac = rank - lo as f64;
                v[lo] * (1.0 - frac) + v[hi] * frac
            }
        };
        let (&vmin, &vmax) = (v.first()?, v.last()?);
        Some(BoxStats {
            min: vmin,
            p5: q(0.05),
            p25: q(0.25),
            median: q(0.50),
            p75: q(0.75),
            p95: q(0.95),
            max: vmax,
            count: v.len(),
        })
    }
}

impl fmt::Display for BoxStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {:.3} | p5 {:.3} | p25 {:.3} | med {:.3} | p75 {:.3} | p95 {:.3} | max {:.3} (n={})",
            self.min, self.p5, self.p25, self.median, self.p75, self.p95, self.max, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_numbers_of_known_data() {
        let samples: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        let b = BoxStats::of(&samples).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 101.0);
        assert_eq!(b.median, 51.0);
        assert_eq!(b.p25, 26.0);
        assert_eq!(b.p75, 76.0);
        assert_eq!(b.p5, 6.0);
        assert_eq!(b.p95, 96.0);
        assert_eq!(b.count, 101);
    }

    #[test]
    fn single_sample() {
        let b = BoxStats::of(&[2.5]).unwrap();
        assert_eq!(b.min, 2.5);
        assert_eq!(b.median, 2.5);
        assert_eq!(b.max, 2.5);
    }

    #[test]
    fn empty_is_none() {
        assert!(BoxStats::of(&[]).is_none());
    }

    #[test]
    fn ordering_invariant() {
        let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        let b = BoxStats::of(&samples).unwrap();
        assert!(b.min <= b.p5);
        assert!(b.p5 <= b.p25);
        assert!(b.p25 <= b.median);
        assert!(b.median <= b.p75);
        assert!(b.p75 <= b.p95);
        assert!(b.p95 <= b.max);
    }

    #[test]
    fn display_is_compact() {
        let b = BoxStats::of(&[1.0, 2.0]).unwrap();
        let s = b.to_string();
        assert!(s.contains("med"));
        assert!(s.contains("n=2"));
    }
}
