//! The unified per-address classification record: addressing scheme ×
//! temporal class × spatial class.
//!
//! The paper's classifiers are complementary views; applications (target
//! selection, data-retention policy, reputation) consume them together.
//! [`ClassifiedAddr`] is the join the census pipeline emits per address.

use std::fmt;
use v6census_addr::{Addr, AddressScheme};

/// The temporal classification outcome for one address or prefix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TemporalClass {
    /// Witnessed nd-stable for the recorded n within the recorded window.
    NdStable {
        /// The n of nd-stable.
        n: u32,
        /// Window reach before the reference day.
        back: u32,
        /// Window reach after the reference day.
        fwd: u32,
    },
    /// Stable across epochs separated by roughly `months` months
    /// (6 ⇒ "6m-stable (-6m)", 12 ⇒ "1y-stable (-1y)").
    EpochStable {
        /// Months between the observations.
        months: u32,
    },
    /// Stability was not witnessed. The paper is explicit that this means
    /// *unknown*, not ephemeral: "we do not know that address to be
    /// stable."
    NotKnownStable,
}

impl fmt::Display for TemporalClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalClass::NdStable { n, back, fwd } => {
                write!(f, "{n}d-stable (-{back}d,+{fwd}d)")
            }
            TemporalClass::EpochStable { months } if months % 12 == 0 => {
                write!(f, "{}y-stable (-{}y)", months / 12, months / 12)
            }
            TemporalClass::EpochStable { months } => {
                write!(f, "{months}m-stable (-{months}m)")
            }
            TemporalClass::NotKnownStable => write!(f, "not stable"),
        }
    }
}

/// A fully classified address.
#[derive(Clone, Copy, Debug)]
pub struct ClassifiedAddr {
    /// The address.
    pub addr: Addr,
    /// Content-based scheme (§3).
    pub scheme: AddressScheme,
    /// Temporal class (§5.1).
    pub temporal: TemporalClass,
    /// The density class the address fell into, as `(n, p)` of
    /// `n@/p-dense`, when spatial classification placed it in a dense
    /// prefix (§5.2.2).
    pub dense_in: Option<(u64, u8)>,
}

impl fmt::Display for ClassifiedAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}",
            self.addr,
            self.scheme.label(),
            self.temporal
        )?;
        if let Some((n, p)) = self.dense_in {
            write!(f, " {n}@/{p}-dense")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temporal_labels_match_paper_notation() {
        assert_eq!(
            TemporalClass::NdStable {
                n: 3,
                back: 7,
                fwd: 7
            }
            .to_string(),
            "3d-stable (-7d,+7d)"
        );
        assert_eq!(
            TemporalClass::EpochStable { months: 6 }.to_string(),
            "6m-stable (-6m)"
        );
        assert_eq!(
            TemporalClass::EpochStable { months: 12 }.to_string(),
            "1y-stable (-1y)"
        );
        assert_eq!(TemporalClass::NotKnownStable.to_string(), "not stable");
    }

    #[test]
    fn classified_display() {
        let c = ClassifiedAddr {
            addr: "2001:db8::1".parse().unwrap(),
            scheme: v6census_addr::scheme::classify("2001:db8::1".parse().unwrap()),
            temporal: TemporalClass::NdStable {
                n: 3,
                back: 7,
                fwd: 7,
            },
            dense_in: Some((2, 112)),
        };
        let s = c.to_string();
        assert!(s.contains("2001:db8::1"));
        assert!(s.contains("low-iid"));
        assert!(s.contains("3d-stable"));
        assert!(s.contains("2@/112-dense"));
    }
}
