//! Injectable filesystem layer for every durability path.
//!
//! The census's system of record is the on-disk corpus — per-day
//! checkpoints, the serve journal, published day logs — not the
//! in-memory tries. Crash safety of that corpus can only be *proved* if
//! every byte that reaches disk goes through a seam where faults can be
//! injected and durability can be modelled. This module is that seam:
//!
//! * [`Vfs`] — the trait every durability path writes through:
//!   open/read/write/fsync/rename/remove/create-dir, plus the
//!   [`Vfs::write_atomic`] discipline (write temp, fsync temp, rename)
//!   that makes a file's appearance atomic *and* durable.
//! * [`RealFs`] — the passthrough to `std::fs` used in production.
//! * [`MemFs`] — a deterministic in-memory filesystem that models the
//!   documented persistence contract (see DESIGN.md "Crash
//!   consistency"): a file has a *volatile* content (what the process
//!   reads back) and a *durable* content (what survives a crash).
//!   `write` updates only the volatile view; `fsync` promotes it to
//!   durable; `rename` and `remove` are durable metadata operations the
//!   moment they complete. Every mutation is recorded in an op log, and
//!   a crash schedule (`set_crash_after`) makes mutation *k* and
//!   everything after it fail — the substrate of the
//!   `census::crashtest` explorer.
//! * [`FaultFs`] — a fault-injecting overlay over any inner [`Vfs`]
//!   (the real one or a [`MemFs`]) executing a seeded [`FaultPlan`]:
//!   ENOSPC at byte N, silent short writes, EINTR storms, fsyncs that
//!   lie, renames that never hit disk, read-back bit corruption.
//!
//! Everything here is deterministic: no clocks, no randomness, ordered
//! maps only — the same plan against the same workload injects the same
//! faults, which is what lets CI replay a drill byte-for-byte.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The filesystem operations a durability path is allowed to use.
///
/// The contract mirrors POSIX semantics at the granularity the
/// persistence model needs: `write` replaces a file's content but
/// promises nothing about durability; `fsync` makes the current content
/// durable; `rename` atomically replaces the target and is treated as
/// durable on completion; `write_atomic` composes the three into the
/// only sanctioned way to publish a file.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Opens a file for streaming reads (bounded-memory line iteration).
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read + Send>>;

    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates or truncates `path` and writes `data`. The bytes are
    /// *not* durable until [`Vfs::fsync`] succeeds.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Flushes `path`'s content to stable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` onto `to` (replacing it). Completed
    /// renames survive a crash.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file. Completed removals survive a crash.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Creates a directory and its ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Lists the entries directly under `path`, sorted by name.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// True when `path` exists.
    fn exists(&self, path: &Path) -> bool;

    /// Reads a whole file as UTF-8.
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        String::from_utf8(self.read(path)?)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 file content"))
    }

    /// Publishes `data` at `path` atomically *and* durably: write a
    /// dot-prefixed `.tmp` sibling, fsync it, rename it into place.
    /// Under the persistence model a crash at any point leaves either
    /// the old file, the new file, or a stale `.tmp` the startup sweep
    /// ([`is_stale_tmp`]) removes — never a torn `path`.
    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let tmp = tmp_path(path);
        self.write(&tmp, data)?;
        self.fsync(&tmp)?;
        self.rename(&tmp, path)
    }
}

/// The `.tmp` sibling [`Vfs::write_atomic`] stages into: `dir/file` →
/// `dir/.file.tmp`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    path.with_file_name(format!(".{name}.tmp"))
}

/// True for file names produced by [`tmp_path`]: the leftovers an
/// aborted atomic write can leave behind, safe to delete at startup.
pub fn is_stale_tmp(name: &str) -> bool {
    name.starts_with('.') && name.ends_with(".tmp") && name.len() > 5
}

// ---------------------------------------------------------------------------
// RealFs
// ---------------------------------------------------------------------------

/// The production filesystem: a passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealFs;

impl Vfs for RealFs {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(std::fs::File::open(path)?))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out: Vec<PathBuf> = Vec::new();
        for entry in std::fs::read_dir(path)? {
            out.push(entry?.path());
        }
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ---------------------------------------------------------------------------
// MemFs: the crash-schedule model
// ---------------------------------------------------------------------------

/// One file in the [`MemFs`] model: what the process sees versus what a
/// crash preserves.
#[derive(Clone, Debug)]
struct MemFile {
    /// Content visible to reads while the process lives.
    volatile: Vec<u8>,
    /// Content that survives a crash; `None` until the first `fsync`.
    durable: Option<Vec<u8>>,
}

#[derive(Debug, Default)]
struct MemState {
    files: BTreeMap<PathBuf, MemFile>,
    dirs: BTreeSet<PathBuf>,
    /// Performed durability-relevant mutations, in order.
    ops: Vec<String>,
    /// Crash schedule: mutation with ordinal `n` (0-based) and every
    /// operation after it fail with a simulated-crash error.
    crash_after: Option<usize>,
    crashed: bool,
}

/// A deterministic in-memory filesystem implementing the documented
/// persistence model, with an op log and a crash schedule.
///
/// What survives a crash: bytes that were fsynced, plus completed
/// renames and removals (durable metadata). What does not: un-fsynced
/// write content. A file that was renamed into place without ever being
/// fsynced survives as an *empty* durable file — the torn-artifact case
/// recovery must detect and quarantine.
#[derive(Debug, Default)]
pub struct MemFs {
    state: Mutex<MemState>,
}

fn crash_error() -> io::Error {
    io::Error::other("simulated crash: operation after scheduled crash point")
}

impl MemFs {
    /// An empty filesystem with no crash scheduled.
    pub fn new() -> MemFs {
        MemFs::default()
    }

    /// A filesystem whose files are exactly `files`, all durable — the
    /// state a process restarting after a crash observes.
    pub fn from_durable(files: BTreeMap<PathBuf, Vec<u8>>, dirs: BTreeSet<PathBuf>) -> MemFs {
        let files = files
            .into_iter()
            .map(|(p, bytes)| {
                (
                    p,
                    MemFile {
                        volatile: bytes.clone(),
                        durable: Some(bytes),
                    },
                )
            })
            .collect();
        MemFs {
            state: Mutex::new(MemState {
                files,
                dirs,
                ops: Vec::new(),
                crash_after: None,
                crashed: false,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The durable view: what a crash right now would preserve.
    pub fn durable_files(&self) -> BTreeMap<PathBuf, Vec<u8>> {
        self.lock()
            .files
            .iter()
            .filter_map(|(p, f)| f.durable.as_ref().map(|d| (p.clone(), d.clone())))
            .collect()
    }

    /// The directories created so far (directory creation is treated as
    /// durable metadata).
    pub fn durable_dirs(&self) -> BTreeSet<PathBuf> {
        self.lock().dirs.clone()
    }

    /// Durability-relevant mutations performed since the last
    /// [`MemFs::reset_ops`].
    pub fn mutations(&self) -> usize {
        self.lock().ops.len()
    }

    /// The op log: one human-readable line per mutation, in order.
    pub fn op_log(&self) -> Vec<String> {
        self.lock().ops.clone()
    }

    /// Clears the op log (e.g. after staging fixture files) so crash
    /// ordinals count only the run under test.
    pub fn reset_ops(&self) {
        self.lock().ops.clear();
    }

    /// Schedules a crash: the mutation with 0-based ordinal `n` — and
    /// every operation after it, reads included — fails.
    pub fn set_crash_after(&self, n: usize) {
        self.lock().crash_after = Some(n);
    }

    /// True once the scheduled crash has triggered.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }
}

impl MemState {
    /// Gates one mutation against the crash schedule and records it.
    fn mutate(&mut self, record: String) -> io::Result<()> {
        if self.crashed {
            return Err(crash_error());
        }
        if self.crash_after.is_some_and(|n| self.ops.len() >= n) {
            self.crashed = true;
            return Err(crash_error());
        }
        self.ops.push(record);
        Ok(())
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.crashed {
            Err(crash_error())
        } else {
            Ok(())
        }
    }
}

impl Vfs for MemFs {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(io::Cursor::new(self.read(path)?)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let state = self.lock();
        state.check_alive()?;
        match state.files.get(path) {
            Some(f) => Ok(f.volatile.clone()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", path.display()),
            )),
        }
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut state = self.lock();
        state.mutate(format!("write {} ({} bytes)", path.display(), data.len()))?;
        match state.files.get_mut(path) {
            Some(f) => f.volatile = data.to_vec(),
            None => {
                state.files.insert(
                    path.to_path_buf(),
                    MemFile {
                        volatile: data.to_vec(),
                        durable: None,
                    },
                );
            }
        }
        Ok(())
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        state.mutate(format!("fsync {}", path.display()))?;
        match state.files.get_mut(path) {
            Some(f) => {
                f.durable = Some(f.volatile.clone());
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fsync of missing file: {}", path.display()),
            )),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = self.lock();
        state.mutate(format!("rename {} -> {}", from.display(), to.display()))?;
        let Some(f) = state.files.remove(from) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("rename of missing file: {}", from.display()),
            ));
        };
        // The rename is durable metadata: after a crash, `to` exists
        // with whatever content of `from` was durable — an empty file if
        // `from` was never fsynced (the torn-artifact case).
        let durable = Some(f.durable.unwrap_or_default());
        state.files.insert(
            to.to_path_buf(),
            MemFile {
                volatile: f.volatile,
                durable,
            },
        );
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        state.mutate(format!("remove {}", path.display()))?;
        match state.files.remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("remove of missing file: {}", path.display()),
            )),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        state.check_alive()?;
        if state.dirs.contains(path) {
            // Re-creating an existing directory is not a durability
            // event; it must not advance the crash clock.
            return Ok(());
        }
        state.mutate(format!("mkdir {}", path.display()))?;
        let mut cur = path.to_path_buf();
        loop {
            state.dirs.insert(cur.clone());
            match cur.parent() {
                Some(p) if !p.as_os_str().is_empty() => cur = p.to_path_buf(),
                _ => break,
            }
        }
        Ok(())
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let state = self.lock();
        state.check_alive()?;
        let mut out: Vec<PathBuf> = state
            .files
            .keys()
            .filter(|p| p.parent() == Some(path))
            .cloned()
            .collect();
        out.extend(
            state
                .dirs
                .iter()
                .filter(|d| d.parent() == Some(path))
                .cloned(),
        );
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        let state = self.lock();
        !state.crashed && (state.files.contains_key(path) || state.dirs.contains(path))
    }
}

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

/// One injectable I/O failure mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A write fails with `StorageFull` after persisting only the first
    /// `at_byte` bytes — disk-full mid-write.
    Enospc {
        /// Bytes that land before the failure.
        at_byte: usize,
    },
    /// A write silently persists only the first `keep` bytes and
    /// reports success — a torn page only read-back validation catches.
    ShortWrite {
        /// Bytes that land.
        keep: usize,
    },
    /// The operation fails with `Interrupted` — an EINTR storm the
    /// retry layer must absorb.
    Eintr,
    /// An fsync reports success without making anything durable.
    FsyncLie,
    /// A rename reports success but never happens: the temp file stays,
    /// the destination never appears.
    RenameDrop,
    /// A read returns the file with one byte bit-flipped (`byte` is
    /// taken modulo the file length).
    ReadCorrupt {
        /// Index of the corrupted byte.
        byte: usize,
    },
}

impl FaultKind {
    /// A stable short label per variant, for plans and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Enospc { .. } => "enospc",
            FaultKind::ShortWrite { .. } => "shortwrite",
            FaultKind::Eintr => "eintr",
            FaultKind::FsyncLie => "fsynclie",
            FaultKind::RenameDrop => "renamedrop",
            FaultKind::ReadCorrupt { .. } => "readcorrupt",
        }
    }
}

/// One rule of a [`FaultPlan`]: inject `kind` on operations whose path
/// contains `path_contains` (empty: every path), after skipping the
/// first `skip` matches, for at most `times` firings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRule {
    /// What to inject.
    pub kind: FaultKind,
    /// Substring the operation's path must contain.
    pub path_contains: String,
    /// Matching operations to let through before the first firing.
    pub skip: u32,
    /// Maximum number of firings.
    pub times: u32,
}

/// A deterministic, seeded set of I/O faults, parseable from the
/// `--fault-fs` CLI flag.
///
/// Syntax: rules separated by `;`, each
/// `kind[@N]:[path-substring][:skip]` — e.g.
/// `enospc@64:ckpt`, `fsynclie:journal`, `renamedrop:ckpt:1`,
/// `eintr@3:`, `readcorrupt@5:ckpt-2015-03-17`. `@N` is the byte offset
/// for `enospc`/`shortwrite`/`readcorrupt` and the firing count for
/// `eintr`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The rules, consulted in order; the first applicable rule fires.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Parses the `--fault-fs` syntax documented on [`FaultPlan`].
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for rule in spec.split(';').filter(|r| !r.trim().is_empty()) {
            rules.push(parse_rule(rule.trim())?);
        }
        if rules.is_empty() {
            return Err(format!("empty --fault-fs plan {spec:?}"));
        }
        Ok(FaultPlan { rules })
    }
}

fn parse_rule(rule: &str) -> Result<FaultRule, String> {
    let mut cols = rule.splitn(3, ':');
    let head = cols.next().unwrap_or_default();
    let path_contains = cols.next().unwrap_or_default().to_string();
    let skip: u32 = match cols.next() {
        None => 0,
        Some(s) => s
            .parse()
            .map_err(|_| format!("bad skip count {s:?} in fault rule {rule:?}"))?,
    };
    let (name, n) = match head.split_once('@') {
        None => (head, None),
        Some((name, ns)) => {
            let n: usize = ns
                .parse()
                .map_err(|_| format!("bad @N operand {ns:?} in fault rule {rule:?}"))?;
            (name, Some(n))
        }
    };
    let mut times = 1u32;
    let kind = match name {
        "enospc" => FaultKind::Enospc {
            at_byte: n.unwrap_or(0),
        },
        "shortwrite" => FaultKind::ShortWrite { keep: n.unwrap_or(0) },
        "eintr" => {
            times = u32::try_from(n.unwrap_or(1)).unwrap_or(u32::MAX);
            FaultKind::Eintr
        }
        "fsynclie" => FaultKind::FsyncLie,
        "renamedrop" => FaultKind::RenameDrop,
        "readcorrupt" => FaultKind::ReadCorrupt { byte: n.unwrap_or(0) },
        other => {
            return Err(format!(
                "unknown fault kind {other:?}; expected enospc, shortwrite, eintr, fsynclie, renamedrop, or readcorrupt"
            ))
        }
    };
    Ok(FaultRule {
        kind,
        path_contains,
        skip,
        times,
    })
}

// ---------------------------------------------------------------------------
// FaultFs
// ---------------------------------------------------------------------------

/// The operation class a rule is matched against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpClass {
    Read,
    Write,
    Fsync,
    Rename,
}

fn applies(kind: &FaultKind, op: OpClass) -> bool {
    match kind {
        FaultKind::Eintr => true,
        FaultKind::Enospc { .. } | FaultKind::ShortWrite { .. } => op == OpClass::Write,
        FaultKind::FsyncLie => op == OpClass::Fsync,
        FaultKind::RenameDrop => op == OpClass::Rename,
        FaultKind::ReadCorrupt { .. } => op == OpClass::Read,
    }
}

#[derive(Debug)]
struct RuleState {
    rule: FaultRule,
    skip_left: u32,
    times_left: u32,
}

#[derive(Debug, Default)]
struct FaultFsState {
    rules: Vec<RuleState>,
    injected: u64,
}

/// A fault-injecting overlay over any inner [`Vfs`], executing a
/// [`FaultPlan`] deterministically. Operations no rule fires on pass
/// straight through.
#[derive(Debug)]
pub struct FaultFs {
    inner: Arc<dyn Vfs>,
    state: Mutex<FaultFsState>,
}

impl FaultFs {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: Arc<dyn Vfs>, plan: FaultPlan) -> FaultFs {
        FaultFs {
            inner,
            state: Mutex::new(FaultFsState {
                rules: plan
                    .rules
                    .into_iter()
                    .map(|rule| RuleState {
                        skip_left: rule.skip,
                        times_left: rule.times,
                        rule,
                    })
                    .collect(),
                injected: 0,
            }),
        }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.lock().injected
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultFsState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes and returns the first applicable rule's fault for this
    /// operation, honoring skip/times budgets.
    fn fire(&self, op: OpClass, path: &Path) -> Option<FaultKind> {
        let mut state = self.lock();
        let text = path.to_string_lossy().into_owned();
        for r in state.rules.iter_mut() {
            if r.times_left == 0
                || !applies(&r.rule.kind, op)
                || !text.contains(&r.rule.path_contains)
            {
                continue;
            }
            if r.skip_left > 0 {
                r.skip_left -= 1;
                continue;
            }
            r.times_left -= 1;
            let kind = r.rule.kind.clone();
            state.injected += 1;
            return Some(kind);
        }
        None
    }
}

fn corrupt(mut data: Vec<u8>, byte: usize) -> Vec<u8> {
    if !data.is_empty() {
        let at = byte % data.len();
        if let Some(b) = data.get_mut(at) {
            *b ^= 0x01;
        }
    }
    data
}

fn eintr_error() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "injected EINTR")
}

impl Vfs for FaultFs {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read + Send>> {
        match self.fire(OpClass::Read, path) {
            Some(FaultKind::Eintr) => Err(eintr_error()),
            Some(FaultKind::ReadCorrupt { byte }) => Ok(Box::new(io::Cursor::new(corrupt(
                self.inner.read(path)?,
                byte,
            )))),
            _ => self.inner.open_read(path),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.fire(OpClass::Read, path) {
            Some(FaultKind::Eintr) => Err(eintr_error()),
            Some(FaultKind::ReadCorrupt { byte }) => Ok(corrupt(self.inner.read(path)?, byte)),
            _ => self.inner.read(path),
        }
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.fire(OpClass::Write, path) {
            Some(FaultKind::Eintr) => Err(eintr_error()),
            Some(FaultKind::Enospc { at_byte }) => {
                let kept = data.get(..at_byte.min(data.len())).unwrap_or_default();
                self.inner.write(path, kept)?;
                Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    format!("injected ENOSPC after {} bytes", kept.len()),
                ))
            }
            Some(FaultKind::ShortWrite { keep }) => {
                // The torn write: a prefix lands, success is reported.
                let kept = data.get(..keep.min(data.len())).unwrap_or_default();
                self.inner.write(path, kept)
            }
            _ => self.inner.write(path, data),
        }
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        match self.fire(OpClass::Fsync, path) {
            Some(FaultKind::Eintr) => Err(eintr_error()),
            // The lying fsync: success reported, nothing made durable.
            Some(FaultKind::FsyncLie) => Ok(()),
            _ => self.inner.fsync(path),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.fire(OpClass::Rename, to) {
            Some(FaultKind::Eintr) => Err(eintr_error()),
            // The dropped rename: success reported, nothing moved.
            Some(FaultKind::RenameDrop) => Ok(()),
            _ => self.inner.rename(from, to),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.read_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn tmp_names_round_trip_the_sweep_predicate() {
        assert_eq!(
            tmp_path(&p("/state/ckpt-2015-03-17.tsv")),
            p("/state/.ckpt-2015-03-17.tsv.tmp")
        );
        assert!(is_stale_tmp(".ckpt-2015-03-17.tsv.tmp"));
        assert!(is_stale_tmp(".journal.v1.tmp"));
        assert!(!is_stale_tmp("ckpt-2015-03-17.tsv"));
        assert!(!is_stale_tmp("journal.v1"));
        assert!(!is_stale_tmp(".tmp"));
    }

    #[test]
    fn memfs_models_volatile_vs_durable() {
        let fs = MemFs::new();
        fs.create_dir_all(&p("/state")).unwrap();
        fs.write(&p("/state/a"), b"hello").unwrap();
        // Written but not fsynced: readable now, lost on crash.
        assert_eq!(fs.read(&p("/state/a")).unwrap(), b"hello");
        assert!(fs.durable_files().is_empty());
        fs.fsync(&p("/state/a")).unwrap();
        assert_eq!(fs.durable_files().get(&p("/state/a")).unwrap(), b"hello");
        // A later un-fsynced write reverts on crash.
        fs.write(&p("/state/a"), b"newer").unwrap();
        assert_eq!(fs.read(&p("/state/a")).unwrap(), b"newer");
        assert_eq!(fs.durable_files().get(&p("/state/a")).unwrap(), b"hello");
    }

    #[test]
    fn memfs_rename_is_durable_metadata() {
        let fs = MemFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.write(&p("/d/.x.tmp"), b"data").unwrap();
        fs.fsync(&p("/d/.x.tmp")).unwrap();
        fs.rename(&p("/d/.x.tmp"), &p("/d/x")).unwrap();
        let durable = fs.durable_files();
        assert_eq!(durable.get(&p("/d/x")).unwrap(), b"data");
        assert!(!durable.contains_key(&p("/d/.x.tmp")));
        // Renaming an un-fsynced file leaves a durable torn (empty) file.
        fs.write(&p("/d/.y.tmp"), b"data").unwrap();
        fs.rename(&p("/d/.y.tmp"), &p("/d/y")).unwrap();
        assert_eq!(fs.durable_files().get(&p("/d/y")).unwrap(), b"");
        assert_eq!(
            fs.read(&p("/d/y")).unwrap(),
            b"data",
            "volatile view intact"
        );
    }

    #[test]
    fn memfs_crash_schedule_fails_everything_from_ordinal_n() {
        let fs = MemFs::new();
        fs.create_dir_all(&p("/d")).unwrap(); // mutation 0
        fs.write(&p("/d/a"), b"1").unwrap(); // mutation 1
        fs.set_crash_after(2);
        assert!(fs.fsync(&p("/d/a")).is_err(), "mutation 2 crashes");
        assert!(fs.crashed());
        assert!(fs.read(&p("/d/a")).is_err(), "reads fail after the crash");
        assert!(!fs.exists(&p("/d/a")));
        assert_eq!(fs.mutations(), 2);
        // The durable view is still inspectable from outside.
        assert!(fs.durable_files().is_empty());
    }

    #[test]
    fn memfs_from_durable_restarts_clean() {
        let fs = MemFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.write(&p("/d/a"), b"keep").unwrap();
        fs.fsync(&p("/d/a")).unwrap();
        fs.write(&p("/d/b"), b"lose").unwrap();
        let restarted = MemFs::from_durable(fs.durable_files(), fs.durable_dirs());
        assert_eq!(restarted.read(&p("/d/a")).unwrap(), b"keep");
        assert!(restarted.read(&p("/d/b")).is_err());
        assert!(restarted.exists(&p("/d")));
        assert_eq!(restarted.mutations(), 0);
    }

    #[test]
    fn memfs_write_atomic_leaves_no_tmp_and_is_durable() {
        let fs = MemFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.write_atomic(&p("/d/file"), b"payload").unwrap();
        assert_eq!(fs.durable_files().get(&p("/d/file")).unwrap(), b"payload");
        assert!(!fs.exists(&tmp_path(&p("/d/file"))));
        assert_eq!(
            fs.op_log(),
            vec![
                "mkdir /d".to_string(),
                "write /d/.file.tmp (7 bytes)".to_string(),
                "fsync /d/.file.tmp".to_string(),
                "rename /d/.file.tmp -> /d/file".to_string(),
            ]
        );
    }

    #[test]
    fn fault_plan_parses_and_rejects() {
        let plan =
            FaultPlan::parse("enospc@64:ckpt; fsynclie:journal; eintr@3:; renamedrop:ckpt:2")
                .unwrap();
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(plan.rules[0].kind, FaultKind::Enospc { at_byte: 64 });
        assert_eq!(plan.rules[0].path_contains, "ckpt");
        assert_eq!(plan.rules[1].kind, FaultKind::FsyncLie);
        assert_eq!(plan.rules[2].kind, FaultKind::Eintr);
        assert_eq!(plan.rules[2].times, 3);
        assert_eq!(plan.rules[3].skip, 2);
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("warble:x").is_err());
        assert!(FaultPlan::parse("enospc@lots:x").is_err());
        assert!(FaultPlan::parse("renamedrop:x:often").is_err());
    }

    #[test]
    fn faultfs_enospc_and_shortwrite() {
        let inner = Arc::new(MemFs::new());
        inner.create_dir_all(&p("/d")).unwrap();
        let fs = FaultFs::new(
            inner.clone(),
            FaultPlan::parse("enospc@3:a; shortwrite@2:b").unwrap(),
        );
        let e = fs.write(&p("/d/a"), b"0123456789").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::StorageFull);
        assert_eq!(inner.read(&p("/d/a")).unwrap(), b"012", "prefix landed");
        // Short write lies about success.
        fs.write(&p("/d/b"), b"0123456789").unwrap();
        assert_eq!(inner.read(&p("/d/b")).unwrap(), b"01");
        assert_eq!(fs.injected(), 2);
        // Budget exhausted: later writes pass through.
        fs.write(&p("/d/a"), b"ok").unwrap();
        assert_eq!(inner.read(&p("/d/a")).unwrap(), b"ok");
    }

    #[test]
    fn faultfs_fsynclie_renamedrop_eintr_readcorrupt() {
        let inner = Arc::new(MemFs::new());
        inner.create_dir_all(&p("/d")).unwrap();
        let fs = FaultFs::new(
            inner.clone(),
            FaultPlan::parse("fsynclie:x; renamedrop:final; eintr@2:e; readcorrupt@0:c").unwrap(),
        );
        // Lying fsync: Ok reported, nothing durable.
        fs.write(&p("/d/x"), b"data").unwrap();
        fs.fsync(&p("/d/x")).unwrap();
        assert!(inner.durable_files().is_empty());
        // Dropped rename: Ok reported, nothing moved.
        fs.rename(&p("/d/x"), &p("/d/final")).unwrap();
        assert!(inner.exists(&p("/d/x")));
        assert!(!inner.exists(&p("/d/final")));
        // EINTR storm: exactly two interruptions, then passthrough.
        assert_eq!(
            fs.write(&p("/d/e"), b"1").unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        assert_eq!(
            fs.write(&p("/d/e"), b"1").unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        fs.write(&p("/d/e"), b"1").unwrap();
        // Read corruption: one bit differs, length preserved.
        inner.write(&p("/d/c"), b"abc").unwrap();
        let got = fs.read(&p("/d/c")).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], b'a' ^ 0x01);
        assert_eq!(&got[1..], b"bc");
    }

    #[test]
    fn realfs_round_trips_and_sweeps() {
        let dir = std::env::temp_dir().join(format!("v6census-vfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = RealFs;
        fs.create_dir_all(&dir).unwrap();
        let file = dir.join("data.txt");
        fs.write_atomic(&file, b"payload").unwrap();
        assert!(fs.exists(&file));
        assert!(!fs.exists(&tmp_path(&file)));
        assert_eq!(fs.read_to_string(&file).unwrap(), "payload");
        let listed = fs.read_dir(&dir).unwrap();
        assert_eq!(listed, vec![file.clone()]);
        fs.remove_file(&file).unwrap();
        assert!(!fs.exists(&file));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
