//! Temporal and spatial classification of active IPv6 addresses — the
//! primary contribution of Plonka & Berger, *Temporal and Spatial
//! Classification of Active IPv6 Addresses* (IMC 2015), as a reusable
//! library.
//!
//! # Temporal classification (§5.1)
//!
//! An address (or any prefix derived from it) is **nd-stable** when it is
//! observed active on two days with at least *n−1* intervening days.
//! Classification runs against a reference day inside a sliding window,
//! canonically `(-7d,+7d)`:
//!
//! ```
//! use v6census_core::temporal::{Day, DailyObservations, StabilityParams};
//! use v6census_trie::AddrSet;
//! use v6census_addr::Addr;
//!
//! let mut obs = DailyObservations::new();
//! let d0 = Day::from_ymd(2015, 3, 17);
//! let stable: Addr = "2001:db8::1".parse().unwrap();
//! let ephemeral: Addr = "2001:db8::2".parse().unwrap();
//! obs.record(d0, AddrSet::from_iter([stable, ephemeral]));
//! obs.record(d0 + 3, AddrSet::from_iter([stable]));
//!
//! let params = StabilityParams::nd(3); // 3d-stable (-7d,+7d)
//! let s = obs.stable_on(d0, &params);
//! assert!(s.contains(stable));
//! assert!(!s.contains(ephemeral));
//! assert_eq!(params.label(), "3d-stable (-7d,+7d)");
//! ```
//!
//! # Spatial classification (§5.2)
//!
//! [`spatial::MraCurve`] computes Multi-Resolution Aggregate count ratios
//! γ^k_p = n_{p+k}/n_p at single-bit, nybble, byte, and 16-bit-segment
//! resolution, plus the structural signatures the paper reads off MRA
//! plots; [`spatial::DensityClass`] computes `n@/p-dense` prefixes and the
//! Table 3 style density report; [`spatial::Ccdf`] builds the aggregate
//! population distributions of Figure 3; [`spatial::BoxStats`] the
//! per-segment ratio distributions of Figure 5b.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod quality;
pub mod query;
pub mod spatial;
pub mod temporal;
pub mod vfs;

pub use classify::{ClassifiedAddr, TemporalClass};
pub use quality::{Annotated, Quality};
pub use query::{days_seen, members_in, prefix_profile, PrefixProfile};
pub use temporal::{DailyObservations, Day, StabilityParams};
pub use vfs::{FaultFs, FaultKind, FaultPlan, FaultRule, MemFs, RealFs, Vfs};
