//! Query-oriented lookups over published census products.
//!
//! The batch pipeline produces whole tables; a serving daemon answers
//! point questions — "what does this prefix look like?", "on which days
//! was this address seen?" — against an immutable published snapshot.
//! The helpers here are the pure lookup kernels those endpoints call:
//! they take already-built products ([`AddrSet`]s, [`DailyObservations`])
//! and never mutate anything, so they are safe to run concurrently from
//! many reader threads against one shared snapshot.

use crate::spatial::{DensityClass, MraCurve, PrivacySignature};
use crate::temporal::{DailyObservations, Day};
use v6census_addr::{Addr, Prefix};
use v6census_trie::AddrSet;

/// The spatial profile of one prefix within an active-address set — the
/// record behind a `/classify/<prefix>` query: how many observed
/// addresses the block holds, the §5.2.1 MRA signature measurements over
/// exactly those members, and the block's `n@/p-dense` content.
#[derive(Clone, Debug)]
pub struct PrefixProfile {
    /// The queried block (canonicalized).
    pub prefix: Prefix,
    /// Observed addresses inside the block.
    pub members: usize,
    /// Privacy-extension signature measurements over the members.
    pub signature: PrivacySignature,
    /// Whether the measurements match the paper's privacy signature.
    pub privacy: bool,
    /// Tail prominence (≈1: addresses differ only in their last 16
    /// bits — the dense-block shape).
    pub tail_prominence: f64,
    /// Longest common prefix of the members (128 for ≤1 member).
    pub common_prefix_len: u8,
    /// Number of `n@/p-dense` sub-blocks among the members.
    pub dense_prefixes: usize,
    /// Members that live inside a dense sub-block.
    pub dense_members: usize,
}

/// The members of `set` inside `prefix`, by binary search over the
/// sorted key vector — O(log n + m) for m members, cheap enough to run
/// per query.
pub fn members_in(set: &AddrSet, prefix: Prefix) -> AddrSet {
    let lo = prefix.addr().0;
    let hi = prefix.last_addr().0;
    let keys = set.keys();
    let start = keys.partition_point(|&k| k < lo);
    let end = keys.partition_point(|&k| k <= hi);
    AddrSet::from_sorted(keys.get(start..end).unwrap_or(&[]).to_vec())
}

/// Profiles one prefix within an active-address set: member extraction,
/// MRA signature measurements, and dense-content summary, in one pass.
pub fn prefix_profile(set: &AddrSet, prefix: Prefix, class: DensityClass) -> PrefixProfile {
    let members = members_in(set, prefix);
    let mra = MraCurve::of(&members);
    let signature = mra.privacy_signature();
    let dense = class.dense_prefixes(&members);
    let dense_members = class.dense_addresses(&members).len();
    PrefixProfile {
        prefix,
        members: members.len(),
        privacy: signature.matches(),
        signature,
        tail_prominence: mra.tail_prominence(),
        common_prefix_len: mra.common_prefix_len(),
        dense_prefixes: dense.len(),
        dense_members,
    }
}

/// The days on which `a` was observed, ascending — the temporal half of
/// a point lookup. O(days × log n).
pub fn days_seen(obs: &DailyObservations, a: Addr) -> Vec<Day> {
    obs.days()
        .filter(|&d| obs.get(d).is_some_and(|s| s.contains(a)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(addrs: &[&str]) -> AddrSet {
        AddrSet::from_iter(addrs.iter().map(|s| s.parse::<Addr>().unwrap()))
    }

    #[test]
    fn members_in_selects_the_block() {
        let s = set(&["2001:db8::1", "2001:db8::2", "2001:db8:1::1", "2002:db8::1"]);
        let p: Prefix = "2001:db8::/32".parse().unwrap();
        let m = members_in(&s, p);
        assert_eq!(m.len(), 3);
        assert!(m.contains("2001:db8:1::1".parse().unwrap()));
        assert!(!m.contains("2002:db8::1".parse().unwrap()));
        // Host prefix selects exactly the address.
        let host = Prefix::host("2001:db8::2".parse().unwrap());
        assert_eq!(members_in(&s, host).len(), 1);
        // A block with no members yields the empty set.
        let empty: Prefix = "2003::/16".parse().unwrap();
        assert!(members_in(&s, empty).is_empty());
    }

    #[test]
    fn members_in_agrees_with_linear_filter() {
        let s = AddrSet::from_iter(
            (0..500u128).map(|i| Addr((0x2001_0db8u128 << 96) | (i << 32) | (i * 7))),
        );
        let p: Prefix = "2001:db8:0:0:0:40::/76".parse().unwrap();
        let fast = members_in(&s, p);
        let slow: Vec<Addr> = s.iter().filter(|&a| p.contains_addr(a)).collect();
        assert_eq!(fast.len(), slow.len());
        for a in &slow {
            assert!(fast.contains(*a));
        }
    }

    #[test]
    fn profile_reports_dense_content() {
        // 100 packed low-IID addresses in one /64: the Figure 5g shape.
        let s =
            AddrSet::from_iter((0..100u128).map(|i| Addr((0x2001_0db8_0000_0001u128 << 64) | i)));
        let p: Prefix = "2001:db8:0:1::/64".parse().unwrap();
        let profile = prefix_profile(&s, p, DensityClass::new(16, 120));
        assert_eq!(profile.members, 100);
        assert!(!profile.privacy);
        assert!(profile.tail_prominence > 0.9);
        assert!(profile.dense_prefixes >= 1);
        assert_eq!(profile.dense_members, 100);
        // Querying a sibling block finds nothing.
        let sibling: Prefix = "2001:db8:0:2::/64".parse().unwrap();
        let none = prefix_profile(&s, sibling, DensityClass::new(16, 120));
        assert_eq!(none.members, 0);
        assert_eq!(none.common_prefix_len, 128);
    }

    #[test]
    fn days_seen_scans_the_observation_store() {
        let mut obs = DailyObservations::new();
        let d0 = Day::from_ymd(2015, 3, 17);
        let a: Addr = "2001:db8::1".parse().unwrap();
        let b: Addr = "2001:db8::2".parse().unwrap();
        obs.record(d0, set(&["2001:db8::1", "2001:db8::2"]));
        obs.record(d0 + 2, set(&["2001:db8::1"]));
        assert_eq!(days_seen(&obs, a), vec![d0, d0 + 2]);
        assert_eq!(days_seen(&obs, b), vec![d0]);
        assert!(days_seen(&obs, "2001:db8::3".parse().unwrap()).is_empty());
    }
}
