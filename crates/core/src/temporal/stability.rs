//! The nd-stable classifier over daily observation sets (§5.1).

use super::Day;
use std::collections::BTreeMap;
use v6census_trie::AddrSet;

/// Parameters of an nd-stability assessment.
///
/// Definition (§5.1): an address is **nd-stable** when there exist
/// observations of activity on two different days with an intervening
/// period of at least *n−1* days — equivalently, on two days at distance
/// ≥ *n*. Assessment is relative to a reference day inside a sliding
/// window spanning `back` days before through `fwd` days after; the
/// paper's canonical window is `(-7d,+7d)`.
///
/// `slew_tolerance` accommodates the log-processing timestamp slew of
/// §4.1: aggregated logs complete up to a day after the requests occurred,
/// so two "log processed dates" at distance *k* may reflect activity as
/// close as *k − slew* days apart. A non-zero tolerance makes the
/// classifier conservative by requiring distance ≥ *n + slew* before
/// declaring nd-stability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StabilityParams {
    /// The *n* of nd-stable: minimum day distance between observations.
    pub n: u32,
    /// Window reach before the reference day, in days.
    pub back: u32,
    /// Window reach after the reference day, in days.
    pub fwd: u32,
    /// Extra distance demanded to absorb log-timestamp slew (§4.1).
    pub slew_tolerance: u32,
}

impl StabilityParams {
    /// nd-stability with the paper's canonical `(-7d,+7d)` window and no
    /// slew tolerance.
    pub const fn nd(n: u32) -> StabilityParams {
        StabilityParams {
            n,
            back: 7,
            fwd: 7,
            slew_tolerance: 0,
        }
    }

    /// The paper's headline class: `3d-stable (-7d,+7d)`.
    pub const fn three_day() -> StabilityParams {
        StabilityParams::nd(3)
    }

    /// Replaces the window, keeping n and slew.
    pub const fn with_window(self, back: u32, fwd: u32) -> StabilityParams {
        StabilityParams { back, fwd, ..self }
    }

    /// Replaces the slew tolerance.
    pub const fn with_slew(self, slew_tolerance: u32) -> StabilityParams {
        StabilityParams {
            slew_tolerance,
            ..self
        }
    }

    /// The class label in the paper's notation, e.g. `3d-stable (-7d,+7d)`.
    pub fn label(&self) -> String {
        format!("{}d-stable (-{}d,+{}d)", self.n, self.back, self.fwd)
    }

    /// Effective minimum distance between observation days.
    fn min_distance(&self) -> u32 {
        self.n + self.slew_tolerance
    }
}

/// Per-day sets of active addresses (or prefixes): the input to temporal
/// classification.
///
/// The same engine classifies full addresses and /64s — record /64-mapped
/// sets (via [`AddrSet::map_prefix`]) in a second store, or use
/// [`DailyObservations::prefix_view`].
///
/// A day is **covered** when it was recorded at all — possibly with an
/// empty set ("observed inactive"). A day never recorded is a **gap**
/// ("not ingested"), which is a different thing: an address absent on a
/// covered day was provably quiet; an address absent on a gap day was
/// simply not looked at. The gap-aware classifier entry point
/// [`DailyObservations::stable_on_gapped`] keeps the two apart.
#[derive(Clone, Debug, Default)]
pub struct DailyObservations {
    days: BTreeMap<Day, AddrSet>,
}

/// How the classifier treats days that were never ingested inside the
/// assessment window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GapPolicy {
    /// Legacy semantics: a gap day is treated as if every address were
    /// inactive on it. The verdict is always reported [`VerdictQuality::Complete`]
    /// because the caller explicitly opted out of gap accounting.
    AssumeInactive,
    /// Widens the window by one day per gap day on each side (capped at
    /// `max_extra` per side), recovering the witness opportunities the
    /// gaps removed.
    Widen {
        /// Maximum extra reach added to either side of the window.
        max_extra: u32,
    },
    /// Leaves the window alone but downgrades the verdict to
    /// [`VerdictQuality::Unknown`] when gaps intersect it — a "not
    /// stable" outcome cannot be trusted if witness days are missing.
    Flag,
}

/// How trustworthy a gap-aware stability verdict is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerdictQuality {
    /// Every day of the assessment window was covered (or the caller
    /// chose [`GapPolicy::AssumeInactive`]).
    Complete,
    /// The window was widened to compensate for gap days.
    Widened {
        /// Extra backward reach applied, in days.
        back_extra: u32,
        /// Extra forward reach applied, in days.
        fwd_extra: u32,
    },
    /// Gap days intersect the window (or the reference day itself was
    /// never ingested); absence of a stability witness proves nothing.
    Unknown {
        /// The uncovered days, ascending.
        missing: Vec<Day>,
    },
}

impl VerdictQuality {
    /// True when a "not stable" outcome can be taken at face value.
    pub fn is_conclusive(&self) -> bool {
        !matches!(self, VerdictQuality::Unknown { .. })
    }

    /// The position of this verdict on the run-level quality lattice:
    /// `Complete` is exact, a widened window is a degraded-but-honest
    /// answer, and uncovered days make the verdict partial.
    pub fn quality(&self) -> crate::quality::Quality {
        match self {
            VerdictQuality::Complete => crate::quality::Quality::Exact,
            VerdictQuality::Widened { .. } => crate::quality::Quality::Degraded,
            VerdictQuality::Unknown { .. } => crate::quality::Quality::Partial,
        }
    }
}

/// The outcome of [`DailyObservations::stable_on_gapped`].
#[derive(Clone, Debug)]
pub struct StabilityVerdict {
    /// Addresses assessed nd-stable on the reference day.
    pub stable: AddrSet,
    /// How trustworthy the assessment is given ingestion gaps.
    pub quality: VerdictQuality,
}

/// The outcome of a weekly stability assessment (Table 2c/2d): for each of
/// the seven days the nd-stable set is determined; the weekly classes are
/// the unions.
#[derive(Clone, Debug)]
pub struct WeeklyStability {
    /// Unique addresses active during the week.
    pub active: AddrSet,
    /// Unique addresses nd-stable on at least one day of the week.
    pub stable: AddrSet,
    /// Unique active addresses never assessed nd-stable — the paper's
    /// "not nd-stable", meaning only that stability was not witnessed.
    pub not_stable: AddrSet,
}

/// The outcome of a cross-epoch stability assessment (the `6m-stable
/// (-6m)` and `1y-stable (-1y)` rows of Table 2).
#[derive(Clone, Debug)]
pub struct EpochStability {
    /// Addresses active in the current epoch and the earlier one.
    pub stable: AddrSet,
    /// Size of the current epoch's active set (the percentage base).
    pub current_total: usize,
}

impl EpochStability {
    /// The stable fraction of the current epoch's actives.
    pub fn fraction(&self) -> f64 {
        if self.current_total == 0 {
            0.0
        } else {
            self.stable.len() as f64 / self.current_total as f64
        }
    }
}

impl DailyObservations {
    /// Creates an empty store.
    pub fn new() -> DailyObservations {
        DailyObservations::default()
    }

    /// Records (or merges) the active set observed on `day`.
    pub fn record(&mut self, day: Day, set: AddrSet) {
        self.days
            .entry(day)
            .and_modify(|existing| *existing = existing.union(&set))
            .or_insert(set);
    }

    /// The active set for a day (empty when unobserved).
    pub fn on(&self, day: Day) -> AddrSet {
        self.days.get(&day).cloned().unwrap_or_default()
    }

    /// Borrowing accessor for a day's set.
    pub fn get(&self, day: Day) -> Option<&AddrSet> {
        self.days.get(&day)
    }

    /// The observed days in ascending order.
    pub fn days(&self) -> impl Iterator<Item = Day> + '_ {
        self.days.keys().copied()
    }

    /// Number of days with observations.
    pub fn day_count(&self) -> usize {
        self.days.len()
    }

    /// A store of the same days with every set mapped to its containing
    /// `/len` blocks — e.g. `prefix_view(64)` for the paper's /64
    /// stability analysis (Table 2b/2d).
    pub fn prefix_view(&self, len: u8) -> DailyObservations {
        DailyObservations {
            days: self
                .days
                .iter()
                .map(|(&d, set)| (d, set.map_prefix(len)))
                .collect(),
        }
    }

    /// True when `day` was recorded at all (even with an empty set) —
    /// the "observed inactive" versus "not ingested" distinction.
    pub fn is_covered(&self, day: Day) -> bool {
        self.days.contains_key(&day)
    }

    /// The uncovered days within `first..=last`, ascending.
    pub fn gaps_in(&self, first: Day, last: Day) -> Vec<Day> {
        first
            .range_inclusive(last)
            .filter(|d| !self.is_covered(*d))
            .collect()
    }

    /// Gap-aware stability assessment: like
    /// [`DailyObservations::stable_on`], but days missing from the
    /// ingestion are accounted for per `policy` instead of being silently
    /// read as "inactive everywhere".
    pub fn stable_on_gapped(
        &self,
        reference: Day,
        params: &StabilityParams,
        policy: GapPolicy,
    ) -> StabilityVerdict {
        let missing = self.gaps_in(
            reference - params.back as i32,
            reference + params.fwd as i32,
        );
        if missing.is_empty() || policy == GapPolicy::AssumeInactive {
            return StabilityVerdict {
                stable: self.stable_on(reference, params),
                quality: VerdictQuality::Complete,
            };
        }
        // No amount of widening recovers an unobserved reference day.
        if !self.is_covered(reference) {
            return StabilityVerdict {
                stable: AddrSet::new(),
                quality: VerdictQuality::Unknown { missing },
            };
        }
        match policy {
            // Already returned Complete above; kept total for safety.
            GapPolicy::AssumeInactive => StabilityVerdict {
                stable: self.stable_on(reference, params),
                quality: VerdictQuality::Complete,
            },
            GapPolicy::Flag => StabilityVerdict {
                stable: self.stable_on(reference, params),
                quality: VerdictQuality::Unknown { missing },
            },
            GapPolicy::Widen { max_extra } => {
                let back_extra =
                    (missing.iter().filter(|&&d| d < reference).count() as u32).min(max_extra);
                let fwd_extra =
                    (missing.iter().filter(|&&d| d > reference).count() as u32).min(max_extra);
                let widened = params.with_window(params.back + back_extra, params.fwd + fwd_extra);
                StabilityVerdict {
                    stable: self.stable_on(reference, &widened),
                    quality: VerdictQuality::Widened {
                        back_extra,
                        fwd_extra,
                    },
                }
            }
        }
    }

    /// Addresses active on `reference` that are nd-stable per `params`:
    /// also active on some observed day `d` in the window with
    /// `|d − reference| ≥ n + slew`.
    pub fn stable_on(&self, reference: Day, params: &StabilityParams) -> AddrSet {
        let active = match self.days.get(&reference) {
            Some(s) => s,
            None => return AddrSet::new(),
        };
        let lo = reference - params.back as i32;
        let hi = reference + params.fwd as i32;
        let min_d = params.min_distance() as i32;
        // One pass over the reference day's actives against a cursor
        // per witness day. Every cursor moves monotonically forward,
        // so the whole ±window costs O(|active|·w + Σ|witness|) with a
        // single reserved output buffer — where the old
        // union-of-intersections built and dropped two intermediate
        // sets per witness day.
        let mut witnesses: Vec<&[u128]> = Vec::with_capacity(self.days.len());
        for (&d, s) in self.days.range(lo..=hi) {
            if (d - reference).abs() >= min_d {
                witnesses.push(s.keys());
            }
        }
        // Not `vec![0; …]`: the reserve-then-resize spelling keeps this
        // fn on the amortized point of R005's allocation lattice.
        #[allow(clippy::slow_vector_initialization)]
        let mut cursors: Vec<usize> = {
            let mut v = Vec::with_capacity(witnesses.len());
            v.resize(witnesses.len(), 0);
            v
        };
        let mut out: Vec<u128> = Vec::with_capacity(active.len());
        for &a in active.keys() {
            let mut hit = false;
            for (w, cur) in witnesses.iter().zip(cursors.iter_mut()) {
                while w.get(*cur).is_some_and(|&k| k < a) {
                    *cur += 1;
                }
                if w.get(*cur) == Some(&a) {
                    hit = true;
                    break; // later witnesses' cursors catch up lazily
                }
            }
            if hit {
                out.push(a);
            }
        }
        AddrSet::from_sorted(out)
    }

    /// Addresses active on `reference` but *not* witnessed nd-stable —
    /// the complement of [`DailyObservations::stable_on`] within the
    /// reference day's actives.
    pub fn not_stable_on(&self, reference: Day, params: &StabilityParams) -> AddrSet {
        let active = self.on(reference);
        let stable = self.stable_on(reference, params);
        AddrSet::from_iter(active.iter().filter(|&a| !stable.contains(a)))
    }

    /// Weekly stability (Table 2c/2d): for each day in
    /// `first..=first+6`, determine the nd-stable set; report unions.
    pub fn stable_over_week(&self, first: Day, params: &StabilityParams) -> WeeklyStability {
        self.stable_over_days(first.range_inclusive(first + 6), params)
    }

    /// Generalization of [`DailyObservations::stable_over_week`] to any
    /// set of reference days.
    pub fn stable_over_days<I: IntoIterator<Item = Day>>(
        &self,
        days: I,
        params: &StabilityParams,
    ) -> WeeklyStability {
        let mut active = AddrSet::new();
        let mut stable = AddrSet::new();
        for d in days {
            if let Some(s) = self.days.get(&d) {
                active = active.union(s);
            }
            stable = stable.union(&self.stable_on(d, params));
        }
        let not_stable = AddrSet::from_iter(active.iter().filter(|&a| !stable.contains(a)));
        WeeklyStability {
            active,
            stable,
            not_stable,
        }
    }

    /// Cross-epoch stability (the `6m-stable (-6m)` / `1y-stable (-1y)`
    /// rows): addresses active in the current epoch (union over
    /// `current`) that were also active in the earlier epoch (union over
    /// `earlier`). The percentage base is the current epoch's active
    /// count.
    pub fn epoch_stable(
        &self,
        current: impl IntoIterator<Item = Day>,
        earlier: impl IntoIterator<Item = Day>,
    ) -> EpochStability {
        let cur = AddrSet::union_all(current.into_iter().filter_map(|d| self.days.get(&d)));
        let old = AddrSet::union_all(earlier.into_iter().filter_map(|d| self.days.get(&d)));
        EpochStability {
            stable: cur.intersection(&old),
            current_total: cur.len(),
        }
    }

    /// The Figure 4 series: for every observed day, the day's active
    /// count and the size of its intersection with the reference day's
    /// active set.
    pub fn reference_overlap_series(&self, reference: Day) -> Vec<(Day, usize, usize)> {
        let ref_set = self.on(reference);
        self.days
            .iter()
            .map(|(&d, s)| (d, s.len(), ref_set.intersection_len(s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_addr::Addr;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn set(addrs: &[&str]) -> AddrSet {
        AddrSet::from_iter(addrs.iter().map(|s| a(s)))
    }

    fn day(d: u8) -> Day {
        Day::from_ymd(2015, 3, d)
    }

    #[test]
    fn paper_examples_from_section_5_1() {
        // "A given address seen on March 17 and again on March 18 ... is
        // 1d-stable. An address seen on March 17 and on March 19 ... is
        // 2d-stable [and therefore also 1d-stable]."
        let mut obs = DailyObservations::new();
        let x = a("2001:db8::1718");
        let y = a("2001:db8::1719");
        obs.record(day(17), set(&["2001:db8::1718", "2001:db8::1719"]));
        obs.record(day(18), set(&["2001:db8::1718"]));
        obs.record(day(19), set(&["2001:db8::1719"]));

        let s1 = obs.stable_on(day(17), &StabilityParams::nd(1));
        assert!(s1.contains(x));
        assert!(s1.contains(y));

        let s2 = obs.stable_on(day(17), &StabilityParams::nd(2));
        assert!(!s2.contains(x));
        assert!(s2.contains(y), "Mar 17 + Mar 19 is 2d-stable");

        // nd-stable implies (n-1)d-stable: s2 ⊆ s1.
        for addr in s2.iter() {
            assert!(s1.contains(addr));
        }
    }

    #[test]
    fn window_limits_witnesses() {
        let mut obs = DailyObservations::new();
        obs.record(day(17), set(&["2001:db8::1"]));
        obs.record(day(27), set(&["2001:db8::1"])); // 10 days later
        let p = StabilityParams::nd(3); // (-7d,+7d)
        assert!(obs.stable_on(day(17), &p).is_empty(), "outside window");
        let wide = p.with_window(7, 10);
        assert!(!obs.stable_on(day(17), &wide).is_empty());
    }

    #[test]
    fn backward_witnesses_count() {
        let mut obs = DailyObservations::new();
        obs.record(day(12), set(&["2001:db8::1"]));
        obs.record(day(17), set(&["2001:db8::1", "2001:db8::2"]));
        let s = obs.stable_on(day(17), &StabilityParams::nd(3));
        assert!(s.contains(a("2001:db8::1")));
        assert!(!s.contains(a("2001:db8::2")));
    }

    #[test]
    fn slew_tolerance_is_conservative() {
        let mut obs = DailyObservations::new();
        obs.record(day(17), set(&["2001:db8::1"]));
        obs.record(day(20), set(&["2001:db8::1"]));
        let p = StabilityParams::nd(3);
        assert_eq!(obs.stable_on(day(17), &p).len(), 1);
        // With 1-day slew, distance 3 no longer proves 3d-stability.
        assert!(obs.stable_on(day(17), &p.with_slew(1)).is_empty());
        // Distance 4 does.
        obs.record(day(21), set(&["2001:db8::1"]));
        assert_eq!(obs.stable_on(day(17), &p.with_slew(1)).len(), 1);
    }

    #[test]
    fn unobserved_reference_day_is_empty() {
        let obs = DailyObservations::new();
        assert!(obs
            .stable_on(day(17), &StabilityParams::three_day())
            .is_empty());
        assert!(obs.on(day(17)).is_empty());
    }

    #[test]
    fn not_stable_partitions_actives() {
        let mut obs = DailyObservations::new();
        obs.record(day(17), set(&["2001:db8::1", "2001:db8::2", "2001:db8::3"]));
        obs.record(day(20), set(&["2001:db8::1"]));
        let p = StabilityParams::three_day();
        let stable = obs.stable_on(day(17), &p);
        let not = obs.not_stable_on(day(17), &p);
        assert_eq!(stable.len() + not.len(), 3);
        assert_eq!(stable.intersection_len(&not), 0);
    }

    #[test]
    fn weekly_union_semantics() {
        let mut obs = DailyObservations::new();
        // Address A stable relative to Mar 18 (seen 18 and 23);
        // address B active only once.
        for d in [18u8, 23] {
            obs.record(day(d), set(&["2001:db8::a"]));
        }
        obs.record(day(19), set(&["2001:db8::b"]));
        let w = obs.stable_over_week(day(17), &StabilityParams::nd(3));
        assert_eq!(w.active.len(), 2);
        assert_eq!(w.stable.len(), 1);
        assert!(w.stable.contains(a("2001:db8::a")));
        assert_eq!(w.not_stable.len(), 1);
        assert!(w.not_stable.contains(a("2001:db8::b")));
        // Partition invariant: stable ∪ not = active, disjoint.
        assert_eq!(w.stable.len() + w.not_stable.len(), w.active.len());
    }

    #[test]
    fn epoch_stability() {
        let mut obs = DailyObservations::new();
        let mar14 = Day::from_ymd(2014, 3, 17);
        obs.record(mar14, set(&["2001:db8::1", "2001:db8::9"]));
        obs.record(day(17), set(&["2001:db8::1", "2001:db8::2"]));
        let e = obs.epoch_stable([day(17)], [mar14]);
        assert_eq!(e.stable.len(), 1);
        assert!(e.stable.contains(a("2001:db8::1")));
        assert_eq!(e.current_total, 2);
        assert!((e.fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prefix_view_generalizes_to_64s() {
        let mut obs = DailyObservations::new();
        // Two privacy addresses in the same /64 on different days: the
        // addresses are not stable, but the /64 is.
        obs.record(day(17), set(&["2001:db8:0:1:aaaa::1"]));
        obs.record(day(20), set(&["2001:db8:0:1:bbbb::2"]));
        let p = StabilityParams::three_day();
        assert!(obs.stable_on(day(17), &p).is_empty());
        let v64 = obs.prefix_view(64);
        let s = v64.stable_on(day(17), &p);
        assert_eq!(s.len(), 1);
        assert!(s.contains(a("2001:db8:0:1::")));
    }

    #[test]
    fn reference_overlap_series_shapes_figure_4() {
        let mut obs = DailyObservations::new();
        obs.record(day(16), set(&["2001:db8::1", "2001:db8::9"]));
        obs.record(day(17), set(&["2001:db8::1", "2001:db8::2"]));
        obs.record(day(18), set(&["2001:db8::2", "2001:db8::7"]));
        let series = obs.reference_overlap_series(day(17));
        assert_eq!(series.len(), 3);
        assert_eq!(series[0], (day(16), 2, 1));
        assert_eq!(series[1], (day(17), 2, 2)); // self-overlap is full
        assert_eq!(series[2], (day(18), 2, 1));
    }

    #[test]
    fn record_merges() {
        let mut obs = DailyObservations::new();
        obs.record(day(17), set(&["2001:db8::1"]));
        obs.record(day(17), set(&["2001:db8::2"]));
        assert_eq!(obs.on(day(17)).len(), 2);
        assert_eq!(obs.day_count(), 1);
        assert_eq!(obs.days().collect::<Vec<_>>(), vec![day(17)]);
    }

    #[test]
    fn coverage_distinguishes_inactive_from_missing() {
        let mut obs = DailyObservations::new();
        obs.record(day(17), set(&["2001:db8::1"]));
        obs.record(day(18), AddrSet::new()); // observed, nobody active
        assert!(obs.is_covered(day(17)));
        assert!(obs.is_covered(day(18)), "empty day is still covered");
        assert!(!obs.is_covered(day(19)), "never-ingested day is a gap");
        assert_eq!(obs.gaps_in(day(17), day(20)), vec![day(19), day(20)]);
    }

    #[test]
    fn gapped_verdict_complete_when_window_covered() {
        let mut obs = DailyObservations::new();
        for d in 10..=24u8 {
            obs.record(day(d), set(&["2001:db8::1"]));
        }
        let v = obs.stable_on_gapped(day(17), &StabilityParams::three_day(), GapPolicy::Flag);
        assert_eq!(v.quality, VerdictQuality::Complete);
        assert_eq!(v.stable.len(), 1);
        assert!(v.quality.is_conclusive());
    }

    #[test]
    fn flag_policy_downgrades_gapped_windows() {
        let mut obs = DailyObservations::new();
        obs.record(day(17), set(&["2001:db8::1"]));
        obs.record(day(18), set(&["2001:db8::1"]));
        // Days 10..=16 and 19..=24 never ingested.
        let v = obs.stable_on_gapped(day(17), &StabilityParams::three_day(), GapPolicy::Flag);
        match &v.quality {
            VerdictQuality::Unknown { missing } => {
                assert_eq!(missing.len(), 13);
                assert!(missing.contains(&day(10)) && missing.contains(&day(24)));
            }
            q => panic!("expected Unknown, got {q:?}"),
        }
        assert!(!v.quality.is_conclusive());
        // The stable set itself matches the legacy classifier.
        assert_eq!(
            v.stable.len(),
            obs.stable_on(day(17), &StabilityParams::three_day()).len()
        );
    }

    #[test]
    fn widen_policy_recovers_lost_witnesses() {
        let mut obs = DailyObservations::new();
        // Witness at distance 9 — outside (-7,+7). Days 13..=16 are gaps,
        // so widening by 4 restores reach to the day-8 witness.
        obs.record(day(8), set(&["2001:db8::1"]));
        for d in 9..=12u8 {
            obs.record(day(d), AddrSet::new());
        }
        obs.record(day(17), set(&["2001:db8::1"]));
        for d in 18..=24u8 {
            obs.record(day(d), AddrSet::new());
        }
        let p = StabilityParams::three_day();
        assert!(
            obs.stable_on(day(17), &p).is_empty(),
            "witness out of reach"
        );
        let v = obs.stable_on_gapped(day(17), &p, GapPolicy::Widen { max_extra: 7 });
        assert_eq!(
            v.quality,
            VerdictQuality::Widened {
                back_extra: 4,
                fwd_extra: 0
            }
        );
        assert_eq!(v.stable.len(), 1, "widened window reaches the witness");
        // The cap is honoured: back reach 7+1 = 8 stops short of day 8.
        let capped = obs.stable_on_gapped(day(17), &p, GapPolicy::Widen { max_extra: 1 });
        assert_eq!(
            capped.quality,
            VerdictQuality::Widened {
                back_extra: 1,
                fwd_extra: 0
            }
        );
        assert!(capped.stable.is_empty());
    }

    #[test]
    fn uncovered_reference_day_is_unknown() {
        let mut obs = DailyObservations::new();
        obs.record(day(10), set(&["2001:db8::1"]));
        let v = obs.stable_on_gapped(
            day(17),
            &StabilityParams::three_day(),
            GapPolicy::Widen { max_extra: 7 },
        );
        assert!(v.stable.is_empty());
        assert!(matches!(v.quality, VerdictQuality::Unknown { .. }));
    }

    #[test]
    fn assume_inactive_matches_legacy() {
        let mut obs = DailyObservations::new();
        obs.record(day(17), set(&["2001:db8::1"]));
        obs.record(day(20), set(&["2001:db8::1"]));
        let p = StabilityParams::three_day();
        let v = obs.stable_on_gapped(day(17), &p, GapPolicy::AssumeInactive);
        assert_eq!(v.quality, VerdictQuality::Complete);
        assert_eq!(v.stable.len(), obs.stable_on(day(17), &p).len());
    }

    #[test]
    fn labels() {
        assert_eq!(StabilityParams::nd(3).label(), "3d-stable (-7d,+7d)");
        assert_eq!(
            StabilityParams::nd(1).with_window(0, 14).label(),
            "1d-stable (-0d,+14d)"
        );
    }
}
