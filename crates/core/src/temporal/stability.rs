//! The nd-stable classifier over daily observation sets (§5.1).

use super::Day;
use std::collections::BTreeMap;
use v6census_trie::AddrSet;

/// Parameters of an nd-stability assessment.
///
/// Definition (§5.1): an address is **nd-stable** when there exist
/// observations of activity on two different days with an intervening
/// period of at least *n−1* days — equivalently, on two days at distance
/// ≥ *n*. Assessment is relative to a reference day inside a sliding
/// window spanning `back` days before through `fwd` days after; the
/// paper's canonical window is `(-7d,+7d)`.
///
/// `slew_tolerance` accommodates the log-processing timestamp slew of
/// §4.1: aggregated logs complete up to a day after the requests occurred,
/// so two "log processed dates" at distance *k* may reflect activity as
/// close as *k − slew* days apart. A non-zero tolerance makes the
/// classifier conservative by requiring distance ≥ *n + slew* before
/// declaring nd-stability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StabilityParams {
    /// The *n* of nd-stable: minimum day distance between observations.
    pub n: u32,
    /// Window reach before the reference day, in days.
    pub back: u32,
    /// Window reach after the reference day, in days.
    pub fwd: u32,
    /// Extra distance demanded to absorb log-timestamp slew (§4.1).
    pub slew_tolerance: u32,
}

impl StabilityParams {
    /// nd-stability with the paper's canonical `(-7d,+7d)` window and no
    /// slew tolerance.
    pub const fn nd(n: u32) -> StabilityParams {
        StabilityParams {
            n,
            back: 7,
            fwd: 7,
            slew_tolerance: 0,
        }
    }

    /// The paper's headline class: `3d-stable (-7d,+7d)`.
    pub const fn three_day() -> StabilityParams {
        StabilityParams::nd(3)
    }

    /// Replaces the window, keeping n and slew.
    pub const fn with_window(self, back: u32, fwd: u32) -> StabilityParams {
        StabilityParams { back, fwd, ..self }
    }

    /// Replaces the slew tolerance.
    pub const fn with_slew(self, slew_tolerance: u32) -> StabilityParams {
        StabilityParams {
            slew_tolerance,
            ..self
        }
    }

    /// The class label in the paper's notation, e.g. `3d-stable (-7d,+7d)`.
    pub fn label(&self) -> String {
        format!("{}d-stable (-{}d,+{}d)", self.n, self.back, self.fwd)
    }

    /// Effective minimum distance between observation days.
    fn min_distance(&self) -> u32 {
        self.n + self.slew_tolerance
    }
}

/// Per-day sets of active addresses (or prefixes): the input to temporal
/// classification.
///
/// The same engine classifies full addresses and /64s — record /64-mapped
/// sets (via [`AddrSet::map_prefix`]) in a second store, or use
/// [`DailyObservations::prefix_view`].
#[derive(Clone, Debug, Default)]
pub struct DailyObservations {
    days: BTreeMap<Day, AddrSet>,
}

/// The outcome of a weekly stability assessment (Table 2c/2d): for each of
/// the seven days the nd-stable set is determined; the weekly classes are
/// the unions.
#[derive(Clone, Debug)]
pub struct WeeklyStability {
    /// Unique addresses active during the week.
    pub active: AddrSet,
    /// Unique addresses nd-stable on at least one day of the week.
    pub stable: AddrSet,
    /// Unique active addresses never assessed nd-stable — the paper's
    /// "not nd-stable", meaning only that stability was not witnessed.
    pub not_stable: AddrSet,
}

/// The outcome of a cross-epoch stability assessment (the `6m-stable
/// (-6m)` and `1y-stable (-1y)` rows of Table 2).
#[derive(Clone, Debug)]
pub struct EpochStability {
    /// Addresses active in the current epoch and the earlier one.
    pub stable: AddrSet,
    /// Size of the current epoch's active set (the percentage base).
    pub current_total: usize,
}

impl EpochStability {
    /// The stable fraction of the current epoch's actives.
    pub fn fraction(&self) -> f64 {
        if self.current_total == 0 {
            0.0
        } else {
            self.stable.len() as f64 / self.current_total as f64
        }
    }
}

impl DailyObservations {
    /// Creates an empty store.
    pub fn new() -> DailyObservations {
        DailyObservations::default()
    }

    /// Records (or merges) the active set observed on `day`.
    pub fn record(&mut self, day: Day, set: AddrSet) {
        self.days
            .entry(day)
            .and_modify(|existing| *existing = existing.union(&set))
            .or_insert(set);
    }

    /// The active set for a day (empty when unobserved).
    pub fn on(&self, day: Day) -> AddrSet {
        self.days.get(&day).cloned().unwrap_or_default()
    }

    /// Borrowing accessor for a day's set.
    pub fn get(&self, day: Day) -> Option<&AddrSet> {
        self.days.get(&day)
    }

    /// The observed days in ascending order.
    pub fn days(&self) -> impl Iterator<Item = Day> + '_ {
        self.days.keys().copied()
    }

    /// Number of days with observations.
    pub fn day_count(&self) -> usize {
        self.days.len()
    }

    /// A store of the same days with every set mapped to its containing
    /// `/len` blocks — e.g. `prefix_view(64)` for the paper's /64
    /// stability analysis (Table 2b/2d).
    pub fn prefix_view(&self, len: u8) -> DailyObservations {
        DailyObservations {
            days: self
                .days
                .iter()
                .map(|(&d, set)| (d, set.map_prefix(len)))
                .collect(),
        }
    }

    /// Addresses active on `reference` that are nd-stable per `params`:
    /// also active on some observed day `d` in the window with
    /// `|d − reference| ≥ n + slew`.
    pub fn stable_on(&self, reference: Day, params: &StabilityParams) -> AddrSet {
        let active = match self.days.get(&reference) {
            Some(s) => s,
            None => return AddrSet::new(),
        };
        let lo = reference - params.back as i32;
        let hi = reference + params.fwd as i32;
        let min_d = params.min_distance() as i32;
        let witnesses: Vec<&AddrSet> = self
            .days
            .range(lo..=hi)
            .filter(|&(&d, _)| (d - reference).abs() >= min_d)
            .map(|(_, s)| s)
            .collect();
        // Union of witnesses ∩ active-on-reference.
        let mut out = AddrSet::new();
        for w in witnesses {
            out = out.union(&active.intersection(w));
        }
        out
    }

    /// Addresses active on `reference` but *not* witnessed nd-stable —
    /// the complement of [`DailyObservations::stable_on`] within the
    /// reference day's actives.
    pub fn not_stable_on(&self, reference: Day, params: &StabilityParams) -> AddrSet {
        let active = self.on(reference);
        let stable = self.stable_on(reference, params);
        AddrSet::from_iter(active.iter().filter(|&a| !stable.contains(a)))
    }

    /// Weekly stability (Table 2c/2d): for each day in
    /// `first..=first+6`, determine the nd-stable set; report unions.
    pub fn stable_over_week(&self, first: Day, params: &StabilityParams) -> WeeklyStability {
        self.stable_over_days(first.range_inclusive(first + 6), params)
    }

    /// Generalization of [`DailyObservations::stable_over_week`] to any
    /// set of reference days.
    pub fn stable_over_days<I: IntoIterator<Item = Day>>(
        &self,
        days: I,
        params: &StabilityParams,
    ) -> WeeklyStability {
        let mut active = AddrSet::new();
        let mut stable = AddrSet::new();
        for d in days {
            if let Some(s) = self.days.get(&d) {
                active = active.union(s);
            }
            stable = stable.union(&self.stable_on(d, params));
        }
        let not_stable = AddrSet::from_iter(active.iter().filter(|&a| !stable.contains(a)));
        WeeklyStability {
            active,
            stable,
            not_stable,
        }
    }

    /// Cross-epoch stability (the `6m-stable (-6m)` / `1y-stable (-1y)`
    /// rows): addresses active in the current epoch (union over
    /// `current`) that were also active in the earlier epoch (union over
    /// `earlier`). The percentage base is the current epoch's active
    /// count.
    pub fn epoch_stable(
        &self,
        current: impl IntoIterator<Item = Day>,
        earlier: impl IntoIterator<Item = Day>,
    ) -> EpochStability {
        let cur = AddrSet::union_all(current.into_iter().filter_map(|d| self.days.get(&d)));
        let old = AddrSet::union_all(earlier.into_iter().filter_map(|d| self.days.get(&d)));
        EpochStability {
            stable: cur.intersection(&old),
            current_total: cur.len(),
        }
    }

    /// The Figure 4 series: for every observed day, the day's active
    /// count and the size of its intersection with the reference day's
    /// active set.
    pub fn reference_overlap_series(&self, reference: Day) -> Vec<(Day, usize, usize)> {
        let ref_set = self.on(reference);
        self.days
            .iter()
            .map(|(&d, s)| (d, s.len(), ref_set.intersection_len(s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_addr::Addr;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn set(addrs: &[&str]) -> AddrSet {
        AddrSet::from_iter(addrs.iter().map(|s| a(s)))
    }

    fn day(d: u8) -> Day {
        Day::from_ymd(2015, 3, d)
    }

    #[test]
    fn paper_examples_from_section_5_1() {
        // "A given address seen on March 17 and again on March 18 ... is
        // 1d-stable. An address seen on March 17 and on March 19 ... is
        // 2d-stable [and therefore also 1d-stable]."
        let mut obs = DailyObservations::new();
        let x = a("2001:db8::1718");
        let y = a("2001:db8::1719");
        obs.record(day(17), set(&["2001:db8::1718", "2001:db8::1719"]));
        obs.record(day(18), set(&["2001:db8::1718"]));
        obs.record(day(19), set(&["2001:db8::1719"]));

        let s1 = obs.stable_on(day(17), &StabilityParams::nd(1));
        assert!(s1.contains(x));
        assert!(s1.contains(y));

        let s2 = obs.stable_on(day(17), &StabilityParams::nd(2));
        assert!(!s2.contains(x));
        assert!(s2.contains(y), "Mar 17 + Mar 19 is 2d-stable");

        // nd-stable implies (n-1)d-stable: s2 ⊆ s1.
        for addr in s2.iter() {
            assert!(s1.contains(addr));
        }
    }

    #[test]
    fn window_limits_witnesses() {
        let mut obs = DailyObservations::new();
        obs.record(day(17), set(&["2001:db8::1"]));
        obs.record(day(27), set(&["2001:db8::1"])); // 10 days later
        let p = StabilityParams::nd(3); // (-7d,+7d)
        assert!(obs.stable_on(day(17), &p).is_empty(), "outside window");
        let wide = p.with_window(7, 10);
        assert!(!obs.stable_on(day(17), &wide).is_empty());
    }

    #[test]
    fn backward_witnesses_count() {
        let mut obs = DailyObservations::new();
        obs.record(day(12), set(&["2001:db8::1"]));
        obs.record(day(17), set(&["2001:db8::1", "2001:db8::2"]));
        let s = obs.stable_on(day(17), &StabilityParams::nd(3));
        assert!(s.contains(a("2001:db8::1")));
        assert!(!s.contains(a("2001:db8::2")));
    }

    #[test]
    fn slew_tolerance_is_conservative() {
        let mut obs = DailyObservations::new();
        obs.record(day(17), set(&["2001:db8::1"]));
        obs.record(day(20), set(&["2001:db8::1"]));
        let p = StabilityParams::nd(3);
        assert_eq!(obs.stable_on(day(17), &p).len(), 1);
        // With 1-day slew, distance 3 no longer proves 3d-stability.
        assert!(obs.stable_on(day(17), &p.with_slew(1)).is_empty());
        // Distance 4 does.
        obs.record(day(21), set(&["2001:db8::1"]));
        assert_eq!(obs.stable_on(day(17), &p.with_slew(1)).len(), 1);
    }

    #[test]
    fn unobserved_reference_day_is_empty() {
        let obs = DailyObservations::new();
        assert!(obs.stable_on(day(17), &StabilityParams::three_day()).is_empty());
        assert!(obs.on(day(17)).is_empty());
    }

    #[test]
    fn not_stable_partitions_actives() {
        let mut obs = DailyObservations::new();
        obs.record(day(17), set(&["2001:db8::1", "2001:db8::2", "2001:db8::3"]));
        obs.record(day(20), set(&["2001:db8::1"]));
        let p = StabilityParams::three_day();
        let stable = obs.stable_on(day(17), &p);
        let not = obs.not_stable_on(day(17), &p);
        assert_eq!(stable.len() + not.len(), 3);
        assert_eq!(stable.intersection_len(&not), 0);
    }

    #[test]
    fn weekly_union_semantics() {
        let mut obs = DailyObservations::new();
        // Address A stable relative to Mar 18 (seen 18 and 23);
        // address B active only once.
        for d in [18u8, 23] {
            obs.record(day(d), set(&["2001:db8::a"]));
        }
        obs.record(day(19), set(&["2001:db8::b"]));
        let w = obs.stable_over_week(day(17), &StabilityParams::nd(3));
        assert_eq!(w.active.len(), 2);
        assert_eq!(w.stable.len(), 1);
        assert!(w.stable.contains(a("2001:db8::a")));
        assert_eq!(w.not_stable.len(), 1);
        assert!(w.not_stable.contains(a("2001:db8::b")));
        // Partition invariant: stable ∪ not = active, disjoint.
        assert_eq!(w.stable.len() + w.not_stable.len(), w.active.len());
    }

    #[test]
    fn epoch_stability() {
        let mut obs = DailyObservations::new();
        let mar14 = Day::from_ymd(2014, 3, 17);
        obs.record(mar14, set(&["2001:db8::1", "2001:db8::9"]));
        obs.record(day(17), set(&["2001:db8::1", "2001:db8::2"]));
        let e = obs.epoch_stable([day(17)], [mar14]);
        assert_eq!(e.stable.len(), 1);
        assert!(e.stable.contains(a("2001:db8::1")));
        assert_eq!(e.current_total, 2);
        assert!((e.fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prefix_view_generalizes_to_64s() {
        let mut obs = DailyObservations::new();
        // Two privacy addresses in the same /64 on different days: the
        // addresses are not stable, but the /64 is.
        obs.record(day(17), set(&["2001:db8:0:1:aaaa::1"]));
        obs.record(day(20), set(&["2001:db8:0:1:bbbb::2"]));
        let p = StabilityParams::three_day();
        assert!(obs.stable_on(day(17), &p).is_empty());
        let v64 = obs.prefix_view(64);
        let s = v64.stable_on(day(17), &p);
        assert_eq!(s.len(), 1);
        assert!(s.contains(a("2001:db8:0:1::")));
    }

    #[test]
    fn reference_overlap_series_shapes_figure_4() {
        let mut obs = DailyObservations::new();
        obs.record(day(16), set(&["2001:db8::1", "2001:db8::9"]));
        obs.record(day(17), set(&["2001:db8::1", "2001:db8::2"]));
        obs.record(day(18), set(&["2001:db8::2", "2001:db8::7"]));
        let series = obs.reference_overlap_series(day(17));
        assert_eq!(series.len(), 3);
        assert_eq!(series[0], (day(16), 2, 1));
        assert_eq!(series[1], (day(17), 2, 2)); // self-overlap is full
        assert_eq!(series[2], (day(18), 2, 1));
    }

    #[test]
    fn record_merges() {
        let mut obs = DailyObservations::new();
        obs.record(day(17), set(&["2001:db8::1"]));
        obs.record(day(17), set(&["2001:db8::2"]));
        assert_eq!(obs.on(day(17)).len(), 2);
        assert_eq!(obs.day_count(), 1);
        assert_eq!(obs.days().collect::<Vec<_>>(), vec![day(17)]);
    }

    #[test]
    fn labels() {
        assert_eq!(StabilityParams::nd(3).label(), "3d-stable (-7d,+7d)");
        assert_eq!(
            StabilityParams::nd(1).with_window(0, 14).label(),
            "1d-stable (-0d,+14d)"
        );
    }
}
