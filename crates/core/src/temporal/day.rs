//! [`Day`]: a calendar day, as a count of days since the Unix epoch.
//!
//! The census operates on "log processed dates" at one-day granularity
//! (§4.1) — a full time library would be overkill, and the paper's
//! analyses need only day arithmetic, ordering, and calendar round-trips.
//! Civil-calendar conversion uses the standard days-from-civil algorithm
//! (Howard Hinnant's public-domain derivation), valid across the proleptic
//! Gregorian calendar.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A calendar day: days since 1970-01-01 (which is `Day(0)`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Day(pub i32);

impl Day {
    /// Builds a day from a Gregorian calendar date.
    ///
    /// # Panics
    /// Panics if the month or day are out of range for the given month
    /// (leap years honoured).
    pub fn from_ymd(year: i32, month: u8, day: u8) -> Day {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day {day} out of range for {year}-{month:02}"
        );
        // days_from_civil (Hinnant): era-based conversion.
        let y = if month <= 2 { year - 1 } else { year } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = month as i64;
        let d = day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        Day((era * 146097 + doe - 719468) as i32)
    }

    /// Returns `(year, month, day)` in the Gregorian calendar.
    pub fn to_ymd(self) -> (i32, u8, u8) {
        // civil_from_days (Hinnant).
        let z = self.0 as i64 + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
        ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
    }

    /// The year.
    pub fn year(self) -> i32 {
        self.to_ymd().0
    }

    /// The month (1..=12).
    pub fn month(self) -> u8 {
        self.to_ymd().1
    }

    /// The day of month (1..=31).
    pub fn day_of_month(self) -> u8 {
        self.to_ymd().2
    }

    /// Short month-day label in the style of the paper's Figure 4 axis,
    /// e.g. `Mar-17`.
    pub fn md_label(self) -> String {
        let (_, m, d) = self.to_ymd();
        format!("{}-{:02}", MONTH_ABBR[m as usize - 1], d)
    }

    /// Paper-style date label, e.g. `Mar 17, 2015` (Table 1 headers).
    pub fn paper_label(self) -> String {
        let (y, m, d) = self.to_ymd();
        format!("{} {}, {}", MONTH_ABBR[m as usize - 1], d, y)
    }

    /// An inclusive iterator over `self..=last`.
    pub fn range_inclusive(self, last: Day) -> impl Iterator<Item = Day> {
        (self.0..=last.0).map(Day)
    }
}

const MONTH_ABBR: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(year) => 29,
        2 => 28,
        // 1/3/5/7/8/10/12 — and, defensively, any out-of-range month the
        // callers' validation should have rejected.
        _ => 31,
    }
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

impl Add<i32> for Day {
    type Output = Day;
    fn add(self, rhs: i32) -> Day {
        Day(self.0 + rhs)
    }
}

impl AddAssign<i32> for Day {
    fn add_assign(&mut self, rhs: i32) {
        self.0 += rhs;
    }
}

impl Sub<i32> for Day {
    type Output = Day;
    fn sub(self, rhs: i32) -> Day {
        Day(self.0 - rhs)
    }
}

impl SubAssign<i32> for Day {
    fn sub_assign(&mut self, rhs: i32) {
        self.0 -= rhs;
    }
}

impl Sub<Day> for Day {
    type Output = i32;
    /// Signed distance in days.
    fn sub(self, rhs: Day) -> i32 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Day {
    /// ISO 8601 date, e.g. `2015-03-17`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Day::from_ymd(1970, 1, 1), Day(0));
        assert_eq!(Day(0).to_ymd(), (1970, 1, 1));
    }

    #[test]
    fn paper_dates() {
        let mar17_2015 = Day::from_ymd(2015, 3, 17);
        let sep17_2014 = Day::from_ymd(2014, 9, 17);
        let mar17_2014 = Day::from_ymd(2014, 3, 17);
        assert_eq!(mar17_2015 - sep17_2014, 181);
        assert_eq!(mar17_2015 - mar17_2014, 365);
        assert_eq!(mar17_2015.paper_label(), "Mar 17, 2015");
        assert_eq!(mar17_2015.md_label(), "Mar-17");
        assert_eq!(mar17_2015.to_string(), "2015-03-17");
    }

    #[test]
    fn roundtrip_across_years() {
        for day in [-1000, -1, 0, 1, 59, 60, 365, 16000, 16500, 20000] {
            let d = Day(day);
            let (y, m, dd) = d.to_ymd();
            assert_eq!(Day::from_ymd(y, m, dd), d, "roundtrip failed for {day}");
        }
    }

    #[test]
    fn leap_years() {
        assert_eq!(Day::from_ymd(2016, 2, 29) - Day::from_ymd(2016, 2, 28), 1);
        assert_eq!(Day::from_ymd(2016, 3, 1) - Day::from_ymd(2016, 2, 29), 1);
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(2016));
        assert!(!is_leap(2015));
    }

    #[test]
    #[should_panic(expected = "day 29 out of range")]
    fn rejects_bad_feb() {
        Day::from_ymd(2015, 2, 29);
    }

    #[test]
    fn arithmetic() {
        let d = Day::from_ymd(2015, 3, 17);
        assert_eq!((d + 7).to_ymd(), (2015, 3, 24));
        assert_eq!((d - 7).to_ymd(), (2015, 3, 10));
        let mut e = d;
        e += 1;
        assert_eq!(e.to_ymd(), (2015, 3, 18));
        e -= 2;
        assert_eq!(e.to_ymd(), (2015, 3, 16));
        assert_eq!(
            d.range_inclusive(d + 2).collect::<Vec<_>>(),
            vec![d, d + 1, d + 2]
        );
    }
}
