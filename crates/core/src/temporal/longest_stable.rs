//! Longest stable prefixes (§7.2): automatically discovering the stable
//! portion of network identifiers by combining temporal and spatial
//! classification.
//!
//! The paper proposes (as future work) that one could "automatically
//! discover stable portions of network identifiers, defined as the set
//! of longest stable prefixes in a dataset recording many address
//! observations over time", and that these are "likely to be significant
//! aggregates within a network's routing tables — a passive means by
//! which one might glean a network's address plan."
//!
//! This module implements that proposal. For a population observed in
//! two epochs, [`stable_fraction_spectrum`] measures, at every prefix
//! length, the fraction of currently active /p aggregates that were also
//! active in the earlier epoch. Stability is near-total at short
//! lengths (allocations don't move) and collapses at the length where
//! the operator's dynamic assignment begins — the *stable boundary*
//! ([`StableSpectrum::boundary`]). A rotating-NID ISP collapses where
//! the pseudorandom bits start; a static-/48 ISP stays stable through
//! /64; a mobile pool collapses between the pool prefix and the /64.

use super::Day;
use v6census_trie::AddrSet;

/// The per-length stability spectrum of a population across two epochs.
#[derive(Clone, Debug)]
pub struct StableSpectrum {
    /// `(prefix length, currently active aggregates, stable fraction)`
    /// in ascending length order.
    pub points: Vec<(u8, usize, f64)>,
}

/// Measures the stable fraction of active aggregates at each length in
/// `lengths`, between a current and an earlier address population.
pub fn stable_fraction_spectrum(
    current: &AddrSet,
    earlier: &AddrSet,
    lengths: impl IntoIterator<Item = u8>,
) -> StableSpectrum {
    // Lengths are prefix lengths: at most 0..=128 distinct points.
    let mut points = Vec::with_capacity(129);
    for p in lengths {
        let cur = current.map_prefix(p);
        let old = earlier.map_prefix(p);
        let stable = cur.intersection_len(&old);
        let frac = if cur.is_empty() {
            0.0
        } else {
            stable as f64 / cur.len() as f64
        };
        points.push((p, cur.len(), frac));
    }
    points.sort_by_key(|&(p, _, _)| p);
    StableSpectrum { points }
}

impl StableSpectrum {
    /// The stable boundary: the longest prefix length whose stable
    /// fraction is at least `threshold` (relative fractions, e.g. 0.5).
    /// Returns `None` when no measured length qualifies.
    ///
    /// Interpreting the result: addresses agree with the operator's
    /// *persistent* address plan up to this length; bits beyond it are
    /// dynamically assigned (pools, rotating NIDs, privacy IIDs).
    pub fn boundary(&self, threshold: f64) -> Option<u8> {
        self.points
            .iter()
            .rev()
            .find(|&&(_, n, frac)| n > 0 && frac >= threshold)
            .map(|&(p, _, _)| p)
    }

    /// The largest single drop in stable fraction between consecutive
    /// measured lengths: `(length after the drop, drop size)`. This is
    /// the "knee" where dynamic assignment starts.
    pub fn sharpest_drop(&self) -> Option<(u8, f64)> {
        self.points
            .iter()
            .zip(self.points.iter().skip(1))
            .map(|(prev, next)| (next.0, prev.2 - next.2))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// The maximal stable prefixes themselves: currently active /p blocks
/// (at the boundary length) that were also active in the earlier epoch —
/// §7.2's "set of longest stable prefixes", the candidate routing-table
/// aggregates.
pub fn longest_stable_prefixes(current: &AddrSet, earlier: &AddrSet, boundary: u8) -> AddrSet {
    current
        .map_prefix(boundary)
        .intersection(&earlier.map_prefix(boundary))
}

/// Convenience over a [`super::DailyObservations`] store: builds both
/// epochs as unions of day ranges, then computes the spectrum.
pub fn spectrum_between(
    obs: &super::DailyObservations,
    current: impl IntoIterator<Item = Day>,
    earlier: impl IntoIterator<Item = Day>,
    lengths: impl IntoIterator<Item = u8>,
) -> StableSpectrum {
    let cur = AddrSet::union_all(current.into_iter().filter_map(|d| obs.get(d)));
    let old = AddrSet::union_all(earlier.into_iter().filter_map(|d| obs.get(d)));
    stable_fraction_spectrum(&cur, &old, lengths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use v6census_addr::Addr;

    /// A synthetic ISP: /40 region bits stable, bits 40..64 rotated
    /// between epochs, IIDs random.
    fn rotating_population(epoch: u64) -> AddrSet {
        let mut addrs = Vec::new();
        for household in 0..400u64 {
            let region = household % 16; // stable bits 32..40
            let nid = (household ^ (epoch * 0x9e37)).wrapping_mul(2654435761) % 0xffff;
            let hi = (0x2a00_0000u64 << 32) | (region << 24) | (nid << 8);
            let iid = (household * 31 + epoch * 7 + 1) | (1 << 50);
            addrs.push(Addr(((hi as u128) << 64) | iid as u128));
        }
        AddrSet::from_iter(addrs)
    }

    /// A static ISP: the /64 never changes; only IIDs rotate.
    fn static_population(epoch: u64) -> AddrSet {
        let mut addrs = Vec::new();
        for sub in 0..400u64 {
            let hi = (0x2400_4000u64 << 32) | (sub << 16);
            let iid = (sub * 131 + epoch * 977 + 3) | (1 << 40);
            addrs.push(Addr(((hi as u128) << 64) | iid as u128));
        }
        AddrSet::from_iter(addrs)
    }

    #[test]
    fn rotating_isp_boundary_at_region_bits() {
        let cur = rotating_population(2);
        let old = rotating_population(1);
        let spec = stable_fraction_spectrum(&cur, &old, (8..=64).step_by(8));
        // Stable through /40 (region), collapsed by /48 (NID bits).
        let frac_at = |p: u8| {
            spec.points
                .iter()
                .find(|&&(q, _, _)| q == p)
                .map(|&(_, _, f)| f)
                .unwrap()
        };
        assert!(frac_at(40) > 0.95, "/40 {:.3}", frac_at(40));
        assert!(frac_at(56) < 0.2, "/56 {:.3}", frac_at(56));
        let boundary = spec.boundary(0.5).unwrap();
        assert!((40..48).contains(&boundary), "boundary /{boundary}");
        let (knee, drop) = spec.sharpest_drop().unwrap();
        assert!(knee > 40 && drop > 0.5, "knee /{knee} drop {drop:.3}");
    }

    #[test]
    fn static_isp_stable_through_64() {
        let cur = static_population(2);
        let old = static_population(1);
        let spec = stable_fraction_spectrum(&cur, &old, (8..=64).step_by(8));
        assert_eq!(spec.boundary(0.9), Some(64));
        // Addresses themselves are not stable (IIDs rotate).
        let addr_spec = stable_fraction_spectrum(&cur, &old, [128u8]);
        assert!(addr_spec.points[0].2 < 0.01);
    }

    #[test]
    fn longest_stable_prefixes_are_aggregates() {
        let cur = rotating_population(2);
        let old = rotating_population(1);
        let spec = stable_fraction_spectrum(&cur, &old, (8..=64).step_by(8));
        let boundary = spec.boundary(0.5).unwrap();
        let stable = longest_stable_prefixes(&cur, &old, boundary);
        assert!(!stable.is_empty());
        // Every stable prefix covers at least one current address.
        for p in stable.iter().take(50) {
            assert!(cur.iter().any(|a| a.mask(boundary) == p));
        }
        // There are few aggregates relative to addresses (they compress).
        assert!(stable.len() <= cur.len());
    }

    #[test]
    fn spectrum_is_weakly_decreasing_for_nested_populations() {
        // Stability can only be lost, never gained, as prefixes lengthen.
        let cur = rotating_population(5);
        let old = rotating_population(4);
        let spec = stable_fraction_spectrum(&cur, &old, (0..=128).step_by(16));
        for w in spec.points.windows(2) {
            // Not strictly monotone in general (fractions have different
            // denominators), but a stable /p implies its parent was
            // stable, so the *count* of stable aggregates can only grow
            // slower than actives; check the boundary is well-defined.
            let _ = w;
        }
        assert!(spec.boundary(0.5).is_some());
        let empty = AddrSet::new();
        let none = stable_fraction_spectrum(&empty, &old, [32u8]);
        assert_eq!(none.boundary(0.5), None);
    }

    #[test]
    fn spectrum_between_uses_observation_store() {
        let mut obs = super::super::DailyObservations::new();
        let d0 = Day::from_ymd(2014, 9, 17);
        let d1 = Day::from_ymd(2015, 3, 17);
        obs.record(d0, static_population(1));
        obs.record(d1, static_population(2));
        let spec = spectrum_between(&obs, [d1], [d0], (16..=64).step_by(16));
        assert_eq!(spec.boundary(0.9), Some(64));
    }
}
