//! Temporal classification (§5.1): address and prefix stability over time.

mod day;
mod longest_stable;
mod stability;

pub use day::Day;
pub use longest_stable::{
    longest_stable_prefixes, spectrum_between, stable_fraction_spectrum, StableSpectrum,
};
pub use stability::{
    DailyObservations, EpochStability, GapPolicy, StabilityParams, StabilityVerdict,
    VerdictQuality, WeeklyStability,
};
