//! R003 lock-order: a compositional proof that the workspace's lock
//! acquisition graph is acyclic, plus the guard-scope machinery that
//! R004 (blocking-under-lock, see [`crate::effects`]) builds on.
//!
//! The serving daemon's robustness posture leans on a handful of
//! `Mutex`/`RwLock` cells (the snapshot pointer, the supervisor's job
//! queue and degradation list, the in-memory and fault-injecting VFS
//! states). A deadlock between any two of them would hang the hot path
//! in a way no chaos drill is guaranteed to sample. This pass proves it
//! cannot happen, RacerD-style, without running the code:
//!
//! 1. **Lock registry** — every struct field and `static` whose
//!    declared type is `Mutex<…>`/`RwLock<…>` becomes a lock identity
//!    (`Type.field` or the static's name). `Condvar` fields are
//!    recorded too, so `cv.wait(guard)` — which atomically *releases*
//!    the guard — is never mistaken for blocking under it.
//! 2. **Per-function summaries** — walking each body's token stream,
//!    `recv.lock()` / `recv.read()` / `recv.write()` sites whose
//!    receiver resolves to a registered lock (by `self`-field identity,
//!    unique field name, static name, or lock-typed parameter) become
//!    acquisitions with a computed guard scope: a `let`-bound guard
//!    lives to the end of its enclosing block or an explicit
//!    `drop(name)`, a temporary dies at its statement's `;`. Functions
//!    that *return* a guard (`-> MutexGuard<…>`) are lock helpers: a
//!    call to one is an acquisition at the call site, with the lock
//!    taken from the helper's own summary or its lock-typed argument.
//! 3. **Interprocedural lifting** — each function's transitively
//!    acquired lock set is propagated over [`crate::callgraph`] to a
//!    fixpoint. Call edges that merely *are* an acquisition site
//!    (`.lock()` resolving by method name to some workspace `fn lock`)
//!    are skipped: the acquisition is modelled precisely above, and the
//!    name-match edge is an artifact of conservative call resolution.
//! 4. **Lock-order graph** — while a guard for lock `X` is live, every
//!    acquisition of lock `Y` (directly in scope, or anywhere inside a
//!    callee reached from the scope) contributes an edge `X → Y`. Rule
//!    **R003** proves this graph acyclic; a cycle prints one witness
//!    chain per edge (`fn A holds X → … → acquires Y` vs. the reverse
//!    chain), R001-style.
//!
//! Like the call graph itself, the analysis has no alias analysis:
//! guards are tracked by field/static identity, not by points-to sets.
//! Receivers that cannot be resolved to a registered lock contribute no
//! acquisition — so the proof is exactly as strong as the workspace's
//! (enforced) habit of locking through named fields, statics, and the
//! poison-surviving helper fns, and DESIGN.md §7 documents the gap.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::Call;
use crate::config::Config;
use crate::effects;
use crate::lexer::{TokKind, Token};
use crate::report::Diagnostic;
use crate::rules::{semantic_finding, SemanticRule, Workspace};

/// What kind of synchronisation primitive a declaration is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockKind {
    /// `std::sync::Mutex` — acquired with `.lock()`.
    Mutex,
    /// `std::sync::RwLock` — acquired with `.read()` / `.write()`.
    RwLock,
}

/// One registered lock: a struct field or a static with a lock type.
#[derive(Clone, Debug)]
pub struct LockDecl {
    /// Display identity: `Type.field` for fields, `NAME` for statics.
    pub id: String,
    /// Owning struct for fields, `None` for statics.
    pub owner: Option<String>,
    /// Field or static name.
    pub name: String,
    /// Mutex or RwLock.
    pub kind: LockKind,
    /// Index of the declaring file.
    pub file: usize,
    /// 1-based declaration line.
    pub line: usize,
}

/// Where an acquisition got its lock identity from.
#[derive(Clone, Debug, PartialEq, Eq)]
enum LockRef {
    /// A registered lock (index into the registry).
    Concrete(usize),
    /// The caller decides: the acquisition is on a lock-typed
    /// parameter (helper fns like `fn lock<T>(m: &Mutex<T>)`).
    Param(usize),
}

/// One lock acquisition inside a function body.
#[derive(Clone, Debug)]
pub struct Acquisition {
    /// Registry index of the acquired lock.
    pub lock: usize,
    /// 1-based line of the acquiring call.
    pub line: usize,
    /// Token index of the call's `(` in the owning file's stream.
    pub paren: usize,
    /// Guard liveness as a token-index range `[start, end)` in the
    /// owning file's stream; `None` when the guard escapes (the fn
    /// returns it) — its scope belongs to the caller.
    pub scope: Option<(usize, usize)>,
}

/// Per-function lock summary.
#[derive(Clone, Debug, Default)]
pub struct FnLocks {
    /// Locally scoped acquisitions, in source order.
    pub acquired: Vec<Acquisition>,
    /// Set when the fn hands its guard to the caller: the registry
    /// index of the returned guard's lock, or the lock-typed parameter
    /// it forwards.
    returns_guard: Option<LockRef>,
    /// Token indices of call-`(`s that are themselves acquisition
    /// sites or condvar waits — their name-resolved call edges are
    /// artifacts and must not be lifted.
    pub skip_parens: BTreeSet<usize>,
}

/// One directed edge of the lock-order graph, with its witness.
#[derive(Clone, Debug)]
pub struct LockEdge {
    /// Held lock (registry index).
    pub from: usize,
    /// Acquired-while-held lock (registry index).
    pub to: usize,
    /// Human witness: `fn F holds X (file:line) → … acquires Y (…)`.
    pub witness: String,
    /// File index and line anchoring a diagnostic for this edge.
    pub file: usize,
    /// 1-based line of the holding acquisition.
    pub line: usize,
}

/// Counters for `BENCH_lint.json`'s `locks` block.
#[derive(Clone, Copy, Debug, Default)]
pub struct LockStats {
    /// Functions with a computed lock/effect summary.
    pub fns_summarized: usize,
    /// Registered Mutex/RwLock fields and statics.
    pub locks_found: usize,
    /// Distinct edges in the lock-order graph.
    pub lock_edges: usize,
    /// Guard-scope × (call | effect) obligations examined for R004.
    pub effect_obligations: usize,
    /// Obligations proven non-blocking.
    pub proven: usize,
    /// True when the lock-order graph has no cycle.
    pub acyclic: bool,
}

/// The full analysis result: R003 + R004 findings plus the counters.
#[derive(Debug, Default)]
pub struct LockAnalysis {
    /// R003 lock-order cycle findings.
    pub cycle_findings: Vec<Diagnostic>,
    /// R004 blocking-under-lock findings.
    pub blocking_findings: Vec<Diagnostic>,
    /// The lock-order graph, one witness per distinct `X → Y` pair.
    pub edges: Vec<LockEdge>,
    /// Bench counters.
    pub stats: LockStats,
}

// ---------------------------------------------------------------- rules

/// R003 lock-order as a registered semantic rule.
pub struct LockOrder;

impl SemanticRule for LockOrder {
    fn id(&self) -> &'static str {
        "R003"
    }
    fn name(&self) -> &'static str {
        "lock-order"
    }
    fn describe(&self) -> &'static str {
        "the interprocedural lock-acquisition graph over every Mutex/RwLock field and static must be acyclic"
    }
    fn check(&self, ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
        out.extend(analyze(ws, cfg).cycle_findings);
    }
}

/// Runs the combined lock/effect analysis once. The engine calls this
/// directly (like R002's `dataflow::analyze`) so R003 and R004 share
/// one pass; the rule impls exist for `--list-rules` and direct tests.
pub fn analyze(ws: &Workspace<'_>, _cfg: &Config) -> LockAnalysis {
    let registry = build_registry(ws);
    let condvars = condvar_fields(ws);
    let mut summaries: Vec<FnLocks> = Vec::with_capacity(ws.symbols.fns.len());
    // Pass 1: signature-level facts (guard-returning helpers) plus
    // direct field/static/param acquisitions.
    let mut direct: Vec<FnLocks> = Vec::new();
    for (id, _) in ws.symbols.fns.iter().enumerate() {
        direct.push(scan_fn(ws, id, &registry, &condvars));
    }
    // Pass 2: add acquisitions made through guard-returning helpers,
    // now that every helper's summary is known.
    for (id, _) in ws.symbols.fns.iter().enumerate() {
        let mut s = direct[id].clone();
        helper_acquisitions(ws, id, &registry, &direct, &mut s);
        s.acquired.sort_by_key(|a| a.paren);
        summaries.push(s);
    }

    let trans = transitive_locks(ws, &summaries);
    let effects = effects::summarize(ws, &summaries);
    let edges = order_edges(ws, &registry, &summaries, &trans);

    let mut analysis = LockAnalysis {
        stats: LockStats {
            fns_summarized: summaries
                .iter()
                .zip(ws.symbols.fns.iter())
                .filter(|(_, f)| f.body.is_some() && !f.is_test)
                .count(),
            locks_found: registry.len(),
            lock_edges: edges.len(),
            ..LockStats::default()
        },
        ..LockAnalysis::default()
    };
    analysis.stats.acyclic = report_cycles(ws, &registry, &edges, &mut analysis.cycle_findings);
    analysis.edges = edges;
    effects::blocking_under_lock(
        ws,
        &registry,
        &summaries,
        &effects,
        &mut analysis.blocking_findings,
        &mut analysis.stats,
    );
    analysis
}

// ------------------------------------------------------- lock registry

/// Comment-free tokens of one file, with original indices.
fn code_tokens(tokens: &[Token]) -> Vec<(usize, &Token)> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                TokKind::LineComment { .. } | TokKind::BlockComment { .. }
            )
        })
        .collect()
}

/// True when the type tokens starting at `i` name a lock, looking
/// through leading path segments (`std :: sync :: Mutex`).
fn lock_ty_at(toks: &[(usize, &Token)], mut i: usize) -> Option<LockKind> {
    for _ in 0..4 {
        let (_, t) = toks.get(i)?;
        if t.kind != TokKind::Ident {
            return None;
        }
        match t.text.as_str() {
            "Mutex" => return Some(LockKind::Mutex),
            "RwLock" => return Some(LockKind::RwLock),
            _ => {
                if toks.get(i + 1).is_some_and(|(_, n)| n.is_op("::")) {
                    i += 2;
                } else {
                    return None;
                }
            }
        }
    }
    None
}

/// Scans every file for lock-typed struct fields and statics.
pub fn build_registry(ws: &Workspace<'_>) -> Vec<LockDecl> {
    let mut out = Vec::new();
    for (fidx, file) in ws.files.iter().enumerate() {
        let toks = code_tokens(&file.tokens);
        let mut i = 0usize;
        while i < toks.len() {
            let (_, t) = toks[i];
            if t.is_ident("struct") {
                scan_struct_fields(&toks, i, fidx, &mut out);
            } else if t.is_ident("static") {
                // `static NAME : <lock type> = …`.
                let name = toks.get(i + 1).filter(|(_, n)| n.kind == TokKind::Ident);
                let colon = toks.get(i + 2).is_some_and(|(_, c)| c.is_op(":"));
                if let (Some((_, name)), true) = (name, colon) {
                    if let Some(kind) = lock_ty_at(&toks, i + 3) {
                        out.push(LockDecl {
                            id: name.text.clone(),
                            owner: None,
                            name: name.text.clone(),
                            kind,
                            file: fidx,
                            line: name.line,
                        });
                    }
                }
            }
            i += 1;
        }
    }
    out
}

/// Registers the lock-typed fields of one `struct Name { … }`.
fn scan_struct_fields(toks: &[(usize, &Token)], at: usize, fidx: usize, out: &mut Vec<LockDecl>) {
    let Some((_, name)) = toks.get(at + 1).filter(|(_, t)| t.kind == TokKind::Ident) else {
        return;
    };
    let struct_name = name.text.clone();
    // Find the body `{`, skipping generics; `;` means a unit/tuple
    // struct (no named lock fields to register).
    let mut i = at + 2;
    let mut angle = 0i64;
    let open = loop {
        let Some((_, t)) = toks.get(i) else { return };
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            "<<" => angle += 2,
            "{" if angle <= 0 => break i,
            ";" | "(" if angle <= 0 => return,
            _ => {}
        }
        i += 1;
    };
    // Walk `field : Type` pairs at depth 1.
    let mut depth = 1i64;
    let mut i = open + 1;
    while i < toks.len() && depth > 0 {
        let (_, t) = toks[i];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {}
        }
        if depth == 1
            && t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|(_, c)| c.is_op(":"))
            && toks
                .get(i.wrapping_sub(1))
                .is_none_or(|(_, p)| matches!(p.text.as_str(), "{" | "," | "pub" | ")"))
        {
            if let Some(kind) = lock_ty_at(toks, i + 2) {
                out.push(LockDecl {
                    id: format!("{struct_name}.{}", t.text),
                    owner: Some(struct_name.clone()),
                    name: t.text.clone(),
                    kind,
                    file: fidx,
                    line: t.line,
                });
            }
        }
        i += 1;
    }
}

/// Names of struct fields declared as `Condvar` — their `.wait(…)`
/// family atomically releases the guard passed in.
pub fn condvar_fields(ws: &Workspace<'_>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for file in ws.files {
        let toks = code_tokens(&file.tokens);
        for i in 0..toks.len() {
            let (_, t) = toks[i];
            if t.kind == TokKind::Ident
                && toks.get(i + 1).is_some_and(|(_, c)| c.is_op(":"))
                && toks
                    .get(i + 2)
                    .is_some_and(|(_, ty)| ty.is_ident("Condvar"))
            {
                out.insert(t.text.clone());
            }
        }
    }
    out
}

// ------------------------------------------- per-function acquisitions

/// The acquiring method names per lock kind.
fn method_kind(name: &str) -> Option<LockKind> {
    match name {
        "lock" => Some(LockKind::Mutex),
        "read" | "write" => Some(LockKind::RwLock),
        _ => None,
    }
}

/// Scans one function body for direct acquisitions, guard-return
/// facts, and condvar-wait sites.
fn scan_fn(
    ws: &Workspace<'_>,
    id: usize,
    registry: &[LockDecl],
    condvars: &BTreeSet<String>,
) -> FnLocks {
    let mut s = FnLocks::default();
    let Some(f) = ws.symbols.fns.get(id) else {
        return s;
    };
    let Some((start, end)) = f.body else { return s };
    let Some(file) = ws.files.get(f.file) else {
        return s;
    };
    let lock_params = lock_typed_params(file, start);
    let returns_guard_ty = signature_returns_guard(file, start);

    let toks: Vec<(usize, &Token)> = code_tokens(&file.tokens)
        .into_iter()
        .filter(|(o, _)| (start..end).contains(o))
        .collect();

    let mut first_acq: Option<LockRef> = None;
    for j in 0..toks.len() {
        let (orig, t) = toks[j];
        if !t.is_op("(") || j < 2 {
            continue;
        }
        let (_, m) = toks[j - 1];
        if m.kind != TokKind::Ident {
            continue;
        }
        let (_, dot) = toks[j - 2];
        if !dot.is_op(".") {
            continue;
        }
        // Condvar waits: `cv.wait(g)` releases `g` for the wait.
        if matches!(m.text.as_str(), "wait" | "wait_timeout" | "wait_while") {
            if let Some((_, recv)) = toks.get(j.wrapping_sub(3)) {
                if condvars.contains(&recv.text) {
                    s.skip_parens.insert(orig);
                }
            }
            continue;
        }
        let Some(kind) = method_kind(&m.text) else {
            continue;
        };
        let Some(lockref) = resolve_receiver(
            ws,
            f.self_ty.as_deref(),
            registry,
            &lock_params,
            &toks,
            j,
            kind,
        ) else {
            continue;
        };
        s.skip_parens.insert(orig);
        if first_acq.is_none() {
            first_acq = Some(lockref.clone());
        }
        if let LockRef::Concrete(lk) = lockref {
            let scope = guard_scope(&toks, j, end);
            s.acquired.push(Acquisition {
                lock: lk,
                line: m.line,
                paren: orig,
                scope,
            });
        }
    }
    if returns_guard_ty {
        // A helper that hands its guard out: prefer the lock-typed
        // parameter (generic helpers), else the first acquisition.
        s.returns_guard = lock_params
            .first()
            .map(|&(i, _, _)| LockRef::Param(i))
            .or(first_acq);
        // The guard escapes, so local scopes do not apply.
        for a in &mut s.acquired {
            a.scope = None;
        }
    }
    s
}

/// Lock-typed parameters of the fn whose body starts at token `start`:
/// `(param index, name, kind)`.
fn lock_typed_params(
    file: &crate::scan::ScannedFile,
    body_start: usize,
) -> Vec<(usize, String, LockKind)> {
    let toks = code_tokens(&file.tokens);
    let Some(body_pos) = toks.iter().position(|(o, _)| *o == body_start) else {
        return Vec::new();
    };
    // Walk back to the parameter list's `(` … `)` for this fn.
    let Some(close) = rev_find_params_close(&toks, body_pos) else {
        return Vec::new();
    };
    let Some(open) = matching_open(&toks, close) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut idx = 0usize;
    let mut depth = 0i64;
    let mut i = open + 1;
    while i < close {
        let (_, t) = toks[i];
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "<<" => depth += 2,
            ">>" => depth -= 2,
            "," if depth == 0 => idx += 1,
            _ => {}
        }
        if depth == 0
            && t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|(_, c)| c.is_op(":"))
        {
            // `name : [&] [lifetime] [mut] Mutex<…>`.
            let mut k = i + 2;
            while toks.get(k).is_some_and(|(_, x)| {
                x.is_op("&") || x.kind == TokKind::Lifetime || x.is_ident("mut")
            }) {
                k += 1;
            }
            if let Some(kind) = lock_ty_at(&toks, k) {
                out.push((idx, t.text.clone(), kind));
            }
        }
        i += 1;
    }
    out
}

/// From the body-`{` position, walks back to the fn's parameter-list
/// closing `)`, skipping a `-> Type` return clause and `where` bounds.
fn rev_find_params_close(toks: &[(usize, &Token)], body_pos: usize) -> Option<usize> {
    let mut i = body_pos.checked_sub(1)?;
    let mut depth = 0i64;
    loop {
        let (_, t) = toks.get(i)?;
        match t.text.as_str() {
            ")" if depth == 0 => return Some(i),
            ")" | "]" | "}" => depth -= 1,
            "(" | "[" | "{" => depth += 1,
            "fn" | ";" => return None,
            _ => {}
        }
        i = i.checked_sub(1)?;
    }
}

/// Index of the `(` matching the `)` at `close`.
fn matching_open(toks: &[(usize, &Token)], close: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut i = close;
    loop {
        let (_, t) = toks.get(i)?;
        match t.text.as_str() {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i = i.checked_sub(1)?;
    }
}

/// True when the fn's declared return type names a guard.
fn signature_returns_guard(file: &crate::scan::ScannedFile, body_start: usize) -> bool {
    let toks = code_tokens(&file.tokens);
    let Some(body_pos) = toks.iter().position(|(o, _)| *o == body_start) else {
        return false;
    };
    // Scan back to `->`, stopping at the params `)` boundary walk.
    let mut i = body_pos;
    while i > 0 {
        i -= 1;
        let (_, t) = toks[i];
        match t.text.as_str() {
            "->" => {
                return (i + 1..body_pos).any(|k| {
                    matches!(
                        toks[k].1.text.as_str(),
                        "MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard"
                    )
                })
            }
            "{" | "}" | ";" | "fn" => return false,
            _ => {}
        }
    }
    false
}

/// Resolves the receiver of `….m(` (the `(` at comment-free index `j`)
/// to a lock. The receiver chain ends at `j - 3`.
fn resolve_receiver(
    ws: &Workspace<'_>,
    self_ty: Option<&str>,
    registry: &[LockDecl],
    lock_params: &[(usize, String, LockKind)],
    toks: &[(usize, &Token)],
    j: usize,
    kind: LockKind,
) -> Option<LockRef> {
    let (_, last) = toks.get(j.wrapping_sub(3))?;
    if last.kind != TokKind::Ident {
        return None;
    }
    // Chain walk: `a . b . last`.
    let mut chain = vec![last.text.clone()];
    let mut p = j - 3;
    while p >= 2
        && toks.get(p - 1).is_some_and(|(_, t)| t.is_op("."))
        && toks
            .get(p - 2)
            .is_some_and(|(_, t)| t.kind == TokKind::Ident)
    {
        p -= 2;
        if let Some((_, seg)) = toks.get(p) {
            chain.insert(0, seg.text.clone());
        }
    }
    resolve_lock_path(ws, self_ty, registry, lock_params, &chain, kind)
}

/// Resolves an ident chain (`self.state`, `ctx.degraded`, `A`, `m`) to
/// a lock of the right kind.
fn resolve_lock_path(
    ws: &Workspace<'_>,
    self_ty: Option<&str>,
    registry: &[LockDecl],
    lock_params: &[(usize, String, LockKind)],
    chain: &[String],
    kind: LockKind,
) -> Option<LockRef> {
    let _ = ws;
    let last = chain.last()?;
    if chain.len() == 1 {
        // A lock-typed parameter (`m.lock()` in a helper)…
        if let Some(&(i, _, _)) = lock_params.iter().find(|(_, n, k)| n == last && *k == kind) {
            return Some(LockRef::Param(i));
        }
        // …or a static by name.
        let hit = registry
            .iter()
            .position(|d| d.owner.is_none() && &d.name == last && d.kind == kind)?;
        return Some(LockRef::Concrete(hit));
    }
    let starts_with_self = chain.first().is_some_and(|c| c == "self");
    if starts_with_self && chain.len() == 2 {
        // `self.field` — exact (Type, field) identity.
        let ty = self_ty?;
        let hit = registry
            .iter()
            .position(|d| d.owner.as_deref() == Some(ty) && &d.name == last && d.kind == kind)?;
        return Some(LockRef::Concrete(hit));
    }
    // `expr.field` with an unknown receiver type: accept only a field
    // name that names exactly one registered lock of this kind —
    // ambiguity would invent lock identities, so it contributes none.
    let matches: Vec<usize> = registry
        .iter()
        .enumerate()
        .filter(|(_, d)| d.owner.is_some() && &d.name == last && d.kind == kind)
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [only] => Some(LockRef::Concrete(*only)),
        _ => None,
    }
}

/// Computes the guard's live token range for the acquisition whose `(`
/// sits at comment-free index `j`. Returns `[start, end)` in original
/// token indices, or `None` when the guard is returned.
fn guard_scope(toks: &[(usize, &Token)], j: usize, body_end: usize) -> Option<(usize, usize)> {
    let start_orig = toks[j].0;
    // Is the acquisition inside a `let` statement? Walk back to the
    // statement start (a `;`, `{`, or `}` at depth 0).
    let mut i = j;
    let mut depth = 0i64;
    let mut binding: Option<String> = None;
    while i > 0 {
        i -= 1;
        let (_, t) = toks[i];
        match t.text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            ";" if depth == 0 => break,
            "let" if depth == 0 => {
                // `let [mut] name = …`.
                let mut k = i + 1;
                if toks.get(k).is_some_and(|(_, t)| t.is_ident("mut")) {
                    k += 1;
                }
                if let Some((_, name)) = toks.get(k).filter(|(_, t)| t.kind == TokKind::Ident) {
                    binding = Some(name.text.clone());
                }
                break;
            }
            _ => {}
        }
    }

    match binding {
        Some(name) if name != "_" => {
            // Live until `drop(name)` or the enclosing block closes.
            let mut depth = 0i64;
            let mut k = j + 1;
            while k < toks.len() {
                let (orig, t) = toks[k];
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "}" => {
                        depth -= 1;
                        if depth < 0 {
                            return Some((start_orig, orig));
                        }
                    }
                    "drop"
                        if toks.get(k + 1).is_some_and(|(_, t)| t.is_op("("))
                            && toks.get(k + 2).is_some_and(|(_, t)| t.is_ident(&name)) =>
                    {
                        return Some((start_orig, orig));
                    }
                    _ => {}
                }
                k += 1;
            }
            Some((start_orig, body_end))
        }
        _ => {
            // Temporary (or `let _ =`): dies at the statement's end —
            // a `;` at relative depth 0 or the enclosing close.
            let mut depth = 0i64;
            let mut k = j; // include the call's own parens in depth
            while k < toks.len() {
                let (orig, t) = toks[k];
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth < 0 {
                            return Some((start_orig, orig));
                        }
                    }
                    ";" if depth == 0 => return Some((start_orig, orig)),
                    _ => {}
                }
                k += 1;
            }
            Some((start_orig, body_end))
        }
    }
}

/// Adds acquisitions made through calls to guard-returning helpers.
fn helper_acquisitions(
    ws: &Workspace<'_>,
    id: usize,
    registry: &[LockDecl],
    direct: &[FnLocks],
    s: &mut FnLocks,
) {
    let Some(f) = ws.symbols.fns.get(id) else {
        return;
    };
    let Some((_, body_end)) = f.body else { return };
    let Some(file) = ws.files.get(f.file) else {
        return;
    };
    let lock_params = lock_typed_params(file, f.body.map(|(s, _)| s).unwrap_or(0));
    let toks: Vec<(usize, &Token)> = code_tokens(&file.tokens)
        .into_iter()
        .filter(|(o, _)| f.body.is_some_and(|(st, en)| (st..en).contains(o)))
        .collect();
    let calls: &[Call] = ws.calls.calls.get(id).map(Vec::as_slice).unwrap_or(&[]);
    for call in calls {
        if s.skip_parens.contains(&call.paren) {
            continue; // already modelled as a direct acquisition
        }
        // A helper call acquires when some callee returns a guard.
        let ret = call
            .callees
            .iter()
            .find_map(|&c| direct.get(c).and_then(|d| d.returns_guard.clone()));
        let Some(ret) = ret else { continue };
        let lock = match ret {
            LockRef::Concrete(l) => Some(l),
            LockRef::Param(i) => argument_lock(
                ws,
                f.self_ty.as_deref(),
                registry,
                &lock_params,
                &toks,
                call.paren,
                i,
            ),
        };
        let Some(lock) = lock else { continue };
        s.skip_parens.insert(call.paren);
        let Some(j) = toks.iter().position(|(o, _)| *o == call.paren) else {
            continue;
        };
        let scope = guard_scope(&toks, j, body_end);
        s.acquired.push(Acquisition {
            lock,
            line: call.line,
            paren: call.paren,
            scope,
        });
    }
}

/// Resolves the `i`-th argument of the call whose `(` has original
/// token index `paren` to a registered lock (`&self.state`, `&A`…).
fn argument_lock(
    ws: &Workspace<'_>,
    self_ty: Option<&str>,
    registry: &[LockDecl],
    lock_params: &[(usize, String, LockKind)],
    toks: &[(usize, &Token)],
    paren: usize,
    i: usize,
) -> Option<usize> {
    let open = toks.iter().position(|(o, _)| *o == paren)?;
    let mut depth = 0i64;
    let mut arg = 0usize;
    let mut chain: Vec<String> = Vec::new();
    let mut k = open + 1;
    while k < toks.len() {
        let (_, t) = toks[k];
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            "," if depth == 0 => {
                arg += 1;
                chain.clear();
            }
            _ if depth == 0 && arg == i => {
                if t.kind == TokKind::Ident {
                    chain.push(t.text.clone());
                } else if !t.is_op("&") && !t.is_op(".") && !t.is_op("*") && !t.is_ident("mut") {
                    // Anything structurally richer than `&x.y` — give up.
                    if !chain.is_empty() {
                        break;
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    if chain.is_empty() {
        return None;
    }
    // The helper accepts either kind; try both.
    for kind in [LockKind::Mutex, LockKind::RwLock] {
        if let Some(LockRef::Concrete(l)) =
            resolve_lock_path(ws, self_ty, registry, lock_params, &chain, kind)
        {
            return Some(l);
        }
    }
    None
}

// --------------------------------------------- interprocedural lifting

/// Transitively acquired lock sets per fn, with, for each `(fn, lock)`,
/// the callee hop it arrived through (for witness chains).
pub struct TransLocks {
    /// `sets[fn]` = locks acquired by `fn` or anything it may call.
    pub sets: Vec<BTreeSet<usize>>,
    /// `(fn, lock)` → the call hop `(callee, line)` that introduced it;
    /// absent when the fn acquires the lock directly.
    pub via: BTreeMap<(usize, usize), (usize, usize)>,
}

/// Fixpoint over the call graph. Non-test fns only: a test helper
/// locking something is not part of the product's lock discipline.
fn transitive_locks(ws: &Workspace<'_>, summaries: &[FnLocks]) -> TransLocks {
    let n = ws.symbols.fns.len();
    let mut sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut via: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
    for (id, s) in summaries.iter().enumerate() {
        for a in &s.acquired {
            sets[id].insert(a.lock);
        }
    }
    let mut changed = true;
    let mut rounds = 0usize;
    while changed && rounds <= n {
        changed = false;
        rounds += 1;
        for id in 0..n {
            if ws.symbols.fns.get(id).is_some_and(|f| f.is_test) {
                continue;
            }
            let mut add: Vec<(usize, (usize, usize))> = Vec::new();
            for call in ws.calls.calls.get(id).map(Vec::as_slice).unwrap_or(&[]) {
                if summaries
                    .get(id)
                    .is_some_and(|s| s.skip_parens.contains(&call.paren))
                {
                    continue;
                }
                for &callee in &call.callees {
                    if ws.symbols.fns.get(callee).is_some_and(|f| f.is_test) {
                        continue;
                    }
                    for &l in &sets[callee] {
                        if !sets[id].contains(&l) {
                            add.push((l, (callee, call.line)));
                        }
                    }
                }
            }
            for (l, hop) in add {
                if sets[id].insert(l) {
                    via.insert((id, l), hop);
                    changed = true;
                }
            }
        }
    }
    TransLocks { sets, via }
}

/// Renders the call path from `fn_id` down to wherever `lock` is
/// directly acquired, following `via` hops.
pub fn acquisition_path(
    ws: &Workspace<'_>,
    trans: &TransLocks,
    summaries: &[FnLocks],
    mut fn_id: usize,
    lock: usize,
) -> (String, usize, usize) {
    let mut hops: Vec<String> = Vec::new();
    for _ in 0..ws.symbols.fns.len() + 1 {
        let name = ws
            .symbols
            .fns
            .get(fn_id)
            .map(|f| f.qname.clone())
            .unwrap_or_default();
        hops.push(name);
        if let Some(a) = summaries
            .get(fn_id)
            .and_then(|s| s.acquired.iter().find(|a| a.lock == lock))
        {
            let file = ws.symbols.fns.get(fn_id).map(|f| f.file).unwrap_or(0);
            return (hops.join(" → "), file, a.line);
        }
        match trans.via.get(&(fn_id, lock)) {
            Some(&(callee, _line)) => fn_id = callee,
            None => break,
        }
    }
    (hops.join(" → "), 0, 0)
}

// ------------------------------------------------- the lock-order graph

/// Builds the edge set: lock X → lock Y when some fn acquires Y (in
/// scope, directly or transitively through a call) while X is held.
fn order_edges(
    ws: &Workspace<'_>,
    registry: &[LockDecl],
    summaries: &[FnLocks],
    trans: &TransLocks,
) -> Vec<LockEdge> {
    let mut edges: BTreeMap<(usize, usize), LockEdge> = BTreeMap::new();
    for (id, s) in summaries.iter().enumerate() {
        let Some(f) = ws.symbols.fns.get(id) else {
            continue;
        };
        if f.is_test {
            continue;
        }
        for a in &s.acquired {
            let Some((lo, hi)) = a.scope else { continue };
            let held = &registry[a.lock].id;
            let rel = ws.files.get(f.file).map(|x| x.rel.as_str()).unwrap_or("");
            // Other direct acquisitions inside the guard's scope.
            for b in &s.acquired {
                if b.paren > lo && b.paren < hi && b.paren != a.paren {
                    let to = &registry[b.lock].id;
                    edges.entry((a.lock, b.lock)).or_insert_with(|| LockEdge {
                        from: a.lock,
                        to: b.lock,
                        witness: format!(
                            "{} holds `{held}` ({rel}:{}) → acquires `{to}` (line {})",
                            f.qname, a.line, b.line
                        ),
                        file: f.file,
                        line: a.line,
                    });
                }
            }
            // Calls inside the scope: everything the callee may lock.
            for call in ws.calls.calls.get(id).map(Vec::as_slice).unwrap_or(&[]) {
                if call.paren <= lo || call.paren >= hi || s.skip_parens.contains(&call.paren) {
                    continue;
                }
                for &callee in &call.callees {
                    if ws.symbols.fns.get(callee).is_some_and(|x| x.is_test) {
                        continue;
                    }
                    for &l in trans.sets.get(callee).into_iter().flatten() {
                        let (path, pfile, pline) =
                            acquisition_path(ws, trans, summaries, callee, l);
                        let prel = ws.files.get(pfile).map(|x| x.rel.as_str()).unwrap_or("");
                        let to = &registry[l].id;
                        edges.entry((a.lock, l)).or_insert_with(|| LockEdge {
                            from: a.lock,
                            to: l,
                            witness: format!(
                                "{} holds `{held}` ({rel}:{}) → {path} acquires `{to}` ({prel}:{pline})",
                                f.qname, a.line
                            ),
                            file: f.file,
                            line: a.line,
                        });
                    }
                }
            }
        }
    }
    edges.into_values().collect()
}

/// Detects cycles and emits one R003 finding per cycle found. Returns
/// true when the graph is acyclic (the proof holds).
fn report_cycles(
    ws: &Workspace<'_>,
    registry: &[LockDecl],
    edges: &[LockEdge],
    out: &mut Vec<Diagnostic>,
) -> bool {
    let n = registry.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in edges.iter().enumerate() {
        adj[e.from].push(i);
    }
    // Iterative coloring DFS; when a back edge closes a cycle, rebuild
    // the edge list along the stack.
    let mut color = vec![0u8; n]; // 0 white, 1 grey, 2 black
    let mut reported: BTreeSet<Vec<usize>> = BTreeSet::new();
    for root in 0..n {
        if color[root] != 0 {
            continue;
        }
        // Stack of (node, next edge cursor); path holds edge indices.
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        let mut path: Vec<usize> = Vec::new();
        color[root] = 1;
        while let Some(top) = stack.len().checked_sub(1) {
            let (node, cursor) = stack[top];
            if let Some(&eidx) = adj[node].get(cursor) {
                stack[top].1 += 1;
                let to = edges[eidx].to;
                match color[to] {
                    0 => {
                        color[to] = 1;
                        path.push(eidx);
                        stack.push((to, 0));
                    }
                    1 => {
                        // Back edge: the cycle is the path suffix from
                        // `to` plus this edge.
                        let mut cyc: Vec<usize> = Vec::new();
                        if let Some(pos) = stack.iter().position(|&(nd, _)| nd == to) {
                            cyc.extend(path.iter().skip(pos).copied());
                        }
                        cyc.push(eidx);
                        let mut key = cyc.clone();
                        key.sort_unstable();
                        if reported.insert(key) {
                            emit_cycle(ws, registry, edges, &cyc, out);
                        }
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
                path.pop();
            }
        }
    }
    out.is_empty() && reported.is_empty()
}

/// Emits one R003 diagnostic for the cycle spelled by `cyc` (edge
/// indices in traversal order).
fn emit_cycle(
    ws: &Workspace<'_>,
    registry: &[LockDecl],
    edges: &[LockEdge],
    cyc: &[usize],
    out: &mut Vec<Diagnostic>,
) {
    let Some(&first) = cyc.first() else { return };
    let anchor = &edges[first];
    let Some(file) = ws.files.get(anchor.file) else {
        return;
    };
    let mut ring: Vec<&str> = cyc
        .iter()
        .map(|&e| registry[edges[e].from].id.as_str())
        .collect();
    ring.push(registry[edges[first].from].id.as_str());
    let chains: Vec<String> = cyc.iter().map(|&e| edges[e].witness.clone()).collect();
    out.push(semantic_finding(
        "R003",
        "lock-order",
        file,
        anchor.line,
        format!(
            "lock-order cycle `{}` — a thread interleaving exists that deadlocks; impose one global acquisition order",
            ring.join("` → `"),
        ),
        Some(chains.join("  ⇄  ")),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::scan::{scan, ScannedFile};
    use crate::symbols::SymbolTable;
    use std::path::PathBuf;

    fn run(files: &[(&str, &str)]) -> LockAnalysis {
        let scanned: Vec<ScannedFile> = files
            .iter()
            .map(|(rel, src)| scan(PathBuf::from(rel), (*rel).into(), src))
            .collect();
        let symbols = SymbolTable::build(&scanned);
        let calls = CallGraph::build(&symbols, &scanned);
        let ws = Workspace {
            files: &scanned,
            symbols: &symbols,
            calls: &calls,
        };
        analyze(&ws, &Config::default())
    }

    const CYCLE: &str = "\
use std::sync::Mutex;
static A: Mutex<u32> = Mutex::new(0);
static B: Mutex<u32> = Mutex::new(0);
fn fwd() {
    let g = A.lock().unwrap_or_else(|e| e.into_inner());
    take_b();
    drop(g);
}
fn take_b() {
    let h = B.lock().unwrap_or_else(|e| e.into_inner());
    drop(h);
}
fn rev() {
    let g = B.lock().unwrap_or_else(|e| e.into_inner());
    take_a();
    drop(g);
}
fn take_a() {
    let h = A.lock().unwrap_or_else(|e| e.into_inner());
    drop(h);
}
";

    #[test]
    fn registry_finds_fields_and_statics() {
        let src = "\
use std::sync::{Condvar, Mutex, RwLock};
struct Cell { inner: RwLock<u32>, tag: String }
struct Queue { state: Mutex<u32>, cv: Condvar }
static GLOBAL: Mutex<u8> = Mutex::new(0);
";
        let scanned = vec![scan(PathBuf::from("x.rs"), "x.rs".into(), src)];
        let symbols = SymbolTable::build(&scanned);
        let calls = CallGraph::build(&symbols, &scanned);
        let ws = Workspace {
            files: &scanned,
            symbols: &symbols,
            calls: &calls,
        };
        let reg = build_registry(&ws);
        let ids: Vec<&str> = reg.iter().map(|d| d.id.as_str()).collect();
        assert_eq!(ids, ["Cell.inner", "Queue.state", "GLOBAL"], "{reg:?}");
        assert_eq!(reg[0].kind, LockKind::RwLock);
        assert!(condvar_fields(&ws).contains("cv"));
    }

    #[test]
    fn two_lock_cycle_is_found_with_both_chains() {
        let a = run(&[("crates/x/src/lib.rs", CYCLE)]);
        assert!(!a.stats.acyclic);
        assert_eq!(a.cycle_findings.len(), 1, "{:?}", a.cycle_findings);
        let d = &a.cycle_findings[0];
        let chain = d.chain.as_deref().expect("cycle witness");
        for hop in ["x::fwd", "x::take_b", "x::rev", "x::take_a"] {
            assert!(chain.contains(hop), "missing hop {hop} in {chain}");
        }
        assert!(chain.contains("`A`") && chain.contains("`B`"), "{chain}");
    }

    #[test]
    fn consistent_order_is_acyclic() {
        let src = "\
use std::sync::Mutex;
static A: Mutex<u32> = Mutex::new(0);
static B: Mutex<u32> = Mutex::new(0);
fn ok() {
    let g = A.lock().unwrap_or_else(|e| e.into_inner());
    let h = B.lock().unwrap_or_else(|e| e.into_inner());
    drop(h);
    drop(g);
}
fn also_ok() {
    let g = A.lock().unwrap_or_else(|e| e.into_inner());
    drop(g);
    let h = B.lock().unwrap_or_else(|e| e.into_inner());
    drop(h);
}
";
        let a = run(&[("crates/x/src/lib.rs", src)]);
        assert!(a.stats.acyclic, "{:?}", a.cycle_findings);
        assert!(a.cycle_findings.is_empty());
        assert_eq!(a.stats.lock_edges, 1, "one A→B edge from `ok`");
    }

    #[test]
    fn guard_returning_helper_attributes_to_call_site() {
        let src = "\
use std::sync::{Mutex, MutexGuard};
struct Q { state: Mutex<u32> }
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
impl Q {
    fn bump(&self) {
        let mut g = lock(&self.state);
        *g += 1;
    }
}
";
        let a = run(&[("crates/x/src/lib.rs", src)]);
        assert!(a.stats.acyclic);
        assert_eq!(a.stats.locks_found, 1);
        // The helper's own `m.lock()` is a param acquisition; `bump`'s
        // call to it is the concrete `Q.state` acquisition.
        assert!(a.cycle_findings.is_empty() && a.blocking_findings.is_empty());
    }

    #[test]
    fn double_lock_is_a_self_cycle() {
        let src = "\
use std::sync::Mutex;
static A: Mutex<u32> = Mutex::new(0);
fn twice() {
    let g = A.lock().unwrap_or_else(|e| e.into_inner());
    let h = A.lock().unwrap_or_else(|e| e.into_inner());
    drop(h);
    drop(g);
}
";
        let a = run(&[("crates/x/src/lib.rs", src)]);
        assert!(!a.stats.acyclic, "relocking a held Mutex deadlocks");
        assert_eq!(a.cycle_findings.len(), 1);
    }

    #[test]
    fn atomics_read_is_not_a_lock() {
        let src = "\
use std::sync::atomic::{AtomicU64, Ordering};
struct Metrics { hits: AtomicU64 }
impl Metrics {
    fn read(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}
fn poll(m: &Metrics) -> u64 { m.read() }
";
        let a = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(a.stats.locks_found, 0, "AtomicU64 is not a lock");
        assert!(a.cycle_findings.is_empty() && a.blocking_findings.is_empty());
    }
}
