//! R004 blocking-under-lock and L008 vfs-bypass: the effect side of
//! the concurrency proofs in [`crate::locks`].
//!
//! **R004** answers "can this thread stall while holding a guard?".
//! Each function gets a *blocking effect* summary — the direct sites
//! where it performs file I/O (`std::fs::…`, `.sync_all()`), stream
//! I/O (`.write_all(`, `.read_exact(`, `.flush(`, `.accept(`…),
//! channel receives (`.recv()`, `.recv_timeout(`), `thread::sleep`,
//! or an empty-argument `.join()` (thread join; `Path::join(arg)`
//! takes arguments and never matches). The summary is lifted to a
//! `may_block` bit over the call graph, and every guard scope computed
//! by [`crate::locks`] is then checked: a direct blocking site or a
//! call to a `may_block` function inside a live guard scope is a
//! finding with an R001-style witness chain down to the concrete
//! blocking operation. `Condvar::wait(guard)` atomically releases the
//! guard for the duration of the wait, so waits on `Condvar`-typed
//! fields are sanctioned, not findings.
//!
//! **L008** is the durability-path proof: modules whose crash
//! consistency is guaranteed by `core::vfs` (scoped in `lint.toml` to
//! `census::{stream,serve,supervisor}` and `synth::loggen`) must not
//! mutate the real filesystem behind the Vfs's back — a raw
//! `std::fs::write`/`rename`/`File::create` there is invisible to the
//! crash-point explorer and voids PR 7's guarantees. The rule is
//! token-level over non-test code lines, with the mutation-token list
//! overridable via `[rules.L008] mutation_tokens`.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::lexer::{TokKind, Token};
use crate::locks::{FnLocks, LockDecl};
use crate::report::Diagnostic;
use crate::rules::{code_lines, semantic_finding, token_positions, SemanticRule, Workspace};

/// One direct blocking operation inside a function body.
#[derive(Clone, Debug)]
pub struct EffectSite {
    /// Original token index of the site (for guard-scope containment).
    pub pos: usize,
    /// 1-based source line.
    pub line: usize,
    /// Human description, e.g. `std::fs::rename` or `.recv_timeout(…)`.
    pub desc: String,
}

/// Per-workspace blocking-effect summaries.
pub struct EffectSummaries {
    /// `direct[fn]` = that fn's own blocking sites, in token order.
    pub direct: Vec<Vec<EffectSite>>,
    /// `may_block[fn]` = the fn, or anything it may call, blocks.
    pub may_block: Vec<bool>,
    /// For lifted bits: the call hop `(callee, line)` that introduced
    /// blocking into a fn with no direct site of its own.
    pub via: BTreeMap<usize, (usize, usize)>,
}

/// Methods that block when invoked with any argument list.
const BLOCKING_METHODS: &[(&str, &str)] = &[
    ("sync_all", "fsyncs the file"),
    ("sync_data", "fsyncs the file's data"),
    ("accept", "blocks for an incoming connection"),
    ("write_all", "performs stream I/O"),
    ("read_exact", "performs stream I/O"),
    ("read_line", "performs stream I/O"),
    ("read_to_string", "performs stream I/O"),
    ("read_to_end", "performs stream I/O"),
    ("flush", "flushes buffered I/O"),
    ("recv", "blocks on a channel receive"),
    ("recv_timeout", "blocks on a channel receive"),
    ("recv_deadline", "blocks on a channel receive"),
    ("sleep", "sleeps the thread"),
];

/// Scans every function body for direct blocking sites and lifts them
/// over the call graph to a `may_block` fixpoint. Acquisition and
/// condvar-wait call sites (`summaries[id].skip_parens`) are never
/// effects and never propagation edges.
pub fn summarize(ws: &Workspace<'_>, summaries: &[FnLocks]) -> EffectSummaries {
    let n = ws.symbols.fns.len();
    let mut direct: Vec<Vec<EffectSite>> = vec![Vec::new(); n];
    for (id, f) in ws.symbols.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let Some(file) = ws.files.get(f.file) else {
            continue;
        };
        let skip = summaries.get(id).map(|s| &s.skip_parens);
        direct[id] = direct_effects(&file.tokens, start, end, skip);
    }

    let mut may_block: Vec<bool> = direct.iter().map(|d| !d.is_empty()).collect();
    let mut via: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
    let mut changed = true;
    let mut rounds = 0usize;
    while changed && rounds <= n {
        changed = false;
        rounds += 1;
        for id in 0..n {
            if may_block[id] || ws.symbols.fns.get(id).is_some_and(|f| f.is_test) {
                continue;
            }
            for call in ws.calls.calls.get(id).map(Vec::as_slice).unwrap_or(&[]) {
                if summaries
                    .get(id)
                    .is_some_and(|s| s.skip_parens.contains(&call.paren))
                {
                    continue;
                }
                if let Some(&b) = call
                    .callees
                    .iter()
                    .find(|&&c| may_block[c] && ws.symbols.fns.get(c).is_some_and(|f| !f.is_test))
                {
                    may_block[id] = true;
                    via.insert(id, (b, call.line));
                    changed = true;
                    break;
                }
            }
        }
    }
    EffectSummaries {
        direct,
        may_block,
        via,
    }
}

/// Token walk over one body range collecting blocking sites.
fn direct_effects(
    tokens: &[Token],
    start: usize,
    end: usize,
    skip: Option<&BTreeSet<usize>>,
) -> Vec<EffectSite> {
    let toks: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(o, t)| {
            (start..end).contains(o)
                && !matches!(
                    t.kind,
                    TokKind::LineComment { .. } | TokKind::BlockComment { .. }
                )
        })
        .collect();
    let mut out = Vec::new();
    for j in 0..toks.len() {
        let (orig, t) = toks[j];
        // `std :: fs :: name` — any real-filesystem call blocks (and
        // on the mutation subset, L008 additionally owns the policy).
        if t.is_ident("std")
            && toks.get(j + 1).is_some_and(|(_, x)| x.is_op("::"))
            && toks.get(j + 2).is_some_and(|(_, x)| x.is_ident("fs"))
            && toks.get(j + 3).is_some_and(|(_, x)| x.is_op("::"))
        {
            let name = toks.get(j + 4).map(|(_, x)| x.text.as_str()).unwrap_or("…");
            out.push(EffectSite {
                pos: orig,
                line: t.line,
                desc: format!("std::fs::{name} touches the real filesystem"),
            });
            continue;
        }
        if !t.is_op("(") || j < 2 {
            continue;
        }
        let (mpos, m) = toks[j - 1];
        if m.kind != TokKind::Ident {
            continue;
        }
        let dotted = toks.get(j - 2).is_some_and(|(_, x)| x.is_op("."));
        let pathed = toks.get(j - 2).is_some_and(|(_, x)| x.is_op("::"));
        if !dotted && !pathed {
            continue;
        }
        if skip.is_some_and(|s| s.contains(&orig)) {
            continue; // lock acquisition or sanctioned condvar wait
        }
        // Thread join: `.join()` with an empty argument list. With
        // arguments it is `Path::join`/`Unit::join` — pure.
        if dotted && m.is_ident("join") && toks.get(j + 1).is_some_and(|(_, x)| x.is_op(")")) {
            out.push(EffectSite {
                pos: mpos,
                line: m.line,
                desc: "`.join()` blocks on thread completion".into(),
            });
            continue;
        }
        if let Some((_, why)) = BLOCKING_METHODS.iter().find(|(n, _)| m.is_ident(n)) {
            out.push(EffectSite {
                pos: mpos,
                line: m.line,
                desc: format!("`.{}(…)` {why}", m.text),
            });
        }
    }
    out
}

/// Checks every guard scope against the effect summaries and appends
/// R004 findings; updates `stats.effect_obligations` / `stats.proven`.
pub fn blocking_under_lock(
    ws: &Workspace<'_>,
    registry: &[LockDecl],
    summaries: &[FnLocks],
    effects: &EffectSummaries,
    out: &mut Vec<Diagnostic>,
    stats: &mut crate::locks::LockStats,
) {
    let mut seen: BTreeSet<(usize, usize, usize)> = BTreeSet::new();
    for (id, s) in summaries.iter().enumerate() {
        let Some(f) = ws.symbols.fns.get(id) else {
            continue;
        };
        if f.is_test {
            continue;
        }
        let Some(file) = ws.files.get(f.file) else {
            continue;
        };
        for a in &s.acquired {
            let Some((lo, hi)) = a.scope else { continue };
            let held = &registry[a.lock].id;
            // Obligation 1: no direct blocking site inside the scope.
            for site in effects.direct.get(id).into_iter().flatten() {
                if site.pos <= lo || site.pos >= hi {
                    continue;
                }
                stats.effect_obligations += 1;
                if !seen.insert((id, a.paren, site.pos)) {
                    continue;
                }
                out.push(semantic_finding(
                    "R004",
                    "blocking-under-lock",
                    file,
                    site.line,
                    format!(
                        "{} while holding `{held}` (acquired line {}) — shrink the guard scope or drop before blocking",
                        site.desc, a.line
                    ),
                    Some(format!(
                        "{} holds `{held}` ({}:{}) → {} (line {})",
                        f.qname, file.rel, a.line, site.desc, site.line
                    )),
                ));
            }
            // Obligation 2: no call inside the scope reaches blocking.
            for call in ws.calls.calls.get(id).map(Vec::as_slice).unwrap_or(&[]) {
                if call.paren <= lo || call.paren >= hi || s.skip_parens.contains(&call.paren) {
                    continue;
                }
                let interesting = call
                    .callees
                    .iter()
                    .any(|&c| ws.symbols.fns.get(c).is_some_and(|x| !x.is_test));
                if !interesting {
                    continue;
                }
                stats.effect_obligations += 1;
                let blocker = call.callees.iter().copied().find(|&c| {
                    effects.may_block.get(c).copied().unwrap_or(false)
                        && ws.symbols.fns.get(c).is_some_and(|x| !x.is_test)
                });
                let Some(blocker) = blocker else {
                    stats.proven += 1;
                    continue;
                };
                if !seen.insert((id, a.paren, call.paren)) {
                    continue;
                }
                let (path, leaf) = blocking_path(ws, effects, blocker);
                out.push(semantic_finding(
                    "R004",
                    "blocking-under-lock",
                    file,
                    call.line,
                    format!(
                        "call may block ({leaf}) while holding `{held}` (acquired line {}) — drop the guard before I/O",
                        a.line
                    ),
                    Some(format!(
                        "{} holds `{held}` ({}:{}) → {path}",
                        f.qname, file.rel, a.line
                    )),
                ));
            }
        }
    }
}

/// Renders `callee → … → concrete blocking op` following `via` hops.
fn blocking_path(ws: &Workspace<'_>, effects: &EffectSummaries, mut id: usize) -> (String, String) {
    let mut hops: Vec<String> = Vec::new();
    for _ in 0..ws.symbols.fns.len() + 1 {
        let name = ws
            .symbols
            .fns
            .get(id)
            .map(|f| f.qname.clone())
            .unwrap_or_default();
        hops.push(name);
        if let Some(site) = effects.direct.get(id).and_then(|d| d.first()) {
            let rel = ws
                .symbols
                .fns
                .get(id)
                .and_then(|f| ws.files.get(f.file))
                .map(|x| x.rel.as_str())
                .unwrap_or("");
            let leaf = site.desc.clone();
            hops.push(format!("{} ({rel}:{})", site.desc, site.line));
            return (hops.join(" → "), leaf);
        }
        match effects.via.get(&id) {
            Some(&(next, _)) => id = next,
            None => break,
        }
    }
    (hops.join(" → "), "blocking effect".into())
}

// ---------------------------------------------------------------- R004

/// R004 blocking-under-lock as a registered semantic rule. The engine
/// runs the shared [`crate::locks::analyze`] pass once for R003+R004;
/// this impl exists for `--list-rules` and direct tests.
pub struct BlockingUnderLock;

impl SemanticRule for BlockingUnderLock {
    fn id(&self) -> &'static str {
        "R004"
    }
    fn name(&self) -> &'static str {
        "blocking-under-lock"
    }
    fn describe(&self) -> &'static str {
        "no path may perform file/stream I/O, sleep, thread join, or a channel receive while a Mutex/RwLock guard is live"
    }
    fn check(&self, ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
        out.extend(crate::locks::analyze(ws, cfg).blocking_findings);
    }
}

// ---------------------------------------------------------------- L008

/// Raw-filesystem mutation tokens L008 bans in durability-scoped
/// modules. Short `fs::` forms also match fully qualified
/// `std::fs::…` spellings (the boundary check treats `:` as a
/// separator). Overridable via `[rules.L008] mutation_tokens`.
pub const MUTATION_TOKENS: &[&str] = &[
    "fs::write",
    "fs::rename",
    "fs::remove_file",
    "fs::remove_dir_all",
    "fs::create_dir_all",
    "fs::create_dir",
    "fs::copy",
    "fs::hard_link",
    "fs::set_permissions",
    "File::create",
    "OpenOptions::new",
    ".sync_all(",
    ".sync_data(",
];

/// L008 vfs-bypass: durability-scoped modules must route every
/// filesystem mutation through `core::vfs`.
pub struct VfsBypass;

impl SemanticRule for VfsBypass {
    fn id(&self) -> &'static str {
        "L008"
    }
    fn name(&self) -> &'static str {
        "vfs-bypass"
    }
    fn describe(&self) -> &'static str {
        "durability-scoped modules must not mutate the real filesystem directly — route writes/renames/fsyncs through core::vfs"
    }
    fn check(&self, ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let configured = cfg.list("rules.L008", "mutation_tokens");
        let defaults: Vec<String> = MUTATION_TOKENS.iter().map(|s| s.to_string()).collect();
        let tokens: &[String] = if configured.is_empty() {
            &defaults
        } else {
            configured
        };
        for file in ws.files {
            for (line_no, code) in code_lines(file) {
                for tok in tokens {
                    if !token_positions(code, tok).is_empty() {
                        out.push(semantic_finding(
                            "L008",
                            "vfs-bypass",
                            file,
                            line_no,
                            format!(
                                "raw filesystem mutation `{}` bypasses core::vfs — crash-point exploration cannot see it; use the module's Vfs handle",
                                tok.trim_end_matches('(')
                            ),
                            None,
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::scan::scan;
    use crate::symbols::SymbolTable;
    use std::path::PathBuf;

    fn run(src: &str) -> crate::locks::LockAnalysis {
        let scanned = vec![scan(
            PathBuf::from("crates/x/src/lib.rs"),
            "crates/x/src/lib.rs".into(),
            src,
        )];
        let symbols = SymbolTable::build(&scanned);
        let calls = CallGraph::build(&symbols, &scanned);
        let ws = Workspace {
            files: &scanned,
            symbols: &symbols,
            calls: &calls,
        };
        crate::locks::analyze(&ws, &Config::default())
    }

    #[test]
    fn sleep_under_guard_is_flagged() {
        let a = run("\
use std::sync::Mutex;
use std::time::Duration;
static A: Mutex<u32> = Mutex::new(0);
fn bad() {
    let g = A.lock().unwrap_or_else(|e| e.into_inner());
    std::thread::sleep(Duration::from_millis(1));
    drop(g);
}
");
        assert_eq!(a.blocking_findings.len(), 1, "{:?}", a.blocking_findings);
        let d = &a.blocking_findings[0];
        assert_eq!(d.rule, "R004");
        assert!(
            d.chain.as_deref().is_some_and(|c| c.contains("`A`")),
            "{d:?}"
        );
    }

    #[test]
    fn guard_dropped_before_blocking_is_clean() {
        let a = run("\
use std::sync::Mutex;
use std::time::Duration;
static A: Mutex<u32> = Mutex::new(0);
fn ok() {
    let g = A.lock().unwrap_or_else(|e| e.into_inner());
    drop(g);
    std::thread::sleep(Duration::from_millis(1));
}
");
        assert!(a.blocking_findings.is_empty(), "{:?}", a.blocking_findings);
    }

    #[test]
    fn condvar_wait_releases_the_guard() {
        let a = run("\
use std::sync::{Condvar, Mutex};
struct Q { state: Mutex<bool>, cv: Condvar }
impl Q {
    fn pump(&self) {
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while !*g {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}
");
        assert!(a.blocking_findings.is_empty(), "{:?}", a.blocking_findings);
    }

    #[test]
    fn transitive_blocking_through_a_callee_is_flagged() {
        let a = run("\
use std::sync::Mutex;
static A: Mutex<u32> = Mutex::new(0);
fn flush_logs() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
fn bad() {
    let g = A.lock().unwrap_or_else(|e| e.into_inner());
    flush_logs();
    drop(g);
}
");
        assert_eq!(a.blocking_findings.len(), 1, "{:?}", a.blocking_findings);
        let chain = a.blocking_findings[0].chain.as_deref().unwrap_or("");
        assert!(chain.contains("x::flush_logs"), "{chain}");
    }

    #[test]
    fn path_join_with_args_is_not_thread_join() {
        let a = run("\
use std::path::{Path, PathBuf};
use std::sync::Mutex;
static A: Mutex<u32> = Mutex::new(0);
fn ok(dir: &Path) -> PathBuf {
    let g = A.lock().unwrap_or_else(|e| e.into_inner());
    let p = dir.join(\"segment\");
    drop(g);
    p
}
");
        assert!(a.blocking_findings.is_empty(), "{:?}", a.blocking_findings);
    }

    #[test]
    fn vfs_bypass_flags_raw_fs_write() {
        let src = "\
pub fn persist(path: &str, data: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, data)
}
";
        let scanned = vec![scan(
            PathBuf::from("crates/x/src/lib.rs"),
            "crates/x/src/lib.rs".into(),
            src,
        )];
        let symbols = SymbolTable::build(&scanned);
        let calls = CallGraph::build(&symbols, &scanned);
        let ws = Workspace {
            files: &scanned,
            symbols: &symbols,
            calls: &calls,
        };
        let mut out = Vec::new();
        VfsBypass.check(&ws, &Config::default(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("fs::write"), "{:?}", out[0]);
    }
}
