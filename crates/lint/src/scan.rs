//! Line-aware scanning built on the token lexer.
//!
//! The lexical rules in this crate are textual, so the scanner's job is
//! to make textual matching *honest*: rule patterns must never fire
//! inside string literals, comments, or doc comments, and must know
//! which lines belong to `#[cfg(test)]` / `#[test]` regions (where the
//! workspace's panic-freedom contract deliberately does not apply).
//!
//! Earlier revisions walked the raw text with a heuristic state machine;
//! this one is a thin projection of [`crate::lexer`]'s token stream, so
//! the line view and the semantic layers (symbols, call graph,
//! reachability) can never disagree about where a string ends or whether
//! `'a` was a lifetime. Per line it produces:
//!
//! * `code` — the line with comments removed and string/char literal
//!   *contents* blanked (delimiters kept), so `".unwrap()"` inside a
//!   string can never match a rule pattern;
//! * `strings` — the literal contents that were blanked, for the one
//!   rule (L002's float-format check) that inspects format strings;
//! * line comments, checked for `lint:` suppression pragmas.
//!
//! A second pass over the comment-free code computes brace-balanced
//! `#[cfg(test)]` / `#[test]` regions.

use std::path::PathBuf;

use crate::lexer::{lex, TokKind, Token};

/// A `// lint: allow(<rule>, reason = "...")` suppression pragma, or a
/// malformed attempt at one (carried with its parse error so the engine
/// can report it instead of silently honouring or dropping it).
#[derive(Clone, Debug)]
pub struct Pragma {
    /// The rule id being suppressed, e.g. `L003`.
    pub rule: String,
    /// The mandatory justification. `None` is a pragma-syntax violation.
    pub reason: Option<String>,
    /// 1-based line the pragma was written on.
    pub decl_line: usize,
    /// 1-based line the pragma suppresses; `None` suppresses the whole
    /// file (the `allow-file` form).
    pub target_line: Option<usize>,
    /// Why the pragma failed to parse, if it did.
    pub error: Option<String>,
}

/// One source line after lexical analysis.
#[derive(Clone, Debug, Default)]
pub struct Line {
    /// The line with comments stripped and literal contents blanked.
    pub code: String,
    /// String-literal contents that appeared on this line.
    pub strings: Vec<String>,
    /// True inside a `#[cfg(test)]` or `#[test]` region.
    pub in_test: bool,
}

/// A scanned source file: tokens, lines, and the pragmas found in its
/// comments.
#[derive(Clone, Debug)]
pub struct ScannedFile {
    /// Absolute (or as-given) path.
    pub path: PathBuf,
    /// Workspace-relative path with forward slashes — what rules match
    /// their scopes against and what diagnostics print.
    pub rel: String,
    /// Per-line analysis, index 0 = line 1.
    pub lines: Vec<Line>,
    /// Every pragma in the file, valid or not.
    pub pragmas: Vec<Pragma>,
    /// The full token stream (comments included) — the semantic layers
    /// consume this instead of re-lexing.
    pub tokens: Vec<Token>,
}

impl ScannedFile {
    /// True when 1-based `line` lies in a `#[cfg(test)]`/`#[test]`
    /// region (out-of-range lines count as test: never lint them).
    pub fn is_test_line(&self, line: usize) -> bool {
        self.lines
            .get(line.saturating_sub(1))
            .is_none_or(|l| l.in_test)
    }
}

/// One pending line comment: its text and whether code preceded it.
struct LineComment {
    line: usize,
    text: String,
    after_code: bool,
}

/// Scans `text` into per-line code/strings plus pragmas.
pub fn scan(path: PathBuf, rel: String, text: &str) -> ScannedFile {
    let tokens = lex(text);
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut comments: Vec<LineComment> = Vec::new();
    let mut pos = 0usize;

    for tok in &tokens {
        // Inter-token whitespace (it carries the newlines).
        push_raw(&mut lines, &text[pos..tok.start]);
        pos = tok.end;
        match tok.kind {
            TokKind::LineComment { doc } => {
                // Doc comments are documentation, not directives; only
                // plain `//` comments may carry pragmas.
                if !doc {
                    let after_code = !lines
                        .last()
                        .map(|l| l.code.trim().is_empty())
                        .unwrap_or(true);
                    comments.push(LineComment {
                        line: tok.line,
                        text: tok.text.clone(),
                        after_code,
                    });
                }
                advance_lines(&mut lines, tok);
            }
            TokKind::BlockComment { .. } => advance_lines(&mut lines, tok),
            TokKind::Str => {
                push_code(&mut lines, "\"");
                advance_lines(&mut lines, tok);
                push_code(&mut lines, "\"");
                if let Some(l) = lines.last_mut() {
                    l.strings.push(tok.text.clone());
                }
            }
            TokKind::Char => push_code(&mut lines, "''"),
            TokKind::Lifetime => {
                push_code(&mut lines, "'");
                push_code(&mut lines, &tok.text);
            }
            TokKind::Ident | TokKind::Int | TokKind::Float | TokKind::Op => {
                push_code(&mut lines, &tok.text);
            }
        }
    }
    push_raw(&mut lines, &text[pos..]);

    mark_test_regions(&mut lines);
    let pragmas = resolve_pragmas(&comments, &lines);
    ScannedFile {
        path,
        rel,
        lines,
        pragmas,
        tokens,
    }
}

/// Appends raw text to the line buffer, splitting on newlines.
fn push_raw(lines: &mut Vec<Line>, s: &str) {
    for c in s.chars() {
        if c == '\n' {
            lines.push(Line::default());
        } else {
            push_code(lines, &c.to_string());
        }
    }
}

/// Appends code text to the current line.
fn push_code(lines: &mut [Line], s: &str) {
    if let Some(l) = lines.last_mut() {
        l.code.push_str(s);
    }
}

/// Pushes empty lines for each newline a multi-line token spans.
fn advance_lines(lines: &mut Vec<Line>, tok: &Token) {
    for _ in tok.line..tok.end_line {
        lines.push(Line::default());
    }
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` items by brace balance
/// over the comment-free code.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut region_floor: Option<i64> = None;
    let mut region_armed = false;
    for line in lines.iter_mut() {
        let code = line.code.trim();
        if region_floor.is_none() && (code.contains("#[cfg(test)]") || code.contains("#[test]")) {
            pending_attr = true;
        }
        if pending_attr && region_floor.is_none() && !code.is_empty() && !code.starts_with("#[") {
            // The attributed item starts here.
            region_floor = Some(depth);
            region_armed = false;
            pending_attr = false;
        }
        line.in_test = region_floor.is_some();
        let opens = line.code.matches('{').count() as i64;
        let closes = line.code.matches('}').count() as i64;
        depth += opens - closes;
        if let Some(floor) = region_floor {
            if depth > floor {
                region_armed = true;
            }
            // Region ends when braces rebalance — or immediately for a
            // braceless item (`#[cfg(test)] mod t;`).
            if (region_armed && depth <= floor) || (!region_armed && code.ends_with(';')) {
                region_floor = None;
            }
        }
    }
}

/// Extracts pragmas from line comments and resolves their target lines:
/// a trailing comment suppresses its own line, a comment on a line of
/// its own suppresses the next line with code on it.
fn resolve_pragmas(comments: &[LineComment], lines: &[Line]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in comments {
        let Some(body) = c.text.trim().strip_prefix("lint:") else {
            continue;
        };
        let mut p = parse_pragma(body.trim(), c.line);
        if p.error.is_none() && p.target_line == Some(c.line) && !c.after_code {
            // Standalone pragma line: find the next line with code.
            p.target_line = lines
                .iter()
                .enumerate()
                .skip(c.line) // index c.line == line number c.line + 1
                .find(|(_, l)| !l.code.trim().is_empty())
                .map(|(i, _)| i + 1)
                .or(Some(c.line));
        }
        out.push(p);
    }
    out
}

/// Parses `allow(<rule>, reason = "...")` / `allow-file(...)` bodies.
fn parse_pragma(body: &str, line: usize) -> Pragma {
    let mut pragma = Pragma {
        rule: String::new(),
        reason: None,
        decl_line: line,
        target_line: Some(line),
        error: None,
    };
    let inner = if let Some(rest) = body.strip_prefix("allow-file(") {
        pragma.target_line = None;
        rest
    } else if let Some(rest) = body.strip_prefix("allow(") {
        rest
    } else {
        pragma.error = Some(format!(
            "unrecognized pragma {body:?}: expected `allow(<rule>, reason = \"...\")`"
        ));
        return pragma;
    };
    let Some(inner) = inner.strip_suffix(')') else {
        pragma.error = Some("pragma is missing its closing `)`".into());
        return pragma;
    };
    let (rule, rest) = match inner.split_once(',') {
        Some((r, rest)) => (r.trim(), rest.trim()),
        None => (inner.trim(), ""),
    };
    pragma.rule = rule.to_string();
    if rule.is_empty() {
        pragma.error = Some("pragma names no rule".into());
        return pragma;
    }
    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'));
    match reason {
        Some(r) if !r.trim().is_empty() => pragma.reason = Some(r.to_string()),
        _ => {
            pragma.error = Some(format!(
                "allow({rule}) must carry a non-empty reason = \"...\""
            ));
        }
    }
    pragma
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(text: &str) -> ScannedFile {
        scan(PathBuf::from("x.rs"), "x.rs".into(), text)
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = scan_str("let x = \"panic!(boom)\"; // .unwrap() here\nlet y = 1;\n");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(!f.lines[0].code.contains("unwrap"));
        assert_eq!(f.lines[0].strings, vec!["panic!(boom)".to_string()]);
        assert_eq!(f.lines[1].code.trim(), "let y = 1;");
    }

    #[test]
    fn raw_strings_and_chars() {
        let f = scan_str("let s = r#\"a \" .unwrap() b\"#; let c = '\"'; let l: &'static str = s;");
        let code = &f.lines[0].code;
        assert!(!code.contains("unwrap"), "{code}");
        assert!(code.contains("&'static str"), "{code}");
        assert_eq!(f.lines[0].strings[0], "a \" .unwrap() b");
    }

    #[test]
    fn double_fenced_raw_strings_are_blanked() {
        // `r##"…"##` may contain an un-fenced `"#` without terminating.
        let f = scan_str("let s = r##\"has \"# quote and .unwrap()\"##; let t = 1;\n");
        let code = &f.lines[0].code;
        assert!(!code.contains("unwrap"), "{code}");
        assert!(code.contains("let t = 1;"), "lexing continued: {code}");
        assert_eq!(f.lines[0].strings[0], "has \"# quote and .unwrap()");
    }

    #[test]
    fn escaped_quote_char_literal_is_not_a_string_opener() {
        // `'\''` historically mislexed as a string start, hiding the
        // rest of the line from the rules.
        let f = scan_str("let q = '\\''; x.unwrap();\n");
        assert!(f.lines[0].code.contains(".unwrap()"), "{:?}", f.lines[0]);
    }

    #[test]
    fn lifetimes_survive_blanking() {
        let f = scan_str("fn f<'a>(x: &'a str) -> &'static str { x }\n");
        let code = &f.lines[0].code;
        assert!(code.contains("<'a>"), "{code}");
        assert!(code.contains("&'static str"), "{code}");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = scan_str("a /* one /* two */ still */ b\n/* open\n.unwrap()\n*/ c\n");
        assert_eq!(f.lines[0].code.replace(' ', ""), "ab");
        assert!(f.lines[2].code.is_empty());
        assert_eq!(f.lines[3].code.trim(), "c");
    }

    #[test]
    fn test_regions_are_marked() {
        let text =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let f = scan_str(text);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test, "closing brace line is still test");
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn pragmas_resolve_targets() {
        let text = "let a = x as u8; // lint: allow(L003, reason = \"masked\")\n\
                    // lint: allow(L001, reason = \"next line\")\nlet b = y.unwrap();\n\
                    // lint: allow-file(L002, reason = \"whole file\")\n\
                    // lint: allow(L004)\n";
        let f = scan_str(text);
        assert_eq!(f.pragmas.len(), 4);
        assert_eq!(f.pragmas[0].rule, "L003");
        assert_eq!(f.pragmas[0].target_line, Some(1));
        assert_eq!(
            f.pragmas[1].target_line,
            Some(3),
            "standalone targets next code line"
        );
        assert_eq!(f.pragmas[2].target_line, None);
        assert!(f.pragmas[3].error.is_some(), "reason is mandatory");
    }

    #[test]
    fn doc_comments_never_carry_pragmas() {
        let f = scan_str("/// lint: allow(L001, reason = \"doc, not directive\")\nfn f() {}\n");
        assert!(f.pragmas.is_empty());
    }
}
