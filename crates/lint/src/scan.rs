//! Line-aware lexical scanner for Rust source.
//!
//! The rules in this crate are textual, so the scanner's job is to make
//! textual matching *honest*: rule patterns must never fire inside
//! string literals, comments, or doc comments, and must know which lines
//! belong to `#[cfg(test)]` / `#[test]` regions (where the workspace's
//! panic-freedom contract deliberately does not apply).
//!
//! One pass walks the raw text with a small state machine and produces,
//! per line:
//!
//! * `code` — the line with comments removed and string/char literal
//!   *contents* blanked (delimiters kept), so `".unwrap()"` inside a
//!   string can never match a rule pattern;
//! * `strings` — the literal contents that were blanked, for the one
//!   rule (L002's float-format check) that inspects format strings;
//! * line comments, checked for `lint:` suppression pragmas.
//!
//! A second pass over the comment-free code computes brace-balanced
//! `#[cfg(test)]` / `#[test]` regions.

use std::path::PathBuf;

/// A `// lint: allow(<rule>, reason = "...")` suppression pragma, or a
/// malformed attempt at one (carried with its parse error so the engine
/// can report it instead of silently honouring or dropping it).
#[derive(Clone, Debug)]
pub struct Pragma {
    /// The rule id being suppressed, e.g. `L003`.
    pub rule: String,
    /// The mandatory justification. `None` is a pragma-syntax violation.
    pub reason: Option<String>,
    /// 1-based line the pragma was written on.
    pub decl_line: usize,
    /// 1-based line the pragma suppresses; `None` suppresses the whole
    /// file (the `allow-file` form).
    pub target_line: Option<usize>,
    /// Why the pragma failed to parse, if it did.
    pub error: Option<String>,
}

/// One source line after lexical analysis.
#[derive(Clone, Debug, Default)]
pub struct Line {
    /// The line with comments stripped and literal contents blanked.
    pub code: String,
    /// String-literal contents that appeared on this line.
    pub strings: Vec<String>,
    /// True inside a `#[cfg(test)]` or `#[test]` region.
    pub in_test: bool,
}

/// A scanned source file: lines plus the pragmas found in its comments.
#[derive(Clone, Debug)]
pub struct ScannedFile {
    /// Absolute (or as-given) path.
    pub path: PathBuf,
    /// Workspace-relative path with forward slashes — what rules match
    /// their scopes against and what diagnostics print.
    pub rel: String,
    /// Per-line analysis, index 0 = line 1.
    pub lines: Vec<Line>,
    /// Every pragma in the file, valid or not.
    pub pragmas: Vec<Pragma>,
}

/// Lexer state while walking the raw text.
enum State {
    Code,
    Str { raw_hashes: Option<usize> },
    Char,
    BlockComment { depth: usize },
}

/// One pending line comment: its text and whether code preceded it.
struct LineComment {
    line: usize,
    text: String,
    after_code: bool,
}

/// Scans `text` into per-line code/strings plus pragmas.
pub fn scan(path: PathBuf, rel: String, text: &str) -> ScannedFile {
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut comments: Vec<LineComment> = Vec::new();
    let mut state = State::Code;
    let mut cur_string = String::new();
    let mut chars = text.chars().peekable();

    // Walking with an explicit loop (rather than per-line) lets string
    // literals and block comments span lines without special cases.
    while let Some(c) = chars.next() {
        if c == '\n' {
            if let State::Str { .. } = state {
                cur_string.push('\n');
            }
            lines.push(Line::default());
            continue;
        }
        let line_no = lines.len();
        match &mut state {
            State::Code => match c {
                '/' if chars.peek() == Some(&'/') => {
                    chars.next();
                    let text: String = take_until_newline(&mut chars);
                    let after_code = !last_code(&mut lines).trim().is_empty();
                    comments.push(LineComment {
                        line: line_no,
                        text,
                        after_code,
                    });
                    lines.push(Line::default());
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    state = State::BlockComment { depth: 1 };
                }
                '"' => {
                    last_code(&mut lines).push('"');
                    cur_string.clear();
                    state = State::Str { raw_hashes: None };
                }
                'r' | 'b' => {
                    // `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` start string
                    // literals; anything else is an ordinary identifier
                    // character (or `r#ident`, which has no quote).
                    match raw_string_lookahead(c, &mut chars) {
                        Some(raw_hashes) => {
                            last_code(&mut lines).push('"');
                            cur_string.clear();
                            state = State::Str { raw_hashes };
                        }
                        None => last_code(&mut lines).push(c),
                    }
                }
                '\'' => {
                    // Disambiguate char literal from lifetime: a char
                    // literal is `'x'` or `'\..'`; a lifetime is `'ident`
                    // with no closing quote right after.
                    let mut ahead = chars.clone();
                    let is_char = match ahead.next() {
                        Some('\\') => true,
                        Some(_) => ahead.next() == Some('\''),
                        None => false,
                    };
                    last_code(&mut lines).push('\'');
                    if is_char {
                        state = State::Char;
                    }
                }
                _ => last_code(&mut lines).push(c),
            },
            State::Str { raw_hashes: None } => match c {
                '\\' => {
                    cur_string.push('\\');
                    if let Some(&e) = chars.peek() {
                        chars.next();
                        cur_string.push(e);
                    }
                }
                '"' => {
                    let cur = cur_line(&mut lines);
                    cur.code.push('"');
                    cur.strings.push(std::mem::take(&mut cur_string));
                    state = State::Code;
                }
                _ => cur_string.push(c),
            },
            State::Str {
                raw_hashes: Some(h),
            } => {
                let h = *h;
                if c == '"' && peek_n_hashes(&mut chars, h) {
                    for _ in 0..h {
                        chars.next();
                    }
                    let cur = cur_line(&mut lines);
                    cur.code.push('"');
                    cur.strings.push(std::mem::take(&mut cur_string));
                    state = State::Code;
                } else {
                    cur_string.push(c);
                }
            }
            State::Char => match c {
                '\\' => {
                    chars.next();
                }
                '\'' => {
                    last_code(&mut lines).push('\'');
                    state = State::Code;
                }
                _ => {}
            },
            State::BlockComment { depth } => match c {
                '*' if chars.peek() == Some(&'/') => {
                    chars.next();
                    *depth -= 1;
                    if *depth == 0 {
                        state = State::Code;
                    }
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    *depth += 1;
                }
                _ => {}
            },
        }
    }

    mark_test_regions(&mut lines);
    let pragmas = resolve_pragmas(&comments, &lines);
    ScannedFile {
        path,
        rel,
        lines,
        pragmas,
    }
}

/// The current (last) line. `lines` is seeded with one entry and only
/// ever grows, so the fallback push is defensive, not a real path.
fn cur_line(lines: &mut Vec<Line>) -> &mut Line {
    if lines.is_empty() {
        lines.push(Line::default());
    }
    let i = lines.len() - 1;
    &mut lines[i]
}

/// The current line's code buffer.
fn last_code(lines: &mut Vec<Line>) -> &mut String {
    &mut cur_line(lines).code
}

/// Consumes the rest of the current line (after `//`) as comment text.
fn take_until_newline(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> String {
    let mut out = String::new();
    for c in chars.by_ref() {
        if c == '\n' {
            break;
        }
        out.push(c);
    }
    out
}

/// Decides whether `c` (an `r` or `b` just consumed from code position)
/// begins a string literal, consuming the prefix from `chars` only when
/// it does. Returns the raw-hash count: `Some(None)` for `b"…"` (escapes
/// like a normal string), `Some(Some(n))` for `r`/`br` raw strings.
#[allow(clippy::option_option)]
fn raw_string_lookahead(
    c: char,
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Option<Option<usize>> {
    let mut ahead = chars.clone();
    let mut consumed = 0usize;
    if c == 'b' {
        match ahead.peek() {
            Some('"') => {
                // `b"…"` — consume the opening quote; the caller pushes
                // the delimiter and enters string state.
                chars.next();
                return Some(None);
            }
            Some('r') => {
                ahead.next();
                consumed += 1;
            }
            _ => return None,
        }
    }
    // After `r` / `br`: optional hashes, then a quote, else not a string
    // (`r#ident` raw identifiers land here and are left untouched).
    let mut hashes = 0usize;
    while ahead.peek() == Some(&'#') {
        ahead.next();
        consumed += 1;
        hashes += 1;
    }
    if ahead.peek() != Some(&'"') {
        return None;
    }
    consumed += 1; // the opening quote
    for _ in 0..consumed {
        chars.next();
    }
    Some(Some(hashes))
}

/// True when the next `n` characters are all `#` (raw-string closer).
fn peek_n_hashes(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, n: usize) -> bool {
    chars.clone().take(n).filter(|&c| c == '#').count() == n
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` items by brace balance
/// over the comment-free code.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut region_floor: Option<i64> = None;
    let mut region_armed = false;
    for line in lines.iter_mut() {
        let code = line.code.trim();
        if region_floor.is_none() && (code.contains("#[cfg(test)]") || code.contains("#[test]")) {
            pending_attr = true;
        }
        if pending_attr && region_floor.is_none() && !code.is_empty() && !code.starts_with("#[") {
            // The attributed item starts here.
            region_floor = Some(depth);
            region_armed = false;
            pending_attr = false;
        }
        line.in_test = region_floor.is_some();
        let opens = line.code.matches('{').count() as i64;
        let closes = line.code.matches('}').count() as i64;
        depth += opens - closes;
        if let Some(floor) = region_floor {
            if depth > floor {
                region_armed = true;
            }
            // Region ends when braces rebalance — or immediately for a
            // braceless item (`#[cfg(test)] mod t;`).
            if (region_armed && depth <= floor) || (!region_armed && code.ends_with(';')) {
                region_floor = None;
            }
        }
    }
}

/// Extracts pragmas from line comments and resolves their target lines:
/// a trailing comment suppresses its own line, a comment on a line of
/// its own suppresses the next line with code on it.
fn resolve_pragmas(comments: &[LineComment], lines: &[Line]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in comments {
        let Some(body) = c.text.trim().strip_prefix("lint:") else {
            continue;
        };
        let mut p = parse_pragma(body.trim(), c.line);
        if p.error.is_none() && p.target_line == Some(c.line) && !c.after_code {
            // Standalone pragma line: find the next line with code.
            p.target_line = lines
                .iter()
                .enumerate()
                .skip(c.line) // index c.line == line number c.line + 1
                .find(|(_, l)| !l.code.trim().is_empty())
                .map(|(i, _)| i + 1)
                .or(Some(c.line));
        }
        out.push(p);
    }
    out
}

/// Parses `allow(<rule>, reason = "...")` / `allow-file(...)` bodies.
fn parse_pragma(body: &str, line: usize) -> Pragma {
    let mut pragma = Pragma {
        rule: String::new(),
        reason: None,
        decl_line: line,
        target_line: Some(line),
        error: None,
    };
    let inner = if let Some(rest) = body.strip_prefix("allow-file(") {
        pragma.target_line = None;
        rest
    } else if let Some(rest) = body.strip_prefix("allow(") {
        rest
    } else {
        pragma.error = Some(format!(
            "unrecognized pragma {body:?}: expected `allow(<rule>, reason = \"...\")`"
        ));
        return pragma;
    };
    let Some(inner) = inner.strip_suffix(')') else {
        pragma.error = Some("pragma is missing its closing `)`".into());
        return pragma;
    };
    let (rule, rest) = match inner.split_once(',') {
        Some((r, rest)) => (r.trim(), rest.trim()),
        None => (inner.trim(), ""),
    };
    pragma.rule = rule.to_string();
    if rule.is_empty() {
        pragma.error = Some("pragma names no rule".into());
        return pragma;
    }
    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'));
    match reason {
        Some(r) if !r.trim().is_empty() => pragma.reason = Some(r.to_string()),
        _ => {
            pragma.error = Some(format!(
                "allow({rule}) must carry a non-empty reason = \"...\""
            ));
        }
    }
    pragma
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(text: &str) -> ScannedFile {
        scan(PathBuf::from("x.rs"), "x.rs".into(), text)
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = scan_str("let x = \"panic!(boom)\"; // .unwrap() here\nlet y = 1;\n");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(!f.lines[0].code.contains("unwrap"));
        assert_eq!(f.lines[0].strings, vec!["panic!(boom)".to_string()]);
        assert_eq!(f.lines[1].code.trim(), "let y = 1;");
    }

    #[test]
    fn raw_strings_and_chars() {
        let f = scan_str("let s = r#\"a \" .unwrap() b\"#; let c = '\"'; let l: &'static str = s;");
        let code = &f.lines[0].code;
        assert!(!code.contains("unwrap"), "{code}");
        assert!(code.contains("&'static str"), "{code}");
        assert_eq!(f.lines[0].strings[0], "a \" .unwrap() b");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = scan_str("a /* one /* two */ still */ b\n/* open\n.unwrap()\n*/ c\n");
        assert_eq!(f.lines[0].code.replace(' ', ""), "ab");
        assert!(f.lines[2].code.is_empty());
        assert_eq!(f.lines[3].code.trim(), "c");
    }

    #[test]
    fn test_regions_are_marked() {
        let text =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let f = scan_str(text);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test, "closing brace line is still test");
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn pragmas_resolve_targets() {
        let text = "let a = x as u8; // lint: allow(L003, reason = \"masked\")\n\
                    // lint: allow(L001, reason = \"next line\")\nlet b = y.unwrap();\n\
                    // lint: allow-file(L002, reason = \"whole file\")\n\
                    // lint: allow(L004)\n";
        let f = scan_str(text);
        assert_eq!(f.pragmas.len(), 4);
        assert_eq!(f.pragmas[0].rule, "L003");
        assert_eq!(f.pragmas[0].target_line, Some(1));
        assert_eq!(
            f.pragmas[1].target_line,
            Some(3),
            "standalone targets next code line"
        );
        assert_eq!(f.pragmas[2].target_line, None);
        assert!(f.pragmas[3].error.is_some(), "reason is mandatory");
    }
}
